// Ablation (ref [7]): sampling estimators vs the exact counting pass.
//
// The decomposition algorithms need exact supports, but the total butterfly
// count alone (workload sizing, BiT-PC threshold intuition) can be estimated
// orders of magnitude faster on butterfly-dense graphs.  This harness
// reports estimate quality and speed for the three samplers against the
// exact BFC-VP pass on the representative stand-ins.

#include <cmath>
#include <cstdio>

#include "bench_common.h"
#include "butterfly/approx_counting.h"
#include "butterfly/butterfly_counting.h"
#include "util/timer.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Ablation: sampling estimators",
              "vertex/edge/wedge sampling vs exact BFC-VP counting");

  const std::uint64_t kSamples = 20'000;

  TablePrinter table({"Dataset", "exact onG", "exact (s)", "sampler",
                      "estimate", "rel err %", "est (s)", "speedup"});
  for (const char* name : {"Github", "Twitter", "D-label", "D-style"}) {
    const BipartiteGraph& g = BenchDataset(name);

    Timer timer;
    const ButterflyCount exact = CountTotalButterflies(g);
    const double exact_seconds = timer.Seconds();

    for (const SamplingStrategy strategy :
         {SamplingStrategy::kVertex, SamplingStrategy::kEdge,
          SamplingStrategy::kWedge}) {
      timer.Reset();
      const ApproxCountResult approx =
          EstimateButterflies(g, strategy, kSamples, /*seed=*/1);
      const double est_seconds = timer.Seconds();
      const double rel_err =
          100.0 * std::abs(approx.estimate - static_cast<double>(exact)) /
          static_cast<double>(exact);
      table.AddRow({name, FormatCount(exact), FormatDouble(exact_seconds, 3),
                    SamplingStrategyName(strategy),
                    FormatDouble(approx.estimate, 0),
                    FormatDouble(rel_err, 1), FormatDouble(est_seconds, 3),
                    FormatDouble(exact_seconds / est_seconds, 1) + "x"});
      std::fflush(stdout);
    }
  }
  table.Print();
  std::printf("\n(%llu samples per run; wedge sampling concentrates best on "
              "skewed graphs because its per-sample work is one adjacency "
              "intersection regardless of hub degrees.)\n",
              static_cast<unsigned long long>(kSamples));
  return 0;
}
