// Ablation: (2,2)-core pre-pruning for bitruss decomposition.
//
// Every k-bitruss with k >= 1 lies inside the (2,2)-core (each of its edges
// is in a butterfly, so each of its vertices has internal degree >= 2).
// Pruning to the core before counting + index construction is therefore
// exact, and on sparse-fringe graphs it removes pendant edges before they
// cost anything.  This bench quantifies the saving per dataset and verifies
// (via checksum of phi) that the pruned run matches the plain one.

#include <cstdio>
#include <numeric>

#include "bench_common.h"
#include "cohesion/ab_core.h"
#include "core/decompose.h"
#include "util/timer.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Ablation: (2,2)-core pre-pruning",
              "plain BiT-BU++ vs core-pruned BiT-BU++ (exact, ref [20])");

  TablePrinter table({"Dataset", "|E|", "pruned", "pruned %", "plain (s)",
                      "pruned (s)", "speedup", "phi match"});
  for (const char* name : {"Writer", "Location", "Github", "Twitter",
                           "D-label", "D-style", "Amazon", "DBLP"}) {
    const BipartiteGraph& g = BenchDataset(name);

    Timer timer;
    const BitrussResult plain = Decompose(g);
    const double plain_seconds = timer.Seconds();

    timer.Reset();
    const BitrussResult pruned = DecomposeWithCorePruning(g);
    const double pruned_seconds = timer.Seconds();

    // Prune tally only (outside the timed region; the timed run re-prunes
    // internally, so its cost is already included above).
    auto core_stats = PruneToABCore(g, 2, 2);

    const EdgeId pruned_edges =
        core_stats.ok() ? core_stats.value().pruned_edges : 0;
    const bool match = plain.phi == pruned.phi;

    table.AddRow({name, FormatCount(g.NumEdges()), FormatCount(pruned_edges),
                  FormatDouble(100.0 * pruned_edges / g.NumEdges(), 1),
                  FormatDouble(plain_seconds, 3),
                  FormatDouble(pruned_seconds, 3),
                  FormatDouble(plain_seconds / pruned_seconds, 2),
                  match ? "yes" : "NO"});
    std::fflush(stdout);
  }
  table.Print();
  return 0;
}
