// Ablation: incremental support maintenance vs recount-per-update.
//
// The BE-Index is rebuilt per decomposition run (an online index); between
// runs, evolving graphs need their supports kept current.  This harness
// seeds the dynamic graph from each stand-in, applies a random stream of
// insertions/deletions with incremental maintenance, and compares against
// the naive alternative of re-running the exact counting pass after every
// update.

#include <cstdio>

#include "bench_common.h"
#include "butterfly/butterfly_counting.h"
#include "dynamic/dynamic_graph.h"
#include "util/random.h"
#include "util/timer.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Ablation: dynamic maintenance",
              "incremental butterfly-support updates vs recount-per-update");

  const int kUpdates = 2'000;

  TablePrinter table({"Dataset", "|E|", "updates", "incremental (s)",
                      "per-op (us)", "recount once (s)",
                      "recount-all (est s)", "speedup"});
  for (const char* name : {"Github", "Twitter", "D-label", "D-style"}) {
    const BipartiteGraph& g = BenchDataset(name);

    DynamicBipartiteGraph dynamic(g);
    Rng rng(20260611);

    // Mixed stream: delete a random known edge or insert a random pair.
    Timer timer;
    int applied = 0;
    std::vector<EdgeId> inserted;
    while (applied < kUpdates) {
      if (!inserted.empty() && rng.NextBool(0.5)) {
        const std::size_t pick = rng.Below(inserted.size());
        if (dynamic.DeleteEdge(inserted[pick]).ok()) ++applied;
        inserted[pick] = inserted.back();
        inserted.pop_back();
      } else {
        const auto u = static_cast<VertexId>(rng.Below(g.NumUpper()));
        const auto v = static_cast<VertexId>(rng.Below(g.NumLower()));
        auto result = dynamic.InsertEdge(u, v);
        if (result.ok()) {
          inserted.push_back(result.value());
          ++applied;
        }
      }
    }
    const double incremental_seconds = timer.Seconds();

    timer.Reset();
    (void)CountTotalButterflies(g);
    const double recount_seconds = timer.Seconds();
    const double recount_all = recount_seconds * kUpdates;

    table.AddRow({name, FormatCount(g.NumEdges()), FormatCount(kUpdates),
                  FormatDouble(incremental_seconds, 3),
                  FormatDouble(1e6 * incremental_seconds / kUpdates, 1),
                  FormatDouble(recount_seconds, 4),
                  FormatDouble(recount_all, 1),
                  FormatDouble(recount_all / incremental_seconds, 0) + "x"});
    std::fflush(stdout);
  }
  table.Print();
  return 0;
}
