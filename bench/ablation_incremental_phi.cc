// Ablation: incremental bitruss (phi) maintenance vs recount-per-update.
//
// The serving path keeps phi current while edge updates stream in.  This
// harness seeds an IncrementalBitruss maintainer from each stand-in,
// applies mixed insert/delete streams at increasing churn scales, and
// compares the maintained path against the naive alternative of a full
// Snapshot() + Decompose() recount after every update.  After each stream
// the maintained phi is checked bit-for-bit against one final recount —
// the "phi match" column must read "yes" on every row (the smoke test
// fails on "NO").
//
// Churn scale k multiplies the base update count; per-update cost is flat
// in the stream length, so the speedup column tracks the recount/maintain
// cost ratio at every scale.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "core/decompose.h"
#include "dynamic/incremental_bitruss.h"
#include "util/random.h"
#include "util/timer.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Ablation: incremental phi maintenance",
              "bounded local re-peel vs full recount per update");

  const int kBaseUpdates = 200;

  TablePrinter table({"Dataset", "churn", "|E|", "updates", "maintain (s)",
                      "per-op (us)", "fallbacks", "recount once (s)",
                      "recount-all (est s)", "speedup", "phi match"});
  for (const char* name : {"Writer", "Github", "Twitter", "D-label"}) {
    const BipartiteGraph& g = BenchDataset(name);

    for (const int churn : {1, 4}) {
      const int updates = kBaseUpdates * churn;
      IncrementalBitruss inc(g);

      // Mixed stream: delete a random previously inserted edge or insert
      // a random pair (the bench's standard churn protocol).
      Rng rng(20260729 + churn);
      Timer timer;
      int applied = 0;
      std::vector<EdgeId> inserted;
      while (applied < updates) {
        if (!inserted.empty() && rng.NextBool(0.5)) {
          const std::size_t pick = rng.Below(inserted.size());
          if (inc.DeleteEdge(inserted[pick]).ok()) ++applied;
          inserted[pick] = inserted.back();
          inserted.pop_back();
        } else {
          const auto u = static_cast<VertexId>(rng.Below(g.NumUpper()));
          const auto v = static_cast<VertexId>(rng.Below(g.NumLower()));
          auto result = inc.InsertEdge(u, v);
          if (result.ok()) {
            inserted.push_back(result.value());
            ++applied;
          }
        }
      }
      const double maintain_seconds = timer.Seconds();

      // The naive alternative: one full recount per update, estimated
      // from a single timed recount of the final graph.
      timer.Reset();
      const GraphSnapshot snapshot = inc.Graph().Snapshot();
      const BitrussResult recount = Decompose(snapshot.graph);
      const double recount_seconds = timer.Seconds();
      const double recount_all = recount_seconds * updates;

      bool match = true;
      for (EdgeId e = 0; e < snapshot.graph.NumEdges(); ++e) {
        match &= inc.Phi(snapshot.slot_of_edge[e]) == recount.phi[e];
      }

      table.AddRow(
          {name, FormatCount(churn), FormatCount(g.NumEdges()),
           FormatCount(updates), FormatDouble(maintain_seconds, 3),
           FormatDouble(1e6 * maintain_seconds / updates, 1),
           FormatCount(inc.Totals().fallbacks),
           FormatDouble(recount_seconds, 4), FormatDouble(recount_all, 1),
           FormatDouble(recount_all / maintain_seconds, 0) + "x",
           match ? "yes" : "NO"});
      std::fflush(stdout);
    }
  }
  table.Print();
  return 0;
}
