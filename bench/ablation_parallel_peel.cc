// Ablation (ref [26]): parallel round peeling vs the sequential BE-Index.
//
// Two opposing forces: the parallel peeler splits each round across
// threads, but each round re-enumerates butterflies combination-style —
// exactly the per-removal cost the BE-Index eliminates.  This harness
// reports where threads beat compression on the stand-ins: typically the
// BE-Index wins on butterfly-dense skewed graphs, while thread scaling
// closes the gap on flatter ones.  Every cell is cross-checked: the
// parallel phi must match the sequential BiT-BU++ phi bit-for-bit.
//
// "Tracker-XL" is the bench-only ~1M-edge config (see gen/dataset_suite.h)
// that shows thread scaling beyond the default suite's 200k-edge ceiling.

#include <cstdio>

#include "bench_common.h"
#include "core/decompose.h"
#include "core/parallel_peel.h"
#include "util/timer.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Ablation: parallel peeling",
              "ref [26]-style parallel rounds vs sequential BiT-BU++");

  TablePrinter table({"Dataset", "BU++ (s)", "par x1 (s)", "par x2 (s)",
                      "par x4 (s)", "par x8 (s)", "best vs BU++",
                      "phi match"});
  for (const char* name :
       {"Github", "Twitter", "D-label", "Amazon", "Tracker-XL"}) {
    const BipartiteGraph& g = BenchDataset(name);

    const RunOutcome sequential = TimedRun(g, Algorithm::kBUPlusPlus);

    double best = 1e300;
    bool phi_match = true;
    std::vector<std::string> row = {name, FormatSeconds(sequential)};
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      ParallelPeelOptions options;
      options.num_threads = threads;
      options.deadline = Deadline::After(BenchTimeoutSeconds());
      Timer timer;
      const BitrussResult result = DecomposeParallelPeel(g, options);
      const double seconds = timer.Seconds();
      if (result.timed_out) {
        row.push_back("INF");
        continue;
      }
      best = std::min(best, seconds);
      row.push_back(FormatDouble(seconds, 3));
      if (!sequential.timed_out && result.phi != sequential.result.phi) {
        phi_match = false;
      }
    }
    row.push_back(best < 1e300 && !sequential.timed_out
                      ? FormatDouble(sequential.seconds / best, 2) + "x"
                      : "n/a");
    row.push_back(phi_match ? "yes" : "phi MISMATCH");
    table.AddRow(std::move(row));
    std::fflush(stdout);
  }
  table.Print();
  std::printf("\n(best vs BU++ > 1 means some thread count beat the\n"
              "sequential BE-Index run; < 1 means compression beats\n"
              "parallel re-enumeration on that graph.)\n");
  return 0;
}
