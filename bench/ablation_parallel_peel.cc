// Ablation (ref [26]): parallel round peeling vs the sequential BE-Index.
//
// Two opposing forces: the parallel peeler splits each round across
// threads, but each round re-enumerates butterflies combination-style —
// exactly the per-removal cost the BE-Index eliminates.  This harness
// reports where threads beat compression on the stand-ins: typically the
// BE-Index wins on butterfly-dense skewed graphs, while thread scaling
// closes the gap on flatter ones.

#include <cstdio>

#include "bench_common.h"
#include "core/decompose.h"
#include "core/parallel_peel.h"
#include "util/timer.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Ablation: parallel peeling",
              "ref [26]-style parallel rounds vs sequential BiT-BU++");

  TablePrinter table({"Dataset", "BU++ (s)", "par x1 (s)", "par x2 (s)",
                      "par x4 (s)", "par x8 (s)", "best vs BU++"});
  for (const char* name : {"Github", "Twitter", "D-label", "Amazon"}) {
    const BipartiteGraph& g = BenchDataset(name);

    Timer timer;
    (void)Decompose(g);
    const double sequential = timer.Seconds();

    double best = 1e300;
    std::vector<std::string> row = {name, FormatDouble(sequential, 3)};
    for (const unsigned threads : {1u, 2u, 4u, 8u}) {
      ParallelPeelOptions options;
      options.num_threads = threads;
      timer.Reset();
      const BitrussResult result = DecomposeParallelPeel(g, options);
      const double seconds = timer.Seconds();
      best = std::min(best, seconds);
      row.push_back(result.timed_out ? "INF" : FormatDouble(seconds, 3));
    }
    row.push_back(FormatDouble(sequential / best, 2) + "x");
    table.AddRow(std::move(row));
    std::fflush(stdout);
  }
  table.Print();
  std::printf("\n(best vs BU++ > 1 means some thread count beat the\n"
              "sequential BE-Index run; < 1 means compression beats\n"
              "parallel re-enumeration on that graph.)\n");
  return 0;
}
