// Ablation (Definition 7): the degree-then-id priority is what bounds the
// number of priority-obeyed wedges — and therefore counting time, index
// construction time and BE-Index size — by O(sum min{d(u), d(v)}).  Rank
// vertices by id alone and all three blow up on skewed graphs, while every
// result stays identical (any total order preserves Lemma 3).

#include <cstdio>

#include "bench_common.h"
#include "butterfly/butterfly_counting.h"
#include "core/be_index_builder.h"
#include "graph/vertex_priority.h"
#include "util/memory_tracker.h"
#include "util/timer.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Ablation: vertex priority rule",
              "Definition 7 (degree,id) vs naive id-only ranking");

  TablePrinter table({"Dataset", "rule", "count (s)", "index build (s)",
                      "index (MiB)", "incidences"});
  for (const char* name : {"Github", "Twitter", "D-label", "D-style"}) {
    const BipartiteGraph& g = BenchDataset(name);
    for (const PriorityRule rule :
         {PriorityRule::kDegreeThenId, PriorityRule::kIdOnly}) {
      const VertexPriority prio = VertexPriority::Compute(g, rule);
      const PriorityAdjacency adj(g, prio);
      Timer timer;
      const std::vector<SupportT> sup = CountEdgeSupports(g, adj);
      const double count_seconds = timer.Seconds();
      timer.Reset();
      const BEIndex index = BEIndexBuilder::Build(g, adj);
      const double build_seconds = timer.Seconds();
      std::uint64_t incidences = 0;
      for (EdgeId e = 0; e < g.NumEdges(); ++e) {
        incidences += index.EdgeLiveCount(e);
      }
      table.AddRow({name,
                    rule == PriorityRule::kDegreeThenId ? "degree,id"
                                                        : "id-only",
                    FormatDouble(count_seconds, 4),
                    FormatDouble(build_seconds, 4),
                    FormatDouble(BytesToMiB(index.MemoryBytes()), 2),
                    FormatCount(incidences)});
      std::fflush(stdout);
    }
  }
  table.Print();
  return 0;
}
