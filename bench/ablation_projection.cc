// Ablation (Introduction, paragraph 1): why not project the bipartite graph
// to one layer and run k-truss?  Because skewed degree distributions explode
// the projected edge and triangle counts (the ref [25] approach the paper
// dismisses).  This harness measures the explosion on the stand-ins.

#include <cstdio>

#include "bench_common.h"
#include "graph/projection.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Ablation: projection",
              "bipartite vs one-layer projection (edge/triangle explosion)");

  // Cap the projection so hub datasets terminate; hitting the cap is
  // itself the result.
  const std::uint64_t cap = 30'000'000;

  TablePrinter table({"Dataset", "bip edges", "butterflies", "proj edges",
                      "proj triangles", "edge blow-up"});
  for (const char* name : {"Condmat", "Github", "Twitter", "D-label",
                           "D-style"}) {
    const BipartiteGraph& g = BenchDataset(name);
    // Project onto the layer the paper's applications care about (upper =
    // users/authors); for D-style the tiny lower layer makes the upper
    // projection the catastrophic one.
    const ProjectionStats stats =
        CompareProjection(g, /*upper_layer=*/true, cap);
    const double blowup =
        static_cast<double>(stats.projected_edges) /
        static_cast<double>(stats.bipartite_edges);
    table.AddRow({name, FormatCount(stats.bipartite_edges),
                  FormatCount(stats.butterflies),
                  (stats.truncated ? ">" : "") +
                      FormatCount(stats.projected_edges),
                  (stats.truncated ? ">" : "") + FormatCount(stats.triangles),
                  (stats.truncated ? ">" : "") + FormatDouble(blowup, 1) + "x"});
    std::fflush(stdout);
  }
  table.Print();
  std::printf("\n(The paper's argument: the projection loses the bipartite "
              "structure AND inflates the instance; decomposing butterflies "
              "directly avoids both.)\n");
  return 0;
}
