// Ablation (Related Work, ref [25]): the complete projection alternative.
//
// ablation_projection measures only the instance blow-up; this harness runs
// the *entire* ref [25] pipeline — project onto one layer, index, count
// triangle supports, truss-peel — and compares its end-to-end cost against
// decomposing butterflies directly with BiT-BU++.  On skewed stand-ins the
// projection is capped (hitting the cap is the reproduced result: the paper
// dismisses this route for exactly that explosion); on the ones that do
// finish, the pipeline is still slower and its output lives on projected
// edges, not bipartite edges.

#include <cstdio>

#include "bench_common.h"
#include "core/decompose.h"
#include "truss/projected_truss.h"
#include "util/timer.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Ablation: ref [25] pipeline",
              "project + k-truss decomposition vs direct BiT-BU++");

  const std::uint64_t cap = 300'000;

  TablePrinter table({"Dataset", "bip |E|", "direct (s)", "proj |E|",
                      "project (s)", "tri count (s)", "truss peel (s)",
                      "pipeline (s)", "slowdown"});
  for (const char* name :
       {"Condmat", "Marvel", "DBPedia", "Github", "Twitter"}) {
    const BipartiteGraph& g = BenchDataset(name);

    Timer timer;
    (void)Decompose(g);
    const double direct_seconds = timer.Seconds();

    const Ref25PipelineResult pipeline =
        RunRef25Pipeline(g, /*upper_layer=*/true, cap);
    const double pipeline_seconds = pipeline.project_seconds +
                                    pipeline.count_seconds +
                                    pipeline.peel_seconds;

    const std::string prefix = pipeline.truncated ? ">" : "";
    table.AddRow(
        {name, FormatCount(g.NumEdges()), FormatDouble(direct_seconds, 3),
         prefix + FormatCount(pipeline.projected_edges),
         FormatDouble(pipeline.project_seconds, 3),
         FormatDouble(pipeline.count_seconds, 3),
         FormatDouble(pipeline.peel_seconds, 3),
         prefix + FormatDouble(pipeline_seconds, 3),
         prefix + FormatDouble(pipeline_seconds / direct_seconds, 1) + "x"});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\n(Truncated rows hit the %llu-edge projection cap — deliberately\n"
      "small: truncated skewed projections are near-cliques, and truss\n"
      "peeling them is quadratic in the cap.  The full projection would be\n"
      "orders of magnitude larger still, which is the explosion the paper's\n"
      "introduction predicts.  Even untruncated pipelines answer a different\n"
      "question: truss numbers of projected edges cannot be mapped back to\n"
      "bitruss numbers of bipartite edges.)\n",
      static_cast<unsigned long long>(cap));
  return 0;
}
