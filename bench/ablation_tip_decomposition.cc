// Ablation (ref [5]): tip (vertex) vs bitruss (edge) peeling granularity.
//
// The paper's baseline reference defines both hierarchies; the paper builds
// on the edge one because it is finer.  This harness quantifies the
// trade-off on the stand-ins: tip decomposition performs one update per
// co-vertex pair instead of per affected edge — typically orders of
// magnitude fewer — but collapses each vertex's communities into a single
// number (one theta per user, versus one phi per interaction).

#include <cstdio>

#include "bench_common.h"
#include "cohesion/tip_decomposition.h"
#include "core/decompose.h"
#include "util/timer.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Ablation: tip vs bitruss peeling",
              "ref [5]'s vertex hierarchy vs the paper's edge hierarchy");

  TablePrinter table({"Dataset", "bitruss (s)", "phi updates", "tip U (s)",
                      "tip updates", "max theta", "max phi"});
  for (const char* name : {"Github", "Twitter", "D-label", "D-style"}) {
    const BipartiteGraph& g = BenchDataset(name);

    Timer timer;
    const BitrussResult edge_result = Decompose(g);
    const double edge_seconds = timer.Seconds();

    timer.Reset();
    const TipResult tip_result = TipDecomposition(g, /*peel_upper=*/true);
    const double tip_seconds = timer.Seconds();

    table.AddRow(
        {name, FormatDouble(edge_seconds, 3),
         FormatCount(edge_result.counters.support_updates),
         FormatDouble(tip_seconds, 3),
         FormatCount(tip_result.count_updates),
         FormatCount(tip_result.max_tip),
         FormatCount(edge_result.MaxPhi())});
    std::fflush(stdout);
  }
  table.Print();
  std::printf(
      "\n(On typical graphs the vertex hierarchy is cheaper but coarser —\n"
      "one theta per user versus one phi per interaction, the reason the\n"
      "paper decomposes edges.  On hub-layer graphs like D-style the\n"
      "comparison inverts: every vertex removal walks two hops through\n"
      "enormous-degree middles, the same structural pathology BiT-PC\n"
      "exists to sidestep on the edge side.)\n");
  return 0;
}
