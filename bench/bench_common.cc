#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>

#include "gen/dataset_suite.h"
#include "obs/metrics.h"
#include "util/sync.h"
#include "util/timer.h"

namespace bitruss::bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const double parsed = std::atof(value);
  return parsed > 0 ? parsed : fallback;
}

// --json capture state.  Benches are single-binary runs; the mutex only
// guards against tables printed from worker threads.
struct CapturedTable {
  std::string title;
  std::vector<std::vector<std::string>> rows;  // rows[0] is the header
};

std::string* JsonPath() {
  static std::string path;
  return &path;
}

Mutex& CaptureMu() {
  static Mutex mu;
  return mu;
}

std::vector<CapturedTable>& CapturedTables() {
  static std::vector<CapturedTable> tables;
  return tables;
}

std::string& BenchName() {
  static std::string name = "bench";
  return name;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

double BenchScale() {
  static const double scale = EnvDouble("BITRUSS_BENCH_SCALE", 1.0);
  return scale;
}

double BenchTimeoutSeconds() {
  static const double timeout = EnvDouble("BITRUSS_BENCH_TIMEOUT", 30.0);
  return timeout;
}

const BipartiteGraph& BenchDataset(const std::string& name) {
  // Guarded so multi-threaded benches (and parallel smoke tests) can't race
  // the lookup/emplace; std::map nodes are stable, so the returned
  // reference stays valid while other threads insert.
  static Mutex mu;
  static std::map<std::string, BipartiteGraph> cache;
  MutexLock lock(mu);
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, MakeDataset(name, BenchScale())).first;
  }
  return it->second;
}

RunOutcome TimedRun(const BipartiteGraph& g, Algorithm algorithm, double tau,
                    bool track_per_edge, obs::TraceRecorder* trace) {
  DecomposeOptions options;
  options.algorithm = algorithm;
  options.tau = tau;
  options.deadline = Deadline::After(BenchTimeoutSeconds());
  options.track_per_edge_updates = track_per_edge;
  options.trace = trace;

  RunOutcome outcome;
  Timer timer;
  outcome.result = Decompose(g, options);
  outcome.seconds = timer.Seconds();
  outcome.timed_out = outcome.result.timed_out;
  return outcome;
}

std::string FormatSeconds(const RunOutcome& outcome) {
  if (outcome.timed_out) return "INF";
  return FormatDouble(outcome.seconds);
}

TablePrinter::TablePrinter(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

TablePrinter::TablePrinter(std::string title, std::vector<std::string> header)
    : title_(std::move(title)) {
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print() const {
  if (rows_.empty()) return;
  std::vector<std::size_t> widths(rows_[0].size(), 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(rows_[0]);
  std::printf("|");
  for (const std::size_t w : widths) {
    std::printf("%s|", std::string(w + 2, '-').c_str());
  }
  std::printf("\n");
  for (std::size_t r = 1; r < rows_.size(); ++r) print_row(rows_[r]);

  if (BenchJsonRequested()) {
    MutexLock lock(CaptureMu());
    CapturedTable captured;
    captured.title = title_.empty()
                         ? "table_" + std::to_string(CapturedTables().size())
                         : title_;
    captured.rows = rows_;
    CapturedTables().push_back(std::move(captured));
  }
}

void ParseBenchArgs(int argc, char** argv) {
  if (argc > 0 && argv[0] != nullptr) {
    std::string name = argv[0];
    const std::size_t slash = name.find_last_of('/');
    if (slash != std::string::npos) name = name.substr(slash + 1);
    BenchName() = name;
  }
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--json=", 7) == 0 && arg[7] != '\0') {
      *JsonPath() = arg + 7;
    }
  }
}

bool BenchJsonRequested() { return !JsonPath()->empty(); }

void WriteBenchJsonIfRequested() {
  if (!BenchJsonRequested()) return;
  std::string out = "{\"bench\": ";
  AppendJsonString(BenchName(), &out);
  char scale[64];
  std::snprintf(scale, sizeof(scale), "%g", BenchScale());
  out += ", \"scale\": ";
  out += scale;
  const auto env_or = [](const char* name, const char* fallback) {
    const char* value = std::getenv(name);
    return std::string(value != nullptr && *value != '\0' ? value : fallback);
  };
  out += ", \"meta\": {\"git_sha\": ";
  AppendJsonString(env_or("BITRUSS_BENCH_GIT_SHA", "unknown"), &out);
  out += ", \"timestamp\": ";
  AppendJsonString(env_or("BITRUSS_BENCH_TIMESTAMP", "unknown"), &out);
  out += ", \"hardware_threads\": ";
  out += std::to_string(std::thread::hardware_concurrency());
  out += "}";
  out += ", \"tables\": [";
  {
    MutexLock lock(CaptureMu());
    const std::vector<CapturedTable>& tables = CapturedTables();
    for (std::size_t t = 0; t < tables.size(); ++t) {
      if (t > 0) out += ", ";
      out += "{\"title\": ";
      AppendJsonString(tables[t].title, &out);
      out += ", \"header\": [";
      const auto& rows = tables[t].rows;
      for (std::size_t c = 0; !rows.empty() && c < rows[0].size(); ++c) {
        if (c > 0) out += ", ";
        AppendJsonString(rows[0][c], &out);
      }
      out += "], \"rows\": [";
      for (std::size_t r = 1; r < rows.size(); ++r) {
        if (r > 1) out += ", ";
        out += "[";
        for (std::size_t c = 0; c < rows[r].size(); ++c) {
          if (c > 0) out += ", ";
          AppendJsonString(rows[r][c], &out);
        }
        out += "]";
      }
      out += "]}";
    }
  }
  out += "], \"metrics\": ";
  out += obs::ExportJson(obs::MetricsRegistry::Default().Snapshot());
  out += "}\n";

  const std::string& path = *JsonPath();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench JSON: cannot open %s\n", path.c_str());
    return;
  }
  std::fwrite(out.data(), 1, out.size(), f);
  std::fclose(f);
  std::printf("bench JSON written to %s\n", path.c_str());
}

std::string FormatCount(std::uint64_t value) { return std::to_string(value); }

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

void PrintBanner(const std::string& artifact, const std::string& description) {
  std::printf("==================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), description.c_str());
  std::printf("scale=%.3g, per-run timeout=%.0fs (paper: 30h cap)\n",
              BenchScale(), BenchTimeoutSeconds());
  std::printf("==================================================\n");
}

}  // namespace bitruss::bench
