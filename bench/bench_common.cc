#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>

#include "gen/dataset_suite.h"
#include "util/timer.h"

namespace bitruss::bench {

namespace {

double EnvDouble(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  const double parsed = std::atof(value);
  return parsed > 0 ? parsed : fallback;
}

}  // namespace

double BenchScale() {
  static const double scale = EnvDouble("BITRUSS_BENCH_SCALE", 1.0);
  return scale;
}

double BenchTimeoutSeconds() {
  static const double timeout = EnvDouble("BITRUSS_BENCH_TIMEOUT", 30.0);
  return timeout;
}

const BipartiteGraph& BenchDataset(const std::string& name) {
  // Guarded so multi-threaded benches (and parallel smoke tests) can't race
  // the lookup/emplace; std::map nodes are stable, so the returned
  // reference stays valid while other threads insert.
  static std::mutex mu;
  static std::map<std::string, BipartiteGraph> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(name);
  if (it == cache.end()) {
    it = cache.emplace(name, MakeDataset(name, BenchScale())).first;
  }
  return it->second;
}

RunOutcome TimedRun(const BipartiteGraph& g, Algorithm algorithm, double tau,
                    bool track_per_edge) {
  DecomposeOptions options;
  options.algorithm = algorithm;
  options.tau = tau;
  options.deadline = Deadline::After(BenchTimeoutSeconds());
  options.track_per_edge_updates = track_per_edge;

  RunOutcome outcome;
  Timer timer;
  outcome.result = Decompose(g, options);
  outcome.seconds = timer.Seconds();
  outcome.timed_out = outcome.result.timed_out;
  return outcome;
}

std::string FormatSeconds(const RunOutcome& outcome) {
  if (outcome.timed_out) return "INF";
  return FormatDouble(outcome.seconds);
}

TablePrinter::TablePrinter(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

void TablePrinter::Print() const {
  if (rows_.empty()) return;
  std::vector<std::size_t> widths(rows_[0].size(), 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("|");
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::printf(" %-*s |", static_cast<int>(widths[c]), cell.c_str());
    }
    std::printf("\n");
  };
  print_row(rows_[0]);
  std::printf("|");
  for (const std::size_t w : widths) {
    std::printf("%s|", std::string(w + 2, '-').c_str());
  }
  std::printf("\n");
  for (std::size_t r = 1; r < rows_.size(); ++r) print_row(rows_[r]);
}

std::string FormatCount(std::uint64_t value) { return std::to_string(value); }

std::string FormatDouble(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", precision, value);
  return buffer;
}

void PrintBanner(const std::string& artifact, const std::string& description) {
  std::printf("==================================================\n");
  std::printf("%s — %s\n", artifact.c_str(), description.c_str());
  std::printf("scale=%.3g, per-run timeout=%.0fs (paper: 30h cap)\n",
              BenchScale(), BenchTimeoutSeconds());
  std::printf("==================================================\n");
}

}  // namespace bitruss::bench
