// Shared infrastructure for the per-figure/table benchmark harnesses.
//
// Each bench binary regenerates one table or figure of the paper's Section
// VI evaluation: it builds the relevant synthetic stand-in datasets, runs
// the relevant algorithms, and prints the same rows/series the paper plots.
// Two environment variables tune the protocol without recompiling:
//
//   BITRUSS_BENCH_SCALE    multiplies dataset sizes (default 1.0)
//   BITRUSS_BENCH_TIMEOUT  per-run deadline in seconds (default 30; the
//                          scaled-down analogue of the paper's 30-hour cap;
//                          timed-out entries print INF, as in Figure 9)

#ifndef BITRUSS_BENCH_BENCH_COMMON_H_
#define BITRUSS_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/bitruss_result.h"
#include "core/decompose.h"
#include "graph/bipartite_graph.h"

namespace bitruss::bench {

/// Dataset scale from BITRUSS_BENCH_SCALE (default 1.0).
double BenchScale();

/// Per-run deadline seconds from BITRUSS_BENCH_TIMEOUT (default 30).
double BenchTimeoutSeconds();

/// Generates a suite dataset at BenchScale(), caching per process.
const BipartiteGraph& BenchDataset(const std::string& name);

/// One timed decomposition run under the bench deadline.
struct RunOutcome {
  BitrussResult result;
  double seconds = 0;   ///< wall-clock including counting + index + peel
  bool timed_out = false;
};
RunOutcome TimedRun(const BipartiteGraph& g, Algorithm algorithm,
                    double tau = 0.02, bool track_per_edge = false);

/// "12.345" or "INF" (Figure 9's convention for >deadline runs).
std::string FormatSeconds(const RunOutcome& outcome);

/// Prints a markdown-style table: header row, separator, then rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  /// Flushes the table to stdout with aligned columns.
  void Print() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Shorthand number formatting.
std::string FormatCount(std::uint64_t value);
std::string FormatDouble(double value, int precision = 3);

/// Standard bench banner naming the paper artifact being regenerated.
void PrintBanner(const std::string& artifact, const std::string& description);

}  // namespace bitruss::bench

#endif  // BITRUSS_BENCH_BENCH_COMMON_H_
