// Shared infrastructure for the per-figure/table benchmark harnesses.
//
// Each bench binary regenerates one table or figure of the paper's Section
// VI evaluation: it builds the relevant synthetic stand-in datasets, runs
// the relevant algorithms, and prints the same rows/series the paper plots.
// Two environment variables tune the protocol without recompiling:
//
//   BITRUSS_BENCH_SCALE    multiplies dataset sizes (default 1.0)
//   BITRUSS_BENCH_TIMEOUT  per-run deadline in seconds (default 30; the
//                          scaled-down analogue of the paper's 30-hour cap;
//                          timed-out entries print INF, as in Figure 9)
//
// Machine-readable output: a bench main that calls ParseBenchArgs(argc,
// argv) accepts `--json=<path>`; WriteBenchJsonIfRequested() then writes
// every table the run printed plus the process MetricsRegistry snapshot as
// one JSON document (CI parses this instead of scraping stdout).

#ifndef BITRUSS_BENCH_BENCH_COMMON_H_
#define BITRUSS_BENCH_BENCH_COMMON_H_

#include <string>
#include <vector>

#include "core/bitruss_result.h"
#include "core/decompose.h"
#include "graph/bipartite_graph.h"
#include "obs/trace.h"

namespace bitruss::bench {

/// Dataset scale from BITRUSS_BENCH_SCALE (default 1.0).
double BenchScale();

/// Per-run deadline seconds from BITRUSS_BENCH_TIMEOUT (default 30).
double BenchTimeoutSeconds();

/// Generates a suite dataset at BenchScale(), caching per process.
const BipartiteGraph& BenchDataset(const std::string& name);

/// One timed decomposition run under the bench deadline.
struct RunOutcome {
  BitrussResult result;
  double seconds = 0;   ///< wall-clock including counting + index + peel
  bool timed_out = false;
};
RunOutcome TimedRun(const BipartiteGraph& g, Algorithm algorithm,
                    double tau = 0.02, bool track_per_edge = false,
                    obs::TraceRecorder* trace = nullptr);

/// "12.345" or "INF" (Figure 9's convention for >deadline runs).
std::string FormatSeconds(const RunOutcome& outcome);

/// Prints a markdown-style table: header row, separator, then rows.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);
  TablePrinter(std::string title, std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);
  /// Flushes the table to stdout with aligned columns; when `--json` was
  /// requested the table is also captured for WriteBenchJsonIfRequested().
  void Print() const;

 private:
  std::string title_;
  std::vector<std::vector<std::string>> rows_;
};

/// Scans argv for bench flags (currently `--json=<path>`).  Unknown
/// arguments are ignored so dataset positional args stay available.
void ParseBenchArgs(int argc, char** argv);

/// True when ParseBenchArgs saw `--json=<path>`.
bool BenchJsonRequested();

/// Writes `{"bench", "scale", "meta": {...}, "tables": [...], "metrics":
/// {...}}` to the `--json` path (tables captured from every
/// TablePrinter::Print since startup, metrics from
/// obs::MetricsRegistry::Default).  `meta` stamps the run for baseline
/// comparisons: git_sha and timestamp come from the caller via
/// BITRUSS_BENCH_GIT_SHA / BITRUSS_BENCH_TIMESTAMP (the bench binary has
/// no business shelling out to git or reading the clock differently per
/// platform; CI stamps both), hardware_threads from the machine.  No-op
/// without the flag; prints the destination path on success.
void WriteBenchJsonIfRequested();

/// Shorthand number formatting.
std::string FormatCount(std::uint64_t value);
std::string FormatDouble(double value, int precision = 3);

/// Standard bench banner naming the paper artifact being regenerated.
void PrintBanner(const std::string& artifact, const std::string& description);

}  // namespace bitruss::bench

#endif  // BITRUSS_BENCH_BENCH_COMMON_H_
