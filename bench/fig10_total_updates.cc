// Figure 10: the total number of butterfly support updates performed by
// BiT-BU, BiT-BU++ and BiT-PC on Github, D-label, D-style and Wiki-it.
// BU++'s batching reduces updates versus BU; PC's progressive compression
// cuts the bulk of the remaining (hub-edge) updates.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Figure 10", "total butterfly support updates (BU/BU++/PC)");

  TablePrinter table(
      {"Dataset", "BU updates", "BU++ updates", "PC updates", "PC/BU"});
  for (const char* name : {"Github", "D-label", "D-style", "Wiki-it"}) {
    const BipartiteGraph& g = BenchDataset(name);
    const RunOutcome bu = TimedRun(g, Algorithm::kBU);
    const RunOutcome bupp = TimedRun(g, Algorithm::kBUPlusPlus);
    const RunOutcome pc = TimedRun(g, Algorithm::kPC, /*tau=*/0.02);
    const auto fmt = [](const RunOutcome& r) {
      return r.timed_out ? std::string("INF")
                         : FormatCount(r.result.counters.support_updates);
    };
    std::string ratio = "-";
    if (!bu.timed_out && !pc.timed_out &&
        bu.result.counters.support_updates > 0) {
      ratio = FormatDouble(
          static_cast<double>(pc.result.counters.support_updates) /
              static_cast<double>(bu.result.counters.support_updates),
          3);
    }
    table.AddRow({name, fmt(bu), fmt(bupp), fmt(pc), ratio});
    std::fflush(stdout);
  }
  table.Print();
  return 0;
}
