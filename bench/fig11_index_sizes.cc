// Figure 11: size of the online indexes (MB) constructed by BiT-BU,
// BiT-BU++ and BiT-PC on Github, D-label, D-style and Wiki-it.  BU and
// BU++ share one full BE-Index; PC reports the largest compressed
// per-iteration index, which is strictly smaller.

#include <cstdio>

#include "bench_common.h"
#include "util/memory_tracker.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Figure 11", "online index sizes (MiB) of BU / BU++ / PC");

  TablePrinter table(
      {"Dataset", "BU (MiB)", "BU++ (MiB)", "PC peak (MiB)", "PC/BU"});
  for (const char* name : {"Github", "D-label", "D-style", "Wiki-it"}) {
    const BipartiteGraph& g = BenchDataset(name);
    const RunOutcome bu = TimedRun(g, Algorithm::kBU);
    const RunOutcome bupp = TimedRun(g, Algorithm::kBUPlusPlus);
    const RunOutcome pc = TimedRun(g, Algorithm::kPC, /*tau=*/0.02);
    const auto mib = [](const RunOutcome& r) {
      // A timed-out run has not built all its per-round indexes, so its
      // peak would understate the real footprint.
      if (r.timed_out) return std::string("INF");
      return FormatDouble(BytesToMiB(r.result.counters.peak_index_bytes), 2);
    };
    std::string ratio = "-";
    if (!bu.timed_out && !pc.timed_out &&
        bu.result.counters.peak_index_bytes > 0) {
      ratio = FormatDouble(
          static_cast<double>(pc.result.counters.peak_index_bytes) /
              static_cast<double>(bu.result.counters.peak_index_bytes),
          3);
    }
    table.AddRow({name, mib(bu), mib(bupp), mib(pc), ratio});
    std::fflush(stdout);
  }
  table.Print();
  return 0;
}
