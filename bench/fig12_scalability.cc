// Figure 12: scalability of BiT-BU, BiT-BU++ and BiT-PC when sampling 20%
// to 100% of the vertices of Github, D-label, D-style and Wiki-it (induced
// subgraphs, the paper's protocol).  "Tracker-XL" (bench-only, ~1M edges at
// scale 1) extends the sweep past the default suite's 200k-edge ceiling;
// set BITRUSS_NUM_THREADS to run the counting/index phases over a pool.

#include <cstdio>

#include "bench_common.h"
#include "graph/subgraph.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Figure 12", "runtime vs vertex sample percentage");

  for (const char* name :
       {"Github", "D-label", "D-style", "Wiki-it", "Tracker-XL"}) {
    const BipartiteGraph& full = BenchDataset(name);
    std::printf("\n[%s]\n", name);
    TablePrinter table(
        {"sample %", "|E|", "BU (s)", "BU++ (s)", "PC (s)"});
    for (const unsigned pct : {20u, 40u, 60u, 80u, 100u}) {
      const BipartiteGraph sampled =
          pct == 100 ? BipartiteGraph(full)
                     : InducedVertexSample(full, pct, /*seed=*/1234 + pct);
      const RunOutcome bu = TimedRun(sampled, Algorithm::kBU);
      const RunOutcome bupp = TimedRun(sampled, Algorithm::kBUPlusPlus);
      const RunOutcome pc = TimedRun(sampled, Algorithm::kPC, 0.02);
      table.AddRow({std::to_string(pct), FormatCount(sampled.NumEdges()),
                    FormatSeconds(bu), FormatSeconds(bupp),
                    FormatSeconds(pc)});
      std::fflush(stdout);
    }
    table.Print();
  }
  return 0;
}
