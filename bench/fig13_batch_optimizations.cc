// Figure 13: effect of the two batch-based optimizations — BiT-BU vs
// BiT-BU+ (batch edge processing) vs BiT-BU++ (plus batch bloom
// processing) on Github, D-label, D-style and Wiki-it.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Figure 13", "batch optimizations: BU vs BU+ vs BU++");

  TablePrinter table({"Dataset", "BU (s)", "BU+ (s)", "BU++ (s)",
                      "BU updates", "BU+ updates", "BU++ updates"});
  for (const char* name : {"Github", "D-label", "D-style", "Wiki-it"}) {
    const BipartiteGraph& g = BenchDataset(name);
    const RunOutcome bu = TimedRun(g, Algorithm::kBU);
    const RunOutcome bup = TimedRun(g, Algorithm::kBUPlus);
    const RunOutcome bupp = TimedRun(g, Algorithm::kBUPlusPlus);
    const auto upd = [](const RunOutcome& r) {
      return r.timed_out ? std::string("INF")
                         : FormatCount(r.result.counters.support_updates);
    };
    table.AddRow({name, FormatSeconds(bu), FormatSeconds(bup),
                  FormatSeconds(bupp), upd(bu), upd(bup), upd(bupp)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf("\n(Batch edge processing cuts the update count; batch bloom "
              "processing further cuts bloom traversals.)\n");
  return 0;
}
