// Figure 14: effect of BiT-PC's tau parameter on (a) time cost and
// (b) number of support updates, for tau in {0.02, 0.05, 0.1, 0.2, 1} on
// Github, D-label, D-style and Wiki-it.

#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Figure 14", "BiT-PC: effect of tau");

  const double taus[] = {0.02, 0.05, 0.1, 0.2, 1.0};

  TablePrinter time_table({"Dataset", "tau=0.02", "tau=0.05", "tau=0.1",
                           "tau=0.2", "tau=1"});
  TablePrinter upd_table({"Dataset", "tau=0.02", "tau=0.05", "tau=0.1",
                          "tau=0.2", "tau=1"});

  for (const char* name : {"Github", "D-label", "D-style", "Wiki-it"}) {
    const BipartiteGraph& g = BenchDataset(name);
    std::vector<std::string> times = {name};
    std::vector<std::string> updates = {name};
    for (const double tau : taus) {
      const RunOutcome pc = TimedRun(g, Algorithm::kPC, tau);
      times.push_back(FormatSeconds(pc));
      updates.push_back(
          pc.timed_out ? std::string("INF")
                       : FormatCount(pc.result.counters.support_updates));
      std::fflush(stdout);
    }
    time_table.AddRow(std::move(times));
    upd_table.AddRow(std::move(updates));
  }
  std::printf("\n(a) time cost (s)\n");
  time_table.Print();
  std::printf("\n(b) number of updates\n");
  upd_table.Print();
  std::printf("\n(Expected shape: updates increase with tau; the time curve "
              "has a shallow minimum — the paper recommends 0.05-0.2.)\n");
  return 0;
}
