// Figure 5: time cost of BiT-BS split into counting vs peeling on Github,
// Twitter, D-label and D-style.  The peeling phase dominating by orders of
// magnitude is the paper's motivation for the BE-Index.

#include <cstdio>

#include "bench_common.h"
#include "obs/metrics.h"

int main(int argc, char** argv) {
  using namespace bitruss;
  using namespace bitruss::bench;

  ParseBenchArgs(argc, argv);
  PrintBanner("Figure 5", "BiT-BS counting vs peeling time breakdown");

  TablePrinter table("bs_breakdown", {"Dataset", "counting (s)", "peeling (s)",
                                      "peel/count ratio"});
  for (const char* name : {"Github", "Twitter", "D-label", "D-style"}) {
    const BipartiteGraph& g = BenchDataset(name);
    const RunOutcome run = TimedRun(g, Algorithm::kBS);
    const double counting = run.result.counters.counting_seconds;
    const double peeling = run.result.counters.peeling_seconds;
    table.AddRow({name, FormatDouble(counting, 4),
                  run.timed_out ? "INF" : FormatDouble(peeling, 4),
                  run.timed_out
                      ? ">" + FormatDouble(peeling / std::max(counting, 1e-9), 1)
                      : FormatDouble(peeling / std::max(counting, 1e-9), 1)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf("\n(The paper reports the peeling phase dominating BiT-BS on "
              "all four datasets.)\n");
  WriteBenchJsonIfRequested();
  return 0;
}
