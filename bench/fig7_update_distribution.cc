// Figure 7: number of butterfly support updates binned by the edges'
// *original* butterfly supports, on the D-style stand-in, for BiT-BU,
// BiT-BU++ and BiT-PC.  The paper's observation: ~80% of BU++'s updates
// land on hub edges (the top support bins), and BiT-PC eliminates most of
// them.  Bin edges scale with the dataset's maximum support.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "butterfly/support_histogram.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Figure 7",
              "support updates binned by original edge support (D-style)");

  const BipartiteGraph& g = BenchDataset("D-style");

  const RunOutcome bu = TimedRun(g, Algorithm::kBU, 0.02, true);
  const RunOutcome bupp = TimedRun(g, Algorithm::kBUPlusPlus, 0.02, true);
  const RunOutcome pc = TimedRun(g, Algorithm::kPC, 0.02, true);
  if (bu.timed_out || bupp.timed_out || pc.timed_out) {
    // Partial update counts would misrepresent the distribution.
    std::printf("timed out; raise BITRUSS_BENCH_TIMEOUT.\n");
    return 0;
  }

  // Scale the paper's absolute bins (<=5000 ... >20000 on real D-style) to
  // the stand-in.  Supports are power-law distributed, so geometric bin
  // edges anchored at the max spread the hub tail across bins the way the
  // paper's absolute edges do.
  const SupportT max_sup = bu.result.MaxSupport();
  const std::vector<SupportT> bounds = {
      std::max<SupportT>(1, max_sup / 64), std::max<SupportT>(2, max_sup / 16),
      std::max<SupportT>(3, max_sup / 4), std::max<SupportT>(4, max_sup / 2)};

  const auto histogram = [&](const RunOutcome& run) {
    SupportHistogram h(bounds);
    const auto& per_edge = run.result.counters.per_edge_updates;
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      h.Add(run.result.original_support[e], per_edge[e]);
    }
    return h;
  };
  const SupportHistogram hbu = histogram(bu);
  const SupportHistogram hbupp = histogram(bupp);
  const SupportHistogram hpc = histogram(pc);

  TablePrinter table({"original sup(e) range", "BU updates", "BU++ updates",
                      "PC updates"});
  for (std::size_t bin = 0; bin < hbu.NumBins(); ++bin) {
    table.AddRow({hbu.BinLabel(bin), FormatCount(hbu.BinTotal(bin)),
                  FormatCount(hbupp.BinTotal(bin)),
                  FormatCount(hpc.BinTotal(bin))});
  }
  table.Print();

  // The paper's 80% observation, recomputed for the stand-in.
  const std::uint64_t total = bupp.result.counters.support_updates;
  std::uint64_t hub = 0;
  for (std::size_t bin = 1; bin < hbupp.NumBins(); ++bin) {
    hub += hbupp.BinTotal(bin);
  }
  std::printf("\nBU++ updates on edges above the first bin: %.1f%% of %llu\n",
              total ? 100.0 * static_cast<double>(hub) / total : 0.0,
              static_cast<unsigned long long>(total));
  return 0;
}
