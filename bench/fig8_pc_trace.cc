// Figure 8 (illustration made measurable): BiT-PC's progressive
// compression.  Per iteration: the threshold theta, the candidate subgraph
// size, how many bitruss numbers were fixed, and the compressed index
// footprint — showing the candidate shrinking from G>=kmax toward G>=0
// while hub edges are assigned early and compressed away.

#include <cstdio>

#include "bench_common.h"
#include "util/memory_tracker.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Figure 8", "BiT-PC progressive compression trace (D-style)");

  const BipartiteGraph& g = BenchDataset("D-style");
  const RunOutcome pc = TimedRun(g, Algorithm::kPC, /*tau=*/0.1);
  if (pc.timed_out) {
    std::printf("PC timed out; raise BITRUSS_BENCH_TIMEOUT.\n");
    return 0;
  }

  TablePrinter table({"iter", "theta", "candidate |E|", "assigned",
                      "index (MiB)"});
  for (std::size_t i = 0; i < pc.result.pc_trace.size(); ++i) {
    const PCIterationTrace& t = pc.result.pc_trace[i];
    table.AddRow({std::to_string(i + 1), FormatCount(t.theta),
                  FormatCount(t.candidate_edges),
                  FormatCount(t.assigned_now),
                  FormatDouble(BytesToMiB(t.index_bytes), 2)});
  }
  table.Print();
  std::printf("\ntotal: %u edges over %zu iterations, %.3fs\n", g.NumEdges(),
              pc.result.pc_trace.size(), pc.seconds);
  return 0;
}
