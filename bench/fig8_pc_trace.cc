// Figure 8 (illustration made measurable): BiT-PC's progressive
// compression.  Per iteration: the threshold theta, the candidate subgraph
// size, how many bitruss numbers were fixed, and the compressed index
// footprint — showing the candidate shrinking from G>=kmax toward G>=0
// while hub edges are assigned early and compressed away.
//
// The rows come from the observability layer's span trace: RunPC records
// one "pc/round" span per theta with the candidate/assigned/index-bytes
// numbers as notes, so this harness reads what the decomposition actually
// did instead of keeping its own side channel.

#include <cstdio>

#include "bench_common.h"
#include "obs/trace.h"
#include "util/memory_tracker.h"

namespace {

double NoteValue(const bitruss::obs::SpanRecord& span, const char* key) {
  for (const auto& [name, value] : span.notes) {
    if (name == key) return value;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bitruss;
  using namespace bitruss::bench;

  ParseBenchArgs(argc, argv);
  PrintBanner("Figure 8", "BiT-PC progressive compression trace (D-style)");

  const BipartiteGraph& g = BenchDataset("D-style");
  obs::TraceRecorder trace;
  const RunOutcome pc = TimedRun(g, Algorithm::kPC, /*tau=*/0.1,
                                 /*track_per_edge=*/false, &trace);
  if (pc.timed_out) {
    std::printf("PC timed out; raise BITRUSS_BENCH_TIMEOUT.\n");
    return 0;
  }

  TablePrinter table("pc_trace", {"iter", "theta", "candidate |E|", "assigned",
                                  "index (MiB)", "round (s)"});
  std::size_t iter = 0;
  for (const obs::SpanRecord& span : trace.Events()) {
    if (span.name != "pc/round") continue;
    table.AddRow({std::to_string(++iter),
                  FormatCount(static_cast<std::uint64_t>(
                      NoteValue(span, "theta"))),
                  FormatCount(static_cast<std::uint64_t>(
                      NoteValue(span, "candidate_edges"))),
                  FormatCount(static_cast<std::uint64_t>(
                      NoteValue(span, "assigned"))),
                  FormatDouble(BytesToMiB(static_cast<std::uint64_t>(
                                   NoteValue(span, "index_bytes"))),
                               2),
                  FormatDouble(span.duration_seconds, 4)});
  }
  table.Print();
  std::printf("\ntotal: %u edges over %zu iterations, %.3fs\n", g.NumEdges(),
              iter, pc.seconds);
  std::printf("\n-- phase trace --\n%s", trace.IndentedSummary().c_str());
  WriteBenchJsonIfRequested();
  return 0;
}
