// Figure 9: total runtime of BiT-BS / BiT-BU / BiT-BU++ / BiT-PC on all 15
// datasets.  Runs exceeding the deadline print INF, mirroring the paper's
// 30-hour cap (BS is INF on the large datasets there; only PC finishes on
// the largest four).

#include <cstdio>

#include "bench_common.h"
#include "gen/dataset_suite.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Figure 9", "runtime of BS / BU / BU++ / PC on all datasets");

  TablePrinter table({"Dataset", "BS (s)", "BU (s)", "BU++ (s)", "PC (s)"});
  for (const std::string& name : DatasetNames()) {
    const BipartiteGraph& g = BenchDataset(name);
    const RunOutcome bs = TimedRun(g, Algorithm::kBS);
    const RunOutcome bu = TimedRun(g, Algorithm::kBU);
    const RunOutcome bupp = TimedRun(g, Algorithm::kBUPlusPlus);
    const RunOutcome pc = TimedRun(g, Algorithm::kPC, /*tau=*/0.02);
    table.AddRow({name, FormatSeconds(bs), FormatSeconds(bu),
                  FormatSeconds(bupp), FormatSeconds(pc)});
    std::fflush(stdout);
  }
  table.Print();
  std::printf("\n(Expected shape: the BE-Index algorithms beat BS everywhere;"
              " BS hits INF on the largest datasets; PC wins where hub edges"
              " dominate.)\n");
  return 0;
}
