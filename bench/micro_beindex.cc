// Google-benchmark micro suite: BE-Index construction and edge removal
// (Lemma 5's O(sup(e)) removal is the paper's core speedup).

#include <benchmark/benchmark.h>

#include "butterfly/butterfly_counting.h"
#include "core/be_index_builder.h"
#include "core/peeling_state.h"
#include "gen/chung_lu.h"
#include "graph/vertex_priority.h"

namespace {

using namespace bitruss;

BipartiteGraph SkewedGraph(EdgeId m) {
  ChungLuParams p;
  p.num_upper = m / 6;
  p.num_lower = m / 6;
  p.num_edges = m;
  p.upper_exponent = 0.8;
  p.lower_exponent = 0.8;
  p.seed = 4242;
  return GenerateChungLu(p);
}

void BM_BuildBEIndex(benchmark::State& state) {
  const BipartiteGraph g = SkewedGraph(state.range(0));
  const VertexPriority prio = VertexPriority::Compute(g);
  const PriorityAdjacency adj(g, prio);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BEIndexBuilder::Build(g, adj));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_BuildBEIndex)->Arg(10000)->Arg(50000)->Arg(150000);

void BM_BuildCompressedIndexHalfAssigned(benchmark::State& state) {
  const BipartiteGraph g = SkewedGraph(state.range(0));
  const VertexPriority prio = VertexPriority::Compute(g);
  const PriorityAdjacency adj(g, prio);
  std::vector<std::uint8_t> assigned(g.NumEdges(), 0);
  for (EdgeId e = 0; e < g.NumEdges(); e += 2) assigned[e] = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BEIndexBuilder::BuildCompressed(g, adj, assigned));
  }
}
BENCHMARK(BM_BuildCompressedIndexHalfAssigned)->Arg(50000);

// Full peel through the index: amortized O(#butterflies) total, i.e.
// O(sup(e)) per removed edge.
void BM_PeelThroughIndex(benchmark::State& state) {
  const BipartiteGraph g = SkewedGraph(state.range(0));
  const VertexPriority prio = VertexPriority::Compute(g);
  const PriorityAdjacency adj(g, prio);
  for (auto _ : state) {
    state.PauseTiming();
    BEIndex index = BEIndexBuilder::Build(g, adj);
    std::vector<SupportT> sup = CountEdgeSupports(g, adj);
    PeelCounters counters;
    Peeler peeler(std::move(index), std::move(sup), {}, &counters);
    state.ResumeTiming();
    peeler.Run(Peeler::Mode::kSingle, Deadline(), [](EdgeId, SupportT) {});
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_PeelThroughIndex)->Arg(10000)->Arg(50000);

}  // namespace

BENCHMARK_MAIN();
