// Google-benchmark micro suite: butterfly counting primitives underlying
// every decomposition phase (the O(sum min{d(u),d(v)}) counting claim).

#include <benchmark/benchmark.h>

#include "butterfly/butterfly_counting.h"
#include "gen/chung_lu.h"
#include "gen/random_bipartite.h"
#include "graph/vertex_priority.h"
#include "util/thread_pool.h"

namespace {

using namespace bitruss;

BipartiteGraph SkewedGraph(EdgeId m, double exponent) {
  ChungLuParams p;
  p.num_upper = m / 6;
  p.num_lower = m / 6;
  p.num_edges = m;
  p.upper_exponent = exponent;
  p.lower_exponent = exponent;
  p.seed = 12345;
  return GenerateChungLu(p);
}

void BM_VertexPriority(benchmark::State& state) {
  const BipartiteGraph g = SkewedGraph(state.range(0), 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(VertexPriority::Compute(g));
  }
  state.SetItemsProcessed(state.iterations() * g.NumVertices());
}
BENCHMARK(BM_VertexPriority)->Arg(10000)->Arg(50000);

void BM_PriorityAdjacency(benchmark::State& state) {
  const BipartiteGraph g = SkewedGraph(state.range(0), 0.8);
  const VertexPriority prio = VertexPriority::Compute(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(PriorityAdjacency(g, prio));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_PriorityAdjacency)->Arg(10000)->Arg(50000);

void BM_CountEdgeSupports(benchmark::State& state) {
  const BipartiteGraph g = SkewedGraph(state.range(0), 0.8);
  const VertexPriority prio = VertexPriority::Compute(g);
  const PriorityAdjacency adj(g, prio);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountEdgeSupports(g, adj));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_CountEdgeSupports)->Arg(10000)->Arg(50000)->Arg(150000);

// Thread scaling of the anchor-partitioned parallel counter; {edges,
// threads}.  A 1-thread pool short-circuits to the plain sequential
// function, so the x1 row is a baseline equal to BM_CountEdgeSupports
// above; the x2+ rows measure chunked-path scaling against it.
void BM_CountEdgeSupportsThreads(benchmark::State& state) {
  const BipartiteGraph g = SkewedGraph(state.range(0), 0.8);
  const VertexPriority prio = VertexPriority::Compute(g);
  const PriorityAdjacency adj(g, prio);
  ThreadPool pool(static_cast<unsigned>(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountEdgeSupports(g, adj, &pool));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_CountEdgeSupportsThreads)
    ->Args({150000, 1})
    ->Args({150000, 2})
    ->Args({150000, 4})
    ->Args({150000, 8});

void BM_CountTotalUniformVsSkewed(benchmark::State& state) {
  const bool skewed = state.range(1) != 0;
  const BipartiteGraph g =
      skewed ? SkewedGraph(state.range(0), 0.9)
             : GenerateUniformBipartite(state.range(0) / 6,
                                        state.range(0) / 6, state.range(0),
                                        777);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTotalButterflies(g));
  }
}
BENCHMARK(BM_CountTotalUniformVsSkewed)
    ->Args({50000, 0})
    ->Args({50000, 1});

}  // namespace

BENCHMARK_MAIN();
