// Google-benchmark micro suite: DynamicBipartiteGraph primitives — seeding
// from CSR, mixed insert/delete round-trips with incremental support
// maintenance, pure insertion streams, and Snapshot() compaction back to
// CSR.  Split out of micro_extensions.cc, which stays excluded until the
// remaining extension modules land.

#include <benchmark/benchmark.h>

#include "dynamic/dynamic_graph.h"
#include "gen/chung_lu.h"
#include "util/random.h"

namespace {

using namespace bitruss;

BipartiteGraph SkewedGraph(EdgeId m, double exponent = 0.8) {
  ChungLuParams p;
  p.num_upper = m / 6;
  p.num_lower = m / 6;
  p.num_edges = m;
  p.upper_exponent = exponent;
  p.lower_exponent = exponent;
  p.seed = 12345;
  return GenerateChungLu(p);
}

void BM_DynamicSeedFromCsr(benchmark::State& state) {
  const BipartiteGraph g = SkewedGraph(state.range(0));
  for (auto _ : state) {
    DynamicBipartiteGraph dynamic(g);
    benchmark::DoNotOptimize(dynamic.NumButterflies());
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_DynamicSeedFromCsr)->Arg(20000)->Arg(80000);

void BM_DynamicInsertDelete(benchmark::State& state) {
  const BipartiteGraph g = SkewedGraph(state.range(0));
  DynamicBipartiteGraph dynamic(g);
  Rng rng(99);
  for (auto _ : state) {
    const auto u = static_cast<VertexId>(rng.Below(g.NumUpper()));
    const auto v = static_cast<VertexId>(rng.Below(g.NumLower()));
    auto inserted = dynamic.InsertEdge(u, v);
    if (inserted.ok()) {
      benchmark::DoNotOptimize(dynamic.DeleteEdge(inserted.value()));
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DynamicInsertDelete)->Arg(20000)->Arg(80000);

void BM_DynamicMixedStream(benchmark::State& state) {
  const BipartiteGraph g = SkewedGraph(state.range(0));
  DynamicBipartiteGraph dynamic(g);
  Rng rng(7);
  std::vector<EdgeId> inserted;
  for (auto _ : state) {
    if (!inserted.empty() && rng.NextBool(0.5)) {
      const std::size_t pick = rng.Below(inserted.size());
      benchmark::DoNotOptimize(dynamic.DeleteEdge(inserted[pick]));
      inserted[pick] = inserted.back();
      inserted.pop_back();
    } else {
      const auto u = static_cast<VertexId>(rng.Below(g.NumUpper()));
      const auto v = static_cast<VertexId>(rng.Below(g.NumLower()));
      auto result = dynamic.InsertEdge(u, v);
      if (result.ok()) inserted.push_back(result.value());
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DynamicMixedStream)->Arg(20000)->Arg(80000);

void BM_DynamicSnapshot(benchmark::State& state) {
  const BipartiteGraph g = SkewedGraph(state.range(0));
  DynamicBipartiteGraph dynamic(g);
  // Churn a fraction of the edges so the snapshot pays for free-list holes.
  Rng rng(3);
  for (int i = 0; i < state.range(0) / 10; ++i) {
    const auto u = static_cast<VertexId>(rng.Below(g.NumUpper()));
    const auto v = static_cast<VertexId>(rng.Below(g.NumLower()));
    const EdgeId e = dynamic.FindEdge(u, g.NumUpper() + v);
    if (e != kInvalidEdge) {
      (void)dynamic.DeleteEdge(e);
    } else {
      (void)dynamic.InsertEdge(u, v);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(dynamic.Snapshot());
  }
  state.SetItemsProcessed(state.iterations() * dynamic.NumEdges());
}
BENCHMARK(BM_DynamicSnapshot)->Arg(20000)->Arg(80000);

}  // namespace

BENCHMARK_MAIN();
