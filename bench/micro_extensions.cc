// Google-benchmark micro suite: primitives of the extension modules —
// sampling estimators, (alpha,beta)-core peeling, truss supports, tip
// peeling, community queries and result verification.  (Dynamic-graph
// benchmarks live in micro_dynamic.cc, which builds today.)

#include <benchmark/benchmark.h>

#include "butterfly/approx_counting.h"
#include "cohesion/ab_core.h"
#include "cohesion/tip_decomposition.h"
#include "core/community_search.h"
#include "core/decompose.h"
#include "core/verify.h"
#include "gen/chung_lu.h"
#include "graph/projection.h"
#include "truss/truss_decomposition.h"
#include "util/random.h"

namespace {

using namespace bitruss;

BipartiteGraph SkewedGraph(EdgeId m, double exponent = 0.8) {
  ChungLuParams p;
  p.num_upper = m / 6;
  p.num_lower = m / 6;
  p.num_edges = m;
  p.upper_exponent = exponent;
  p.lower_exponent = exponent;
  p.seed = 12345;
  return GenerateChungLu(p);
}

void BM_WedgeSamplingEstimate(benchmark::State& state) {
  const BipartiteGraph g = SkewedGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EstimateButterflies(
        g, SamplingStrategy::kWedge, static_cast<std::uint64_t>(
            state.range(1)), 7));
  }
  state.SetItemsProcessed(state.iterations() * state.range(1));
}
BENCHMARK(BM_WedgeSamplingEstimate)
    ->Args({50000, 1000})
    ->Args({50000, 10000});

void BM_ABCoreExtraction(benchmark::State& state) {
  const BipartiteGraph g = SkewedGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeABCore(g, 2, 2));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_ABCoreExtraction)->Arg(50000)->Arg(150000);

void BM_TriangleSupports(benchmark::State& state) {
  const BipartiteGraph g = SkewedGraph(state.range(0));
  const UnipartiteGraph projected =
      ProjectOntoLayer(g, /*upper_layer=*/true, /*max_edges=*/200000);
  const TriangleGraph indexed(projected);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CountTriangleSupports(indexed));
  }
  state.SetItemsProcessed(state.iterations() * indexed.NumEdges());
}
BENCHMARK(BM_TriangleSupports)->Arg(20000);

void BM_TipDecomposition(benchmark::State& state) {
  const BipartiteGraph g = SkewedGraph(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(TipDecomposition(g, /*peel_upper=*/true));
  }
  state.SetItemsProcessed(state.iterations() * g.NumUpper());
}
BENCHMARK(BM_TipDecomposition)->Arg(20000)->Arg(50000);

void BM_CommunityQuery(benchmark::State& state) {
  const BipartiteGraph g = SkewedGraph(state.range(0));
  const BitrussResult result = Decompose(g);
  // Query the strongest community of every edge in round-robin.
  EdgeId e = 0;
  for (auto _ : state) {
    while (result.phi[e] == 0) e = (e + 1) % g.NumEdges();
    benchmark::DoNotOptimize(MaximalCommunityOfEdge(g, result.phi, e));
    e = (e + 1) % g.NumEdges();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CommunityQuery)->Arg(20000);

void BM_VerifyDecomposition(benchmark::State& state) {
  const BipartiteGraph g = SkewedGraph(state.range(0));
  const BitrussResult result = Decompose(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(VerifyBitrussNumbers(g, result.phi));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_VerifyDecomposition)->Arg(20000);

}  // namespace

BENCHMARK_MAIN();
