// Google-benchmark micro suite: end-to-end decomposition algorithms on a
// fixed skewed instance — the per-algorithm costs behind Figures 9 and 13.

#include <benchmark/benchmark.h>

#include "core/decompose.h"
#include "core/parallel_peel.h"
#include "gen/chung_lu.h"

namespace {

using namespace bitruss;

const BipartiteGraph& SharedGraph() {
  static const BipartiteGraph* graph = [] {
    ChungLuParams p;
    p.num_upper = 8000;
    p.num_lower = 2000;
    p.num_edges = 50000;
    p.upper_exponent = 0.7;
    p.lower_exponent = 0.8;
    p.seed = 31415;
    return new BipartiteGraph(GenerateChungLu(p));
  }();
  return *graph;
}

void RunAlgorithm(benchmark::State& state, Algorithm algorithm, double tau) {
  const BipartiteGraph& g = SharedGraph();
  DecomposeOptions options;
  options.algorithm = algorithm;
  options.tau = tau;
  for (auto _ : state) {
    benchmark::DoNotOptimize(Decompose(g, options));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}

void BM_DecomposeBS(benchmark::State& state) {
  RunAlgorithm(state, Algorithm::kBS, 0.02);
}
void BM_DecomposeBU(benchmark::State& state) {
  RunAlgorithm(state, Algorithm::kBU, 0.02);
}
void BM_DecomposeBUPlus(benchmark::State& state) {
  RunAlgorithm(state, Algorithm::kBUPlus, 0.02);
}
void BM_DecomposeBUPlusPlus(benchmark::State& state) {
  RunAlgorithm(state, Algorithm::kBUPlusPlus, 0.02);
}
void BM_DecomposePCTau002(benchmark::State& state) {
  RunAlgorithm(state, Algorithm::kPC, 0.02);
}
void BM_DecomposePCTau02(benchmark::State& state) {
  RunAlgorithm(state, Algorithm::kPC, 0.2);
}

BENCHMARK(BM_DecomposeBS)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DecomposeBU)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DecomposeBUPlus)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DecomposeBUPlusPlus)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DecomposePCTau002)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DecomposePCTau02)->Unit(benchmark::kMillisecond);

// Thread scaling of the pipeline, both shapes: BU++ with parallel counting
// and index construction (peel sequential), and the round-based parallel
// peeler end to end.  Arg = thread count.
void BM_DecomposeBUPlusPlusThreads(benchmark::State& state) {
  const BipartiteGraph& g = SharedGraph();
  DecomposeOptions options;
  options.algorithm = Algorithm::kBUPlusPlus;
  options.parallel.num_threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Decompose(g, options));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
void BM_DecomposeParallelPeelThreads(benchmark::State& state) {
  const BipartiteGraph& g = SharedGraph();
  ParallelPeelOptions options;
  options.num_threads = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecomposeParallelPeel(g, options));
  }
  state.SetItemsProcessed(state.iterations() * g.NumEdges());
}
BENCHMARK(BM_DecomposeBUPlusPlusThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DecomposeParallelPeelThreads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
