// Closed-loop serving bench: 1 ingest thread + N reader threads against a
// BitrussService, the measured form of the ROADMAP's "serve heavy traffic"
// claim.
//
// Protocol, per dataset and reader count: a BitrussService is seeded from
// the stand-in graph; one ingest thread submits a cyclic mixed
// insert/delete stream (forward half + mirrored undo half, so the cycle
// returns to the seed state and can repeat indefinitely), retrying on
// backpressure; N reader threads run over the PR 5 thread pool
// (util/thread_pool.h), each in a tight loop of snapshot acquisition +
// point phi/support reads + periodic top-k, sampling staleness
// (writer-applied updates minus the snapshot's covered updates) on every
// acquisition.  After BITRUSS_SERVE_SECONDS (default 1.0) the loop stops
// and the row reports applied-updates/s, aggregate read QPS, and
// mean/max staleness.  The final table prints the 1 -> 4 reader aggregate
// read-QPS scaling per dataset (lock-free snapshot reads should not lose
// throughput as readers are added; gaining requires spare cores).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "dynamic/dynamic_graph.h"
#include "obs/metrics.h"
#include "serve/bitruss_service.h"
#include "util/random.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace bitruss;
using namespace bitruss::bench;

double ServeSeconds() {
  if (const char* env = std::getenv("BITRUSS_SERVE_SECONDS")) {
    const double parsed = std::atof(env);
    if (parsed > 0) return parsed;
  }
  return 1.0;
}

// Cyclic valid stream: `half` random valid ops simulated forward, then the
// mirror image undoing them in reverse, so state returns to the seed and
// the stream can be replayed end to end forever.
std::vector<EdgeUpdate> MakeCyclicStream(const BipartiteGraph& seed,
                                         int half, std::uint64_t rng_seed) {
  DynamicBipartiteGraph sim(seed);
  Rng rng(rng_seed);
  std::vector<std::pair<VertexId, VertexId>> live;
  for (EdgeId slot = 0; slot < sim.NumSlots(); ++slot) {
    if (sim.IsLive(slot)) {
      live.emplace_back(sim.EdgeUpper(slot),
                        sim.EdgeLower(slot) - sim.NumUpper());
    }
  }
  std::vector<EdgeUpdate> ops;
  ops.reserve(2 * half);
  while (static_cast<int>(ops.size()) < half) {
    if (!live.empty() && rng.NextBool(0.5)) {
      const std::size_t pick = rng.Below(live.size());
      const auto [u, l] = live[pick];
      sim.DeleteEdge(sim.FindEdge(u, sim.NumUpper() + l));
      ops.push_back({EdgeUpdate::Kind::kDelete, u, l});
      live[pick] = live.back();
      live.pop_back();
    } else {
      const auto u = static_cast<VertexId>(rng.Below(sim.NumUpper()));
      const auto l = static_cast<VertexId>(rng.Below(sim.NumLower()));
      if (!sim.InsertEdge(u, l).ok()) continue;
      ops.push_back({EdgeUpdate::Kind::kInsert, u, l});
      live.emplace_back(u, l);
    }
  }
  for (int i = half - 1; i >= 0; --i) {  // undo in reverse order
    const EdgeUpdate& op = ops[i];
    ops.push_back({op.kind == EdgeUpdate::Kind::kInsert
                       ? EdgeUpdate::Kind::kDelete
                       : EdgeUpdate::Kind::kInsert,
                   op.upper_local, op.lower_local});
  }
  return ops;
}

struct RowResult {
  double applied_per_second = 0;
  double read_qps = 0;
  double mean_staleness = 0;
  std::uint64_t max_staleness = 0;
  std::uint64_t snapshots = 0;
};

RowResult RunClosedLoop(const BipartiteGraph& seed,
                        const std::vector<EdgeUpdate>& ops,
                        unsigned num_readers, double seconds) {
  BitrussServiceOptions options;
  options.queue_capacity = 4096;
  options.publish_every_updates = 32;
  options.publish_interval_ms = 5.0;
  BitrussService service(seed, options);

  std::atomic<bool> stop{false};

  // Ingest thread: drives the cyclic stream as fast as backpressure
  // allows, and owns the clock that ends the run.
  std::thread ingest([&] {
    Timer timer;
    std::size_t next = 0;
    while (timer.Seconds() < seconds) {
      const Status status = service.Submit(ops[next % ops.size()]);
      if (status.ok()) {
        ++next;
      } else {
        std::this_thread::yield();  // queue full; let the writer catch up
      }
    }
    stop.store(true, std::memory_order_release);
  });

  // Reader threads over the PR 5 pool: one chunk per reader, the calling
  // thread serves as reader 0.
  std::vector<std::uint64_t> reads(num_readers, 0);
  std::vector<std::uint64_t> staleness_sum(num_readers, 0);
  std::vector<std::uint64_t> staleness_samples(num_readers, 0);
  std::vector<std::uint64_t> staleness_max(num_readers, 0);
  ThreadPool pool(num_readers);
  pool.ParallelForChunks(
      0, num_readers, num_readers,
      [&](std::uint64_t chunk_begin, std::uint64_t, unsigned chunk,
          unsigned) {
        (void)chunk_begin;
        std::uint64_t local_reads = 0;
        std::uint64_t sink = 0;
        EdgeId probe = 0;
        while (!stop.load(std::memory_order_acquire)) {
          const auto snap = service.Snapshot();
          const std::uint64_t applied = service.AppliedUpdates();
          const std::uint64_t lag = applied > snap->applied_updates
                                        ? applied - snap->applied_updates
                                        : 0;
          staleness_sum[chunk] += lag;
          ++staleness_samples[chunk];
          if (lag > staleness_max[chunk]) staleness_max[chunk] = lag;
          // Four point reads per snapshot acquisition, plus a periodic
          // top-k to exercise the scan path.
          for (int i = 0; i < 4; ++i) {
            sink += snap->Phi(probe % (snap->num_slots + 1));
            ++probe;
            ++local_reads;
          }
          if ((local_reads & 1023u) == 0) sink += snap->TopKPhi(8).size();
        }
        reads[chunk] = local_reads + (sink & 1);  // keep sink observable
      });

  ingest.join();
  const std::uint64_t applied = service.AppliedUpdates();
  const auto stats = service.Stats();
  service.Shutdown(/*drain=*/true);

  RowResult row;
  row.applied_per_second = static_cast<double>(applied) / seconds;
  std::uint64_t total_reads = 0, total_lag = 0, total_samples = 0;
  for (unsigned r = 0; r < num_readers; ++r) {
    total_reads += reads[r];
    total_lag += staleness_sum[r];
    total_samples += staleness_samples[r];
    if (staleness_max[r] > row.max_staleness) {
      row.max_staleness = staleness_max[r];
    }
  }
  row.read_qps = static_cast<double>(total_reads) / seconds;
  row.mean_staleness = total_samples == 0
                           ? 0
                           : static_cast<double>(total_lag) /
                                 static_cast<double>(total_samples);
  row.snapshots = stats.published_snapshots;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  PrintBanner("Serving closed loop",
              "1 ingest thread + N snapshot readers over BitrussService");

  const double seconds = ServeSeconds();
  const int half = static_cast<int>(400 * BenchScale()) + 50;

  TablePrinter table("closed_loop",
                     {"Dataset", "|E|", "readers", "applied/s", "read QPS",
                      "QPS/reader", "mean stale", "max stale", "snapshots"});
  std::map<std::string, std::map<unsigned, double>> qps_by_readers;
  for (const char* name : {"Writer", "Github"}) {
    const BipartiteGraph& g = BenchDataset(name);
    const std::vector<EdgeUpdate> ops =
        MakeCyclicStream(g, half, HashString64(name) ^ 0xc105edull);
    for (const unsigned readers : {1u, 2u, 4u, 8u}) {
      const RowResult row = RunClosedLoop(g, ops, readers, seconds);
      qps_by_readers[name][readers] = row.read_qps;
      table.AddRow({name, FormatCount(g.NumEdges()), FormatCount(readers),
                    FormatDouble(row.applied_per_second, 0),
                    FormatDouble(row.read_qps, 0),
                    FormatDouble(row.read_qps / readers, 0),
                    FormatDouble(row.mean_staleness, 1),
                    FormatCount(row.max_staleness),
                    FormatCount(row.snapshots)});
    }
  }
  table.Print();

  // Aggregate read throughput as readers are added: ~1x on a single core
  // (snapshot reads are wait-free, so added readers cost nothing), >1x
  // with spare cores.
  for (const auto& [name, by_readers] : qps_by_readers) {
    const double base = by_readers.at(1);
    std::printf("%s read QPS scaling 1->4 readers: %.2fx\n", name.c_str(),
                base > 0 ? by_readers.at(4) / base : 0.0);
  }

  // Process-wide telemetry from the whole run (every service instance
  // reported into the default registry).
  std::printf("\n-- metrics snapshot --\n%s",
              obs::ExportPrometheus(obs::MetricsRegistry::Default().Snapshot())
                  .c_str());
  WriteBenchJsonIfRequested();
  return 0;
}
