// Closed-loop serving bench: 1 ingest thread + N reader threads against a
// BitrussService, the measured form of the ROADMAP's "serve heavy traffic"
// claim.
//
// Protocol, per dataset and reader count: a BitrussService is seeded from
// the stand-in graph; one ingest thread submits a cyclic mixed
// insert/delete stream (forward half + mirrored undo half, so the cycle
// returns to the seed state and can repeat indefinitely), retrying on
// backpressure; N reader threads run over the PR 5 thread pool
// (util/thread_pool.h), each in a tight loop of snapshot acquisition +
// point phi/support reads + periodic top-k / histogram scans through the
// service's timed read wrappers, sampling staleness (writer-applied
// updates minus the snapshot's covered updates) on every acquisition.
// After BITRUSS_SERVE_SECONDS (default 1.0) the loop stops and the row
// reports applied-updates/s, aggregate read QPS, staleness p50/p95/p99
// (bucket-interpolated estimates over every reader's samples), and the
// visibility latency (submit -> first visible snapshot) p50/p99 for the
// row, extracted from the process-wide
// `bitruss_serve_visibility_seconds` family by snapshot subtraction.
// The final table prints the 1 -> 4 reader aggregate read-QPS scaling per
// dataset (lock-free snapshot reads should not lose throughput as readers
// are added; gaining requires spare cores).
//
// Live observability flags (all optional):
//   --admin-port=N   serve /metrics, /metrics.json, /tracez, /healthz on
//                    127.0.0.1:N for the duration of the run (N=0 picks an
//                    ephemeral port; the chosen port is printed)
//   --events=PATH    write the serving lifecycle event log (publish,
//                    compaction, fallback_recompute, backpressure_reject,
//                    slow_apply) as JSON lines to PATH
//   --wal=DIR        additionally run the durability comparison: per
//                    dataset, a memory-only row vs a WAL-ahead-logged row
//                    (same load, `closed_loop_durable` table — the durable
//                    cost is the applied/s gap), then recover the on-disk
//                    state and report the replay rate.  DIR is wiped and
//                    reused per row.
//   --fsync=MODE     fsync policy for --wal rows: record | publish | os
//                    (default publish; see persist::FsyncPolicy)

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "dynamic/dynamic_graph.h"
#include "obs/admin_server.h"
#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "persist/wal.h"
#include "serve/bitruss_service.h"
#include "util/random.h"
#include "util/sync.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

using namespace bitruss;
using namespace bitruss::bench;

double ServeSeconds() {
  if (const char* env = std::getenv("BITRUSS_SERVE_SECONDS")) {
    const double parsed = std::atof(env);
    if (parsed > 0) return parsed;
  }
  return 1.0;
}

// The service under test changes per table row; /healthz always reports
// the live one (or says the bench is between rows).
Mutex g_service_mu;
BitrussService* g_service GUARDED_BY(g_service_mu) = nullptr;

void SetCurrentService(BitrussService* service) {
  MutexLock lock(g_service_mu);
  g_service = service;
}

std::string CurrentHealthJson() {
  MutexLock lock(g_service_mu);
  if (g_service == nullptr) {
    return "{\"status\": \"idle\", \"detail\": \"no service running\"}\n";
  }
  return g_service->HealthJson();
}

// Cyclic valid stream: `half` random valid ops simulated forward, then the
// mirror image undoing them in reverse, so state returns to the seed and
// the stream can be replayed end to end forever.
std::vector<EdgeUpdate> MakeCyclicStream(const BipartiteGraph& seed,
                                         int half, std::uint64_t rng_seed) {
  DynamicBipartiteGraph sim(seed);
  Rng rng(rng_seed);
  std::vector<std::pair<VertexId, VertexId>> live;
  for (EdgeId slot = 0; slot < sim.NumSlots(); ++slot) {
    if (sim.IsLive(slot)) {
      live.emplace_back(sim.EdgeUpper(slot),
                        sim.EdgeLower(slot) - sim.NumUpper());
    }
  }
  std::vector<EdgeUpdate> ops;
  ops.reserve(2 * half);
  while (static_cast<int>(ops.size()) < half) {
    if (!live.empty() && rng.NextBool(0.5)) {
      const std::size_t pick = rng.Below(live.size());
      const auto [u, l] = live[pick];
      // Cannot fail: (u, l) was drawn from the live-edge set just above.
      (void)sim.DeleteEdge(sim.FindEdge(u, sim.NumUpper() + l));
      ops.push_back({EdgeUpdate::Kind::kDelete, u, l});
      live[pick] = live.back();
      live.pop_back();
    } else {
      const auto u = static_cast<VertexId>(rng.Below(sim.NumUpper()));
      const auto l = static_cast<VertexId>(rng.Below(sim.NumLower()));
      if (!sim.InsertEdge(u, l).ok()) continue;
      ops.push_back({EdgeUpdate::Kind::kInsert, u, l});
      live.emplace_back(u, l);
    }
  }
  for (int i = half - 1; i >= 0; --i) {  // undo in reverse order
    const EdgeUpdate& op = ops[i];
    ops.push_back({op.kind == EdgeUpdate::Kind::kInsert
                       ? EdgeUpdate::Kind::kDelete
                       : EdgeUpdate::Kind::kInsert,
                   op.upper_local, op.lower_local});
  }
  return ops;
}

struct RowResult {
  double applied_per_second = 0;
  double read_qps = 0;
  double stale_p50 = 0;
  double stale_p95 = 0;
  double stale_p99 = 0;
  double visibility_p50_ms = 0;
  double visibility_p99_ms = 0;
  std::uint64_t snapshots = 0;
  // Durability instruments (zero for memory-only rows): this row's deltas
  // of the process-wide `bitruss_persist_*` counter families.
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  std::int64_t fsyncs = 0;
};

// Durability setup of one bench row; null config = memory-only serving.
struct DurableConfig {
  std::string dir;
  persist::FsyncPolicy policy = persist::FsyncPolicy::kEveryPublish;
  std::uint64_t snapshot_every = 0;  ///< 0: WAL only, snapshot at drain
  bool drain = true;                 ///< false leaves the WAL for recovery
};

// Empties (creating if needed) the durability directory so a fresh
// service can open it — the bench reuses one DIR across rows.
void WipePersistDir(const std::string& dir) {
  ::mkdir(dir.c_str(), 0777);
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    ::unlink((dir + "/" + name).c_str());
  }
  ::closedir(d);
}

std::uint64_t CounterFamilyValue(const obs::RegistrySnapshot& snapshot,
                                 const std::string& name) {
  const obs::CounterSample* sample = snapshot.FindCounter(name);
  return sample == nullptr ? 0 : sample->value;
}

// The row's share of the process-lifetime visibility-latency family:
// sample before, run, sample after, subtract.
obs::HistogramSample VisibilitySample() {
  const obs::RegistrySnapshot snapshot =
      obs::MetricsRegistry::Default().Snapshot();
  const obs::HistogramSample* family =
      snapshot.FindHistogram("bitruss_serve_visibility_seconds");
  return family == nullptr ? obs::HistogramSample{} : *family;
}

RowResult RunClosedLoop(const BipartiteGraph& seed,
                        const std::vector<EdgeUpdate>& ops,
                        unsigned num_readers, double seconds,
                        obs::EventLog* event_log,
                        const DurableConfig* durable = nullptr) {
  const obs::HistogramSample visibility_before = VisibilitySample();
  const obs::RegistrySnapshot persist_before =
      obs::MetricsRegistry::Default().Snapshot();

  BitrussServiceOptions options;
  options.queue_capacity = 4096;
  options.publish_every_updates = 32;
  options.publish_interval_ms = 5.0;
  options.event_log = event_log;
  if (durable != nullptr) {
    WipePersistDir(durable->dir);
    options.persist.dir = durable->dir;
    options.persist.fsync_policy = durable->policy;
    options.persist.snapshot_every_updates = durable->snapshot_every;
  }
  BitrussService service(seed, options);
  SetCurrentService(&service);

  std::atomic<bool> stop{false};

  // Ingest thread: drives the cyclic stream as fast as backpressure
  // allows, and owns the clock that ends the run.
  std::thread ingest([&] {
    Timer timer;
    std::size_t next = 0;
    while (timer.Seconds() < seconds) {
      const Status status = service.Submit(ops[next % ops.size()]);
      if (status.ok()) {
        ++next;
      } else {
        std::this_thread::yield();  // queue full; let the writer catch up
      }
    }
    stop.store(true, std::memory_order_release);
  });

  // Staleness distribution across every reader's snapshot acquisitions,
  // in applied-updates behind; Observe is lock-free, so one shared
  // instrument serves all readers.
  obs::Histogram staleness(obs::ExponentialBuckets(1, 2, 16));

  // Reader threads over the PR 5 pool: one chunk per reader, the calling
  // thread serves as reader 0.
  std::vector<std::uint64_t> reads(num_readers, 0);
  ThreadPool pool(num_readers);
  pool.ParallelForChunks(
      0, num_readers, num_readers,
      [&](std::uint64_t chunk_begin, std::uint64_t, unsigned chunk,
          unsigned) {
        (void)chunk_begin;
        std::uint64_t local_reads = 0;
        std::uint64_t sink = 0;
        EdgeId probe = 0;
        while (!stop.load(std::memory_order_acquire)) {
          const auto snap = service.Snapshot();
          const std::uint64_t applied = service.AppliedUpdates();
          const std::uint64_t lag = applied > snap->applied_updates
                                        ? applied - snap->applied_updates
                                        : 0;
          staleness.Observe(static_cast<double>(lag));
          // Four point reads per snapshot acquisition — three on the
          // pinned snapshot, one through the service's timed Phi wrapper
          // — plus periodic top-k and histogram scans through the timed
          // wrappers, so the read-path latency families see real traffic.
          for (int i = 0; i < 3; ++i) {
            sink += snap->Phi(probe % (snap->num_slots + 1));
            ++probe;
            ++local_reads;
          }
          sink += service.Phi(probe % (snap->num_slots + 1));
          ++probe;
          ++local_reads;
          if ((local_reads & 1023u) == 0) sink += service.TopKPhi(8).size();
          if ((local_reads & 4095u) == 0) {
            sink += service.PhiHistogram().size();
          }
        }
        reads[chunk] = local_reads + (sink & 1);  // keep sink observable
      });

  ingest.join();
  const std::uint64_t applied = service.AppliedUpdates();
  const auto stats = service.Stats();
  // The fsync gauge is a live callback on the service's WalWriter, so it
  // must be sampled before the service goes away.
  const obs::RegistrySnapshot persist_after =
      obs::MetricsRegistry::Default().Snapshot();
  service.Shutdown(durable == nullptr || durable->drain);
  SetCurrentService(nullptr);

  // The writer is joined and the row's instruments are still registered:
  // the family delta is exactly this row's visibility observations.
  const obs::HistogramSample visibility =
      obs::SubtractHistogramSample(VisibilitySample(), visibility_before);

  RowResult row;
  row.applied_per_second = static_cast<double>(applied) / seconds;
  std::uint64_t total_reads = 0;
  for (unsigned r = 0; r < num_readers; ++r) total_reads += reads[r];
  row.read_qps = static_cast<double>(total_reads) / seconds;
  const obs::HistogramSample stale = staleness.Sample();
  row.stale_p50 = stale.Quantile(0.50);
  row.stale_p95 = stale.Quantile(0.95);
  row.stale_p99 = stale.Quantile(0.99);
  row.visibility_p50_ms = visibility.Quantile(0.50) * 1e3;
  row.visibility_p99_ms = visibility.Quantile(0.99) * 1e3;
  row.snapshots = stats.published_snapshots;
  if (durable != nullptr) {
    row.wal_records =
        CounterFamilyValue(persist_after, "bitruss_persist_wal_records_total") -
        CounterFamilyValue(persist_before, "bitruss_persist_wal_records_total");
    row.wal_bytes =
        CounterFamilyValue(persist_after, "bitruss_persist_wal_bytes_total") -
        CounterFamilyValue(persist_before, "bitruss_persist_wal_bytes_total");
    const obs::GaugeSample* fsyncs =
        persist_after.FindGauge("bitruss_persist_wal_fsyncs");
    row.fsyncs = fsyncs == nullptr ? 0 : fsyncs->value;
  }
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  ParseBenchArgs(argc, argv);
  int admin_port = -1;  // -1: no admin server
  std::string events_path;
  std::string wal_dir;
  persist::FsyncPolicy fsync_policy = persist::FsyncPolicy::kEveryPublish;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--admin-port=", 13) == 0) {
      admin_port = std::atoi(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--events=", 9) == 0 &&
               argv[i][9] != '\0') {
      events_path = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--wal=", 6) == 0 && argv[i][6] != '\0') {
      wal_dir = argv[i] + 6;
    } else if (std::strncmp(argv[i], "--fsync=", 8) == 0) {
      const std::string mode = argv[i] + 8;
      if (mode == "record") {
        fsync_policy = persist::FsyncPolicy::kEveryRecord;
      } else if (mode == "publish") {
        fsync_policy = persist::FsyncPolicy::kEveryPublish;
      } else if (mode == "os") {
        fsync_policy = persist::FsyncPolicy::kOsBuffered;
      } else {
        std::fprintf(stderr, "--fsync=%s: want record|publish|os\n",
                     mode.c_str());
        return 1;
      }
    }
  }

  PrintBanner("Serving closed loop",
              "1 ingest thread + N snapshot readers over BitrussService");

  std::unique_ptr<obs::EventLog> event_log;
  if (!events_path.empty()) {
    event_log = std::make_unique<obs::EventLog>(events_path);
    std::printf("event log: %s\n", events_path.c_str());
  }

  // One trace recorder across every row: /tracez shows the initial
  // decompositions and any fallback recomputes of the whole run.
  obs::TraceRecorder trace;
  obs::AdminServer admin({admin_port < 0 ? 0 : admin_port});
  if (admin_port >= 0) {
    obs::RegisterStandardEndpoints(&admin, &obs::MetricsRegistry::Default(),
                                   &trace);
    admin.Handle("/healthz", [] {
      return obs::AdminResponse{200, "application/json",
                                CurrentHealthJson()};
    });
    const Status status = admin.Start();
    if (!status.ok()) {
      std::fprintf(stderr, "admin server: %s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("admin server listening on 127.0.0.1:%d\n", admin.Port());
  }

  const double seconds = ServeSeconds();
  const int half = static_cast<int>(400 * BenchScale()) + 50;

  TablePrinter table(
      "closed_loop",
      {"Dataset", "|E|", "readers", "applied/s", "read QPS", "stale p50",
       "stale p95", "stale p99", "vis p50 ms", "vis p99 ms", "snapshots"});
  std::map<std::string, std::map<unsigned, double>> qps_by_readers;
  for (const char* name : {"Writer", "Github"}) {
    const BipartiteGraph& g = BenchDataset(name);
    const std::vector<EdgeUpdate> ops =
        MakeCyclicStream(g, half, HashString64(name) ^ 0xc105edull);
    for (const unsigned readers : {1u, 2u, 4u, 8u}) {
      const RowResult row =
          RunClosedLoop(g, ops, readers, seconds, event_log.get());
      qps_by_readers[name][readers] = row.read_qps;
      table.AddRow({name, FormatCount(g.NumEdges()), FormatCount(readers),
                    FormatDouble(row.applied_per_second, 0),
                    FormatDouble(row.read_qps, 0),
                    FormatDouble(row.stale_p50, 1),
                    FormatDouble(row.stale_p95, 1),
                    FormatDouble(row.stale_p99, 1),
                    FormatDouble(row.visibility_p50_ms, 3),
                    FormatDouble(row.visibility_p99_ms, 3),
                    FormatCount(row.snapshots)});
    }
  }
  table.Print();

  // Aggregate read throughput as readers are added: ~1x on a single core
  // (snapshot reads are wait-free, so added readers cost nothing), >1x
  // with spare cores.
  for (const auto& [name, by_readers] : qps_by_readers) {
    const double base = by_readers.at(1);
    std::printf("%s read QPS scaling 1->4 readers: %.2fx\n", name.c_str(),
                base > 0 ? by_readers.at(4) / base : 0.0);
  }

  // Durable-vs-memory comparison (--wal): same closed loop at 2 readers,
  // once in memory and once write-ahead logged under the chosen fsync
  // policy — the applied/s gap is the price of the durability guarantee.
  // The durable row shuts down WITHOUT draining and leaves its WAL behind,
  // so recovery is then measured against real on-disk state.
  if (!wal_dir.empty()) {
    TablePrinter durable_table(
        "closed_loop_durable",
        {"Dataset", "mode", "applied/s", "read QPS", "vis p99 ms",
         "WAL records", "WAL MB", "fsyncs"});
    for (const char* name : {"Writer", "Github"}) {
      const BipartiteGraph& g = BenchDataset(name);
      const std::vector<EdgeUpdate> ops =
          MakeCyclicStream(g, half, HashString64(name) ^ 0xc105edull);
      const RowResult memory =
          RunClosedLoop(g, ops, 2, seconds, event_log.get());
      durable_table.AddRow(
          {name, "memory", FormatDouble(memory.applied_per_second, 0),
           FormatDouble(memory.read_qps, 0),
           FormatDouble(memory.visibility_p99_ms, 3), "0", "0.00", "0"});

      DurableConfig durable;
      durable.dir = wal_dir;
      durable.policy = fsync_policy;
      durable.snapshot_every = 0;  // WAL carries the whole run
      durable.drain = false;       // leave the log for the recovery drill
      const RowResult logged =
          RunClosedLoop(g, ops, 2, seconds, event_log.get(), &durable);
      durable_table.AddRow(
          {name, std::string("wal:") + persist::FsyncPolicyName(fsync_policy),
           FormatDouble(logged.applied_per_second, 0),
           FormatDouble(logged.read_qps, 0),
           FormatDouble(logged.visibility_p99_ms, 3),
           FormatCount(logged.wal_records),
           FormatDouble(static_cast<double>(logged.wal_bytes) / 1048576.0, 2),
           FormatCount(logged.fsyncs < 0 ? 0 : logged.fsyncs)});

      // Recovery drill: rebuild the service from the WAL just written and
      // report the replay rate (records/s through the incremental
      // maintenance path).
      BitrussServiceOptions recover_options;
      recover_options.persist.dir = wal_dir;
      recover_options.persist.fsync_policy = fsync_policy;
      RecoveryStats rstats;
      auto recovered_or = BitrussService::Recover(g, recover_options, &rstats);
      if (!recovered_or.ok()) {
        std::fprintf(stderr, "%s recovery: %s\n", name,
                     recovered_or.status().ToString().c_str());
        return 1;
      }
      std::printf(
          "%s recovery: %llu WAL records replayed in %.3f s (%.0f records/s, "
          "%llu torn discarded)\n",
          name, static_cast<unsigned long long>(rstats.wal_replayed),
          rstats.seconds,
          rstats.seconds > 0 ? static_cast<double>(rstats.wal_replayed) /
                                   rstats.seconds
                             : 0.0,
          static_cast<unsigned long long>(rstats.torn_records_discarded));
      recovered_or.value()->Shutdown(/*drain=*/true);
      WipePersistDir(wal_dir);
    }
    durable_table.Print();
  }

  // Process-wide telemetry from the whole run (every service instance
  // reported into the default registry).
  std::printf("\n-- metrics snapshot --\n%s",
              obs::ExportPrometheus(obs::MetricsRegistry::Default().Snapshot())
                  .c_str());
  WriteBenchJsonIfRequested();
  if (admin_port >= 0) admin.Stop();
  if (event_log != nullptr) {
    event_log->Flush();
    std::printf("event log: %llu events written, %llu dropped\n",
                static_cast<unsigned long long>(event_log->EmittedEvents()),
                static_cast<unsigned long long>(event_log->DroppedEvents()));
  }
  return 0;
}
