// Table II: summary of datasets — |E|, |U|, |L|, total butterflies, the
// largest butterfly support and the largest bitruss number per dataset.
// (Synthetic stand-ins; see DESIGN.md's substitution table.)

#include <cstdio>

#include "bench_common.h"
#include "butterfly/butterfly_counting.h"
#include "gen/dataset_suite.h"

int main() {
  using namespace bitruss;
  using namespace bitruss::bench;

  PrintBanner("Table II", "summary of datasets (synthetic stand-ins)");

  TablePrinter table({"Dataset", "|E|", "|U|", "|L|", "butterflies",
                      "max sup(e)", "max phi(e)"});
  for (const std::string& name : DatasetNames()) {
    const BipartiteGraph& g = BenchDataset(name);
    // phi via the fastest exact algorithm (BiT-BU++); supports come with it.
    const RunOutcome run = TimedRun(g, Algorithm::kBUPlusPlus);
    table.AddRow({name, FormatCount(g.NumEdges()), FormatCount(g.NumUpper()),
                  FormatCount(g.NumLower()),
                  run.timed_out ? "INF"
                                : FormatCount(run.result.total_butterflies),
                  run.timed_out ? "INF" : FormatCount(run.result.MaxSupport()),
                  run.timed_out ? "INF" : FormatCount(run.result.MaxPhi())});
    std::fflush(stdout);
  }
  table.Print();
  return 0;
}
