// Thread-safety-analysis negative control (configure-time try_compile):
// this file accesses a GUARDED_BY field WITHOUT holding its mutex and must
// therefore FAIL to compile under -Werror=thread-safety.  If it compiles,
// the analysis is silently off (wrong flags, broken annotations) and the
// whole compile-time locking proof is void — the configure step aborts.

#include "util/sync.h"

namespace {

class Guarded {
 public:
  int UnlockedRead() { return value_; }  // BUG on purpose: mu_ not held

 private:
  bitruss::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  return g.UnlockedRead();
}
