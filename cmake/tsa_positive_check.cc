// Thread-safety-analysis positive control (configure-time try_compile):
// correctly-locked code must compile cleanly under -Werror=thread-safety.
// If this fails, the toolchain or util/sync.h is broken — not the repo's
// locking discipline.  Paired with tsa_negative_check.cc.

#include "util/sync.h"

namespace {

class Guarded {
 public:
  void Set(int v) {
    bitruss::MutexLock lock(mu_);
    value_ = v;
  }

  int Get() {
    bitruss::MutexLock lock(mu_);
    return value_;
  }

 private:
  bitruss::Mutex mu_;
  int value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Guarded g;
  g.Set(42);
  return g.Get() == 42 ? 0 : 1;
}
