#include "butterfly/butterfly_counting.h"

#include <atomic>

#include "butterfly/wedge_enumeration.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace bitruss {

namespace {

constexpr auto kNoopAnchorDone = [](const std::vector<VertexId>&) {};

// Support-count telemetry.  Each full CountEdgeSupports pass is one run;
// the delegating overloads don't double-count (only compute sites report).
struct CountingMetrics {
  obs::Counter* runs;
  obs::Histogram* seconds;

  static const CountingMetrics& Get() {
    static const CountingMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Default();
      return CountingMetrics{
          registry.GetCounter("bitruss_butterfly_count_runs_total"),
          registry.GetHistogram("bitruss_butterfly_count_seconds",
                                obs::ExponentialBuckets(0.001, 2.0, 14)),
      };
    }();
    return metrics;
  }
};

// Anchors processed per deadline poll inside a chunk: the poll sits between
// sub-slices of the bloom enumeration, so expiry is detected within a
// bounded amount of extra work even on hub-heavy chunks.
constexpr VertexId kAnchorsPerPoll = 64;

// Chunks per thread: enough slack that the hub-heavy low-rank anchors (the
// bulk of the wedge work under the degree priority) spread across the pool
// instead of pinning to whichever thread drew the first chunk.
constexpr unsigned kChunksPerThread = 8;

}  // namespace

std::vector<SupportT> CountEdgeSupports(const BipartiteGraph& g,
                                        const PriorityAdjacency& adj) {
  const CountingMetrics& metrics = CountingMetrics::Get();
  Timer timer;
  std::vector<SupportT> sup(g.NumEdges(), 0);
  internal::ForEachBloom<true>(
      adj, [](VertexId, SupportT) {},
      [&](VertexId, SupportT c, EdgeId anchor_edge, EdgeId far_edge) {
        sup[anchor_edge] += c - 1;
        sup[far_edge] += c - 1;
      },
      kNoopAnchorDone);
  metrics.runs->Inc();
  metrics.seconds->Observe(timer.Seconds());
  return sup;
}

std::vector<SupportT> CountEdgeSupports(const BipartiteGraph& g) {
  const VertexPriority priority = VertexPriority::Compute(g);
  const PriorityAdjacency adj(g, priority);
  return CountEdgeSupports(g, adj);
}

std::vector<SupportT> CountEdgeSupports(const BipartiteGraph& g,
                                        const PriorityAdjacency& adj,
                                        ThreadPool* pool,
                                        const Deadline& deadline,
                                        bool* expired) {
  if (expired != nullptr) *expired = false;
  const EdgeId m = g.NumEdges();
  const VertexId n = adj.NumVertices();
  const CountingMetrics& metrics = CountingMetrics::Get();
  Timer timer;
  if (pool == nullptr || pool->NumThreads() <= 1) {
    if (!deadline.IsFinite()) return CountEdgeSupports(g, adj);
    // Sequential but deadline-aware: same enumeration, polled per sub-slice.
    std::vector<SupportT> sup(m, 0);
    internal::BloomScratch scratch;
    scratch.Prepare(n);
    for (VertexId begin = 0; begin < n; begin += kAnchorsPerPoll) {
      if (deadline.Expired()) {
        if (expired != nullptr) *expired = true;
        return {};
      }
      const VertexId end =
          begin + kAnchorsPerPoll < n ? begin + kAnchorsPerPoll : n;
      internal::ForEachBloomRange<true>(
          adj, begin, end, scratch, [](VertexId, SupportT) {},
          [&](VertexId, SupportT c, EdgeId anchor_edge, EdgeId far_edge) {
            sup[anchor_edge] += c - 1;
            sup[far_edge] += c - 1;
          },
          kNoopAnchorDone);
    }
    metrics.runs->Inc();
    metrics.seconds->Observe(timer.Seconds());
    return sup;
  }

  const unsigned num_threads = pool->NumThreads();
  std::vector<std::vector<SupportT>> partial(num_threads);
  std::vector<internal::BloomScratch> scratch(num_threads);
  std::atomic<bool> abort{false};

  pool->ParallelForChunks(
      0, n, num_threads * kChunksPerThread,
      [&](std::uint64_t begin, std::uint64_t end, unsigned, unsigned thread) {
        if (abort.load(std::memory_order_relaxed)) return;
        std::vector<SupportT>& sup = partial[thread];
        if (sup.empty()) {
          sup.assign(m, 0);
          scratch[thread].Prepare(n);
        }
        for (std::uint64_t slice = begin; slice < end;
             slice += kAnchorsPerPoll) {
          if (deadline.IsFinite()) {
            if (abort.load(std::memory_order_relaxed)) return;
            if (deadline.Expired()) {
              abort.store(true, std::memory_order_relaxed);
              return;
            }
          }
          const VertexId slice_end = static_cast<VertexId>(
              slice + kAnchorsPerPoll < end ? slice + kAnchorsPerPoll : end);
          internal::ForEachBloomRange<true>(
              adj, static_cast<VertexId>(slice), slice_end, scratch[thread],
              [](VertexId, SupportT) {},
              [&](VertexId, SupportT c, EdgeId anchor_edge, EdgeId far_edge) {
                sup[anchor_edge] += c - 1;
                sup[far_edge] += c - 1;
              },
              kNoopAnchorDone);
        }
      });

  if (abort.load(std::memory_order_relaxed)) {
    if (expired != nullptr) *expired = true;
    return {};
  }

  // Deterministic merge: sup(e) is a per-edge integer sum over the thread
  // partials, independent of which thread ran which chunk.
  std::vector<SupportT> sup(m, 0);
  pool->ParallelFor(0, m, [&](std::uint64_t begin, std::uint64_t end,
                              unsigned) {
    for (const std::vector<SupportT>& part : partial) {
      if (part.empty()) continue;
      for (std::uint64_t e = begin; e < end; ++e) {
        sup[e] += part[e];
      }
    }
  });
  metrics.runs->Inc();
  metrics.seconds->Observe(timer.Seconds());
  return sup;
}

std::uint64_t CountTotalButterflies(const BipartiteGraph& g,
                                    const PriorityAdjacency& adj) {
  (void)g;
  std::uint64_t total = 0;
  internal::ForEachBloom<false>(
      adj,
      [&](VertexId, SupportT c) {
        total += static_cast<std::uint64_t>(c) * (c - 1) / 2;
      },
      [](VertexId, SupportT, EdgeId, EdgeId) {}, kNoopAnchorDone);
  return total;
}

std::uint64_t CountTotalButterflies(const BipartiteGraph& g) {
  const VertexPriority priority = VertexPriority::Compute(g);
  const PriorityAdjacency adj(g, priority);
  return CountTotalButterflies(g, adj);
}

std::uint64_t CountTotalButterflies(const BipartiteGraph& g,
                                    const PriorityAdjacency& adj,
                                    ThreadPool* pool) {
  if (pool == nullptr || pool->NumThreads() <= 1) {
    return CountTotalButterflies(g, adj);
  }
  const VertexId n = adj.NumVertices();
  const unsigned num_threads = pool->NumThreads();
  std::vector<std::uint64_t> per_thread(num_threads, 0);
  std::vector<internal::BloomScratch> scratch(num_threads);
  pool->ParallelForChunks(
      0, n, num_threads * kChunksPerThread,
      [&](std::uint64_t begin, std::uint64_t end, unsigned, unsigned thread) {
        if (scratch[thread].count.empty()) scratch[thread].Prepare(n);
        // Chunk-local accumulator: per_thread slots share cache lines, so
        // touching them once per chunk (not per pair) avoids false sharing.
        std::uint64_t chunk_total = 0;
        internal::ForEachBloomRange<false>(
            adj, static_cast<VertexId>(begin), static_cast<VertexId>(end),
            scratch[thread],
            [&](VertexId, SupportT c) {
              chunk_total += static_cast<std::uint64_t>(c) * (c - 1) / 2;
            },
            [](VertexId, SupportT, EdgeId, EdgeId) {}, kNoopAnchorDone);
        per_thread[thread] += chunk_total;
      });
  std::uint64_t total = 0;
  for (const std::uint64_t t : per_thread) total += t;
  return total;
}

}  // namespace bitruss
