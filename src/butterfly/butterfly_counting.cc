#include "butterfly/butterfly_counting.h"

#include "butterfly/wedge_enumeration.h"

namespace bitruss {

namespace {
constexpr auto kNoopAnchorDone = [](const std::vector<VertexId>&) {};
}  // namespace

std::vector<SupportT> CountEdgeSupports(const BipartiteGraph& g,
                                        const PriorityAdjacency& adj) {
  std::vector<SupportT> sup(g.NumEdges(), 0);
  internal::ForEachBloom<true>(
      adj, [](VertexId, SupportT) {},
      [&](VertexId, SupportT c, EdgeId anchor_edge, EdgeId far_edge) {
        sup[anchor_edge] += c - 1;
        sup[far_edge] += c - 1;
      },
      kNoopAnchorDone);
  return sup;
}

std::vector<SupportT> CountEdgeSupports(const BipartiteGraph& g) {
  const VertexPriority priority = VertexPriority::Compute(g);
  const PriorityAdjacency adj(g, priority);
  return CountEdgeSupports(g, adj);
}

std::uint64_t CountTotalButterflies(const BipartiteGraph& g,
                                    const PriorityAdjacency& adj) {
  (void)g;
  std::uint64_t total = 0;
  internal::ForEachBloom<false>(
      adj,
      [&](VertexId, SupportT c) {
        total += static_cast<std::uint64_t>(c) * (c - 1) / 2;
      },
      [](VertexId, SupportT, EdgeId, EdgeId) {}, kNoopAnchorDone);
  return total;
}

std::uint64_t CountTotalButterflies(const BipartiteGraph& g) {
  const VertexPriority priority = VertexPriority::Compute(g);
  const PriorityAdjacency adj(g, priority);
  return CountTotalButterflies(g, adj);
}

}  // namespace bitruss
