// Exact butterfly counting (BFC-VP style, Wang et al. VLDB'19 / ICDE'20
// Section IV-A).
//
// A butterfly is a (2,2)-biclique {u, w, x, y}.  Enumeration anchors every
// wedge u-v-w at its unique highest-priority vertex: for each anchor u, for
// each neighbor v with p(v) < p(u), for each w in N(v) with p(w) < p(u),
// the wedge (u, v, w) is charged to the pair (u, w).  A pair with c wedges
// contributes C(c, 2) butterflies, each counted exactly once globally (the
// anchor is the butterfly's top-priority vertex), and each wedge edge gains
// support c - 1 from the pair.  Total work is
// O(sum_{(u,v) in E} min{d(u), d(v)}) under the degree priority.

#ifndef BITRUSS_BUTTERFLY_BUTTERFLY_COUNTING_H_
#define BITRUSS_BUTTERFLY_BUTTERFLY_COUNTING_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/vertex_priority.h"

namespace bitruss {

/// Per-edge butterfly support sup(e) for every edge of g.
std::vector<SupportT> CountEdgeSupports(const BipartiteGraph& g,
                                        const PriorityAdjacency& adj);

/// Convenience overload computing the default (degree, id) priority.
std::vector<SupportT> CountEdgeSupports(const BipartiteGraph& g);

/// Total number of butterflies in g.
std::uint64_t CountTotalButterflies(const BipartiteGraph& g,
                                    const PriorityAdjacency& adj);
std::uint64_t CountTotalButterflies(const BipartiteGraph& g);

}  // namespace bitruss

#endif  // BITRUSS_BUTTERFLY_BUTTERFLY_COUNTING_H_
