// Exact butterfly counting (BFC-VP style, Wang et al. VLDB'19 / ICDE'20
// Section IV-A).
//
// A butterfly is a (2,2)-biclique {u, w, x, y}.  Enumeration anchors every
// wedge u-v-w at its unique highest-priority vertex: for each anchor u, for
// each neighbor v with p(v) < p(u), for each w in N(v) with p(w) < p(u),
// the wedge (u, v, w) is charged to the pair (u, w).  A pair with c wedges
// contributes C(c, 2) butterflies, each counted exactly once globally (the
// anchor is the butterfly's top-priority vertex), and each wedge edge gains
// support c - 1 from the pair.  Total work is
// O(sum_{(u,v) in E} min{d(u), d(v)}) under the degree priority.
//
// Parallel variants partition the ANCHOR vertices across a ThreadPool:
// every wedge has exactly one anchor, so anchor chunks partition the wedge
// set, each thread accumulates supports into a private array, and the
// per-edge merge sums thread arrays — integer sums, so the output is
// bit-identical to the sequential count at every thread count (no atomics
// anywhere on the hot path).

#ifndef BITRUSS_BUTTERFLY_BUTTERFLY_COUNTING_H_
#define BITRUSS_BUTTERFLY_BUTTERFLY_COUNTING_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/vertex_priority.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace bitruss {

/// Per-edge butterfly support sup(e) for every edge of g.
std::vector<SupportT> CountEdgeSupports(const BipartiteGraph& g,
                                        const PriorityAdjacency& adj);

/// Convenience overload computing the default (degree, id) priority.
std::vector<SupportT> CountEdgeSupports(const BipartiteGraph& g);

/// Parallel per-edge supports over `pool` (nullptr or a 1-thread pool runs
/// the sequential path).  Anchor chunks poll `deadline` coarsely (every few
/// anchors); on expiry the count aborts, *expired is set when non-null, and
/// the returned vector is empty — partial counts are never handed out.
std::vector<SupportT> CountEdgeSupports(const BipartiteGraph& g,
                                        const PriorityAdjacency& adj,
                                        ThreadPool* pool,
                                        const Deadline& deadline = {},
                                        bool* expired = nullptr);

/// Total number of butterflies in g.
std::uint64_t CountTotalButterflies(const BipartiteGraph& g,
                                    const PriorityAdjacency& adj);
std::uint64_t CountTotalButterflies(const BipartiteGraph& g);

/// Parallel total over `pool` (nullptr or 1-thread = sequential path).
std::uint64_t CountTotalButterflies(const BipartiteGraph& g,
                                    const PriorityAdjacency& adj,
                                    ThreadPool* pool);

}  // namespace bitruss

#endif  // BITRUSS_BUTTERFLY_BUTTERFLY_COUNTING_H_
