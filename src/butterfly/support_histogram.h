// Histogram of quantities keyed by butterfly support (Figure 7).

#ifndef BITRUSS_BUTTERFLY_SUPPORT_HISTOGRAM_H_
#define BITRUSS_BUTTERFLY_SUPPORT_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/types.h"

namespace bitruss {

/// Bins: [0, b0], (b0, b1], ..., (b_{k-1}, inf) for ascending upper bounds
/// b0 < b1 < ... < b_{k-1}; NumBins() == bounds.size() + 1.
class SupportHistogram {
 public:
  explicit SupportHistogram(std::vector<SupportT> upper_bounds)
      : bounds_(std::move(upper_bounds)), totals_(bounds_.size() + 1, 0) {}

  void Add(SupportT support, std::uint64_t amount) {
    std::size_t bin = 0;
    while (bin < bounds_.size() && support > bounds_[bin]) ++bin;
    totals_[bin] += amount;
  }

  std::size_t NumBins() const { return totals_.size(); }

  std::uint64_t BinTotal(std::size_t bin) const { return totals_[bin]; }

  std::string BinLabel(std::size_t bin) const {
    if (bin == 0) return "<=" + std::to_string(bounds_.empty() ? 0 : bounds_[0]);
    if (bin == bounds_.size()) return ">" + std::to_string(bounds_.back());
    return std::to_string(bounds_[bin - 1] + 1) + "-" +
           std::to_string(bounds_[bin]);
  }

 private:
  std::vector<SupportT> bounds_;
  std::vector<std::uint64_t> totals_;
};

}  // namespace bitruss

#endif  // BITRUSS_BUTTERFLY_SUPPORT_HISTOGRAM_H_
