// Internal: the priority-anchored wedge enumeration shared by butterfly
// counting and BE-Index construction.  One implementation keeps the two in
// lockstep — the Lemma 4 identity (index supports == counted supports)
// holds by construction, not by parallel maintenance.
//
// AdjT is any rank-indexed adjacency: NumVertices(), Neighbors(r) -> range
// of PriorityAdjacency::Entry sorted by ascending rank, and
// FirstBelowPriority(r, bound) -> first entry with rank > bound.
// PriorityAdjacency itself satisfies this; be_index_builder.cc adds a
// filtered variant for BiT-PC candidate subgraphs.

#ifndef BITRUSS_BUTTERFLY_WEDGE_ENUMERATION_H_
#define BITRUSS_BUTTERFLY_WEDGE_ENUMERATION_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/types.h"
#include "graph/vertex_priority.h"

namespace bitruss::internal {

/// partition_point helper for rank-sorted adjacency slices.
inline const PriorityAdjacency::Entry* FirstRankAbove(
    const PriorityAdjacency::Range& range, VertexId bound) {
  return std::partition_point(
      range.begin(), range.end(),
      [bound](const PriorityAdjacency::Entry& e) { return e.rank <= bound; });
}

/// Zeroed per-endpoint scratch reused across anchors (and, by parallel
/// callers, across chunks of the same thread).  `count` must stay all-zero
/// between anchors; the enumeration restores that invariant itself.
struct BloomScratch {
  std::vector<SupportT> count;
  std::vector<VertexId> touched;

  void Prepare(VertexId n) {
    count.assign(n, 0);
    touched.clear();
    touched.reserve(1024);
  }
};

// Per anchor u: pass 1 counts wedges u-v-w per endpoint w (all of v, w at
// strictly lower priority than u); then `on_pair(w_rank, c)` fires once per
// endpoint with c >= 2 wedges; with kNeedWedges, `on_wedge(w_rank, c,
// edge(u,v), edge(v,w))` fires once per wedge of such a pair; finally
// `on_anchor_done(touched)` fires before the scratch resets.
//
// ForEachBloomRange restricts the ANCHOR loop to [anchor_begin, anchor_end)
// — wedges still reach down to arbitrary ranks, so partitioning anchors
// over threads partitions the wedge set exactly (every wedge has one
// anchor).  Scratch is caller-owned so parallel chunks of one thread reuse
// a single allocation; it must arrive prepared for a.NumVertices().
template <bool kNeedWedges, typename AdjT, typename PairFn, typename WedgeFn,
          typename AnchorDoneFn>
void ForEachBloomRange(const AdjT& a, VertexId anchor_begin,
                       VertexId anchor_end, BloomScratch& scratch,
                       PairFn&& on_pair, WedgeFn&& on_wedge,
                       AnchorDoneFn&& on_anchor_done) {
  std::vector<SupportT>& count = scratch.count;
  std::vector<VertexId>& touched = scratch.touched;

  for (VertexId ur = anchor_begin; ur < anchor_end; ++ur) {
    const auto nu = a.Neighbors(ur);
    const auto* vfirst = a.FirstBelowPriority(ur, ur);
    for (const auto* v = vfirst; v != nu.end(); ++v) {
      const auto* wfirst = a.FirstBelowPriority(v->rank, ur);
      const auto wlast = a.Neighbors(v->rank).end();
      for (const auto* w = wfirst; w != wlast; ++w) {
        if (count[w->rank]++ == 0) touched.push_back(w->rank);
      }
    }
    for (const VertexId wr : touched) {
      if (count[wr] >= 2) on_pair(wr, count[wr]);
    }
    if constexpr (kNeedWedges) {
      for (const auto* v = vfirst; v != nu.end(); ++v) {
        const auto* wfirst = a.FirstBelowPriority(v->rank, ur);
        const auto wlast = a.Neighbors(v->rank).end();
        for (const auto* w = wfirst; w != wlast; ++w) {
          if (count[w->rank] >= 2) {
            on_wedge(w->rank, count[w->rank], v->edge, w->edge);
          }
        }
      }
    }
    on_anchor_done(touched);
    for (const VertexId wr : touched) count[wr] = 0;
    touched.clear();
  }
}

template <bool kNeedWedges, typename AdjT, typename PairFn, typename WedgeFn,
          typename AnchorDoneFn>
void ForEachBloom(const AdjT& a, PairFn&& on_pair, WedgeFn&& on_wedge,
                  AnchorDoneFn&& on_anchor_done) {
  BloomScratch scratch;
  scratch.Prepare(a.NumVertices());
  ForEachBloomRange<kNeedWedges>(a, 0, a.NumVertices(), scratch, on_pair,
                                 on_wedge, on_anchor_done);
}

// Local analogue of ForEachBloom for dynamic updates: enumerates every
// butterfly containing the single edge (u, v) by walking only the wedges
// through its endpoints, instead of re-anchoring the whole graph.  A
// butterfly {u, w, v, x} containing (u, v) is reached exactly once — via
// its unique wedge u-x-w anchored at the lower-degree endpoint — and the
// callback receives the butterfly's three OTHER edges:
// `on_butterfly(edge(s,x), edge(x,w), edge(w,t))` with {s,t} = {u,v}.
//
// Works both pre-insertion ((u, v) not yet in the adjacency) and
// pre-deletion ((u, v) still present; its own entries are skipped).
//
// AdjT is any mutable-graph adjacency: Degree(v), Neighbors(v) -> range of
// {neighbor, edge} entries, and FindEdge(a, b) -> EdgeId or kInvalidEdge
// for endpoints given in either order.  Cost is
// O(sum_{x in N(s)} d(x)) membership probes with s the smaller endpoint.
template <typename AdjT, typename ButterflyFn>
void ForEachButterflyThroughEdge(const AdjT& a, VertexId u, VertexId v,
                                 ButterflyFn&& on_butterfly) {
  VertexId s = u, t = v;
  if (a.Degree(t) < a.Degree(s)) std::swap(s, t);
  for (const auto& x : a.Neighbors(s)) {
    if (x.neighbor == t) continue;
    for (const auto& w : a.Neighbors(x.neighbor)) {
      if (w.neighbor == s) continue;
      const EdgeId closing = a.FindEdge(w.neighbor, t);
      if (closing != kInvalidEdge) on_butterfly(x.edge, w.edge, closing);
    }
  }
}

// Delta-enumeration helper shared by the incremental-bitruss repair paths:
// one ForEachButterflyThroughEdge walk that aggregates, per butterfly
// through (u, v), the minimum of `label` over its three OTHER edges.
// Weights are clamped to `cap` (a butterfly whose partners all carry labels
// above the caller's band contributes exactly like one at the band edge, so
// clamping keeps the weight histogram small without changing any h-index
// at or below cap).  When `partners` is non-null the three partner edge
// ids of every butterfly are appended to it, duplicates included — callers
// needing a distinct set dedupe with their own stamps.  Returns the number
// of butterflies enumerated.
//
// LabelFn is EdgeId -> SupportT (e.g. maintained supports for an upper
// bound, or current phi labels for the fixpoint repair).
template <typename AdjT, typename LabelFn>
std::uint64_t CollectButterflyWeights(const AdjT& a, VertexId u, VertexId v,
                                      LabelFn&& label, SupportT cap,
                                      std::vector<SupportT>* weights,
                                      std::vector<EdgeId>* partners = nullptr) {
  std::uint64_t found = 0;
  ForEachButterflyThroughEdge(a, u, v, [&](EdgeId e1, EdgeId e2, EdgeId e3) {
    ++found;
    const SupportT w = std::min({label(e1), label(e2), label(e3), cap});
    weights->push_back(w);
    if (partners != nullptr) {
      partners->push_back(e1);
      partners->push_back(e2);
      partners->push_back(e3);
    }
  });
  return found;
}

}  // namespace bitruss::internal

#endif  // BITRUSS_BUTTERFLY_WEDGE_ENUMERATION_H_
