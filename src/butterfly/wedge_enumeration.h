// Internal: the priority-anchored wedge enumeration shared by butterfly
// counting and BE-Index construction.  One implementation keeps the two in
// lockstep — the Lemma 4 identity (index supports == counted supports)
// holds by construction, not by parallel maintenance.
//
// AdjT is any rank-indexed adjacency: NumVertices(), Neighbors(r) -> range
// of PriorityAdjacency::Entry sorted by ascending rank, and
// FirstBelowPriority(r, bound) -> first entry with rank > bound.
// PriorityAdjacency itself satisfies this; be_index_builder.cc adds a
// filtered variant for BiT-PC candidate subgraphs.

#ifndef BITRUSS_BUTTERFLY_WEDGE_ENUMERATION_H_
#define BITRUSS_BUTTERFLY_WEDGE_ENUMERATION_H_

#include <algorithm>
#include <vector>

#include "graph/types.h"
#include "graph/vertex_priority.h"

namespace bitruss::internal {

/// partition_point helper for rank-sorted adjacency slices.
inline const PriorityAdjacency::Entry* FirstRankAbove(
    const PriorityAdjacency::Range& range, VertexId bound) {
  return std::partition_point(
      range.begin(), range.end(),
      [bound](const PriorityAdjacency::Entry& e) { return e.rank <= bound; });
}

// Per anchor u: pass 1 counts wedges u-v-w per endpoint w (all of v, w at
// strictly lower priority than u); then `on_pair(w_rank, c)` fires once per
// endpoint with c >= 2 wedges; with kNeedWedges, `on_wedge(w_rank, c,
// edge(u,v), edge(v,w))` fires once per wedge of such a pair; finally
// `on_anchor_done(touched)` fires before the scratch resets.
template <bool kNeedWedges, typename AdjT, typename PairFn, typename WedgeFn,
          typename AnchorDoneFn>
void ForEachBloom(const AdjT& a, PairFn&& on_pair, WedgeFn&& on_wedge,
                  AnchorDoneFn&& on_anchor_done) {
  const VertexId n = a.NumVertices();
  std::vector<SupportT> count(n, 0);
  std::vector<VertexId> touched;
  touched.reserve(1024);

  for (VertexId ur = 0; ur < n; ++ur) {
    const auto nu = a.Neighbors(ur);
    const auto* vfirst = a.FirstBelowPriority(ur, ur);
    for (const auto* v = vfirst; v != nu.end(); ++v) {
      const auto* wfirst = a.FirstBelowPriority(v->rank, ur);
      const auto wlast = a.Neighbors(v->rank).end();
      for (const auto* w = wfirst; w != wlast; ++w) {
        if (count[w->rank]++ == 0) touched.push_back(w->rank);
      }
    }
    for (const VertexId wr : touched) {
      if (count[wr] >= 2) on_pair(wr, count[wr]);
    }
    if constexpr (kNeedWedges) {
      for (const auto* v = vfirst; v != nu.end(); ++v) {
        const auto* wfirst = a.FirstBelowPriority(v->rank, ur);
        const auto wlast = a.Neighbors(v->rank).end();
        for (const auto* w = wfirst; w != wlast; ++w) {
          if (count[w->rank] >= 2) {
            on_wedge(w->rank, count[w->rank], v->edge, w->edge);
          }
        }
      }
    }
    on_anchor_done(touched);
    for (const VertexId wr : touched) count[wr] = 0;
    touched.clear();
  }
}

}  // namespace bitruss::internal

#endif  // BITRUSS_BUTTERFLY_WEDGE_ENUMERATION_H_
