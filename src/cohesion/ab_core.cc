#include "cohesion/ab_core.h"

#include <algorithm>
#include <string>
#include <utility>

#include "graph/subgraph.h"

namespace bitruss {

namespace {

// beta_out[v] = largest beta such that v is in the (alpha, beta)-core
// (0 when v is outside even the (alpha, 1)-core).  Returns false when the
// (alpha, 1)-core is empty.  Bucket peel over lower-side degrees; removing
// a lower vertex cascades into upper vertices whose degree drops below
// alpha, which in turn lowers other lower-side degrees.
bool BetaPeel(const BipartiteGraph& g, VertexId alpha,
              std::vector<VertexId>* beta_out) {
  const VertexId n = g.NumVertices();
  beta_out->assign(n, 0);
  std::vector<std::uint8_t> alive = ComputeABCore(g, alpha, 1);

  std::vector<VertexId> deg(n, 0);
  VertexId remaining_lower = 0;
  VertexId max_lower_deg = 0;
  bool any_alive = false;
  for (VertexId v = 0; v < n; ++v) {
    if (!alive[v]) continue;
    any_alive = true;
    VertexId d = 0;
    for (const auto& entry : g.Neighbors(v)) d += alive[entry.neighbor];
    deg[v] = d;
    if (!g.IsUpper(v)) {
      ++remaining_lower;
      max_lower_deg = std::max(max_lower_deg, d);
    }
  }
  if (!any_alive) return false;

  // bucket[d] holds lower vertices whose degree was d at push time; a
  // vertex is re-pushed on every decrement, so its entry at the current
  // degree always exists and stale entries are skipped at pop.
  std::vector<std::vector<VertexId>> bucket(max_lower_deg + 1);
  for (VertexId v = g.NumUpper(); v < n; ++v) {
    if (alive[v]) bucket[deg[v]].push_back(v);
  }

  std::vector<VertexId> stack;
  for (VertexId b = 1; remaining_lower > 0; ++b) {
    // Only bucket[b - 1] can be non-empty here: lower-indexed buckets were
    // drained at earlier levels, and refills always land at an index >= the
    // level in progress (decrements below it go straight to the stack).
    stack.clear();
    if (b - 1 < static_cast<VertexId>(bucket.size())) bucket[b - 1].swap(stack);
    while (!stack.empty()) {
      const VertexId v = stack.back();
      stack.pop_back();
      if (!alive[v] || deg[v] >= b) continue;
      alive[v] = 0;
      (*beta_out)[v] = b - 1;
      --remaining_lower;
      for (const auto& ve : g.Neighbors(v)) {
        const VertexId u = ve.neighbor;
        if (!alive[u]) continue;
        if (--deg[u] >= alpha) continue;
        alive[u] = 0;
        (*beta_out)[u] = b - 1;
        for (const auto& ue : g.Neighbors(u)) {
          const VertexId l = ue.neighbor;
          if (!alive[l]) continue;
          if (--deg[l] < b) {
            stack.push_back(l);
          } else {
            bucket[deg[l]].push_back(l);
          }
        }
      }
    }
  }
  return true;
}

constexpr VertexId kPruneDeadlinePollInterval = 4096;

// keep[e] != 0 iff both endpoints of e are in the (alpha, beta)-core; the
// core is vertex-induced, so that is exactly edge membership.  Deadline
// polling (optional, as in ComputeABCore) covers the edge scan too.
std::vector<std::uint8_t> CoreEdgeMask(const BipartiteGraph& g, VertexId alpha,
                                       VertexId beta, EdgeId* kept,
                                       const Deadline* deadline = nullptr,
                                       bool* expired = nullptr) {
  std::vector<std::uint8_t> keep(g.NumEdges(), 0);
  *kept = 0;
  const std::vector<std::uint8_t> in_core =
      ComputeABCore(g, alpha, beta, deadline, expired);
  if (expired != nullptr && *expired) return keep;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (deadline != nullptr &&
        (e & (kPruneDeadlinePollInterval - 1)) == 0 && deadline->Expired()) {
      *expired = true;
      return keep;
    }
    if (in_core[g.EdgeUpper(e)] && in_core[g.EdgeLower(e)]) {
      keep[e] = 1;
      ++*kept;
    }
  }
  return keep;
}

// Partial result for a run whose deadline expired before peeling could
// start: all-zero phi/supports with timed_out set, matching Decompose()'s
// partial-result contract.
BitrussResult TimedOutResult(EdgeId num_edges) {
  BitrussResult result;
  result.phi.assign(num_edges, 0);
  result.original_support.assign(num_edges, 0);
  result.timed_out = true;
  return result;
}

}  // namespace

std::vector<std::uint8_t> ComputeABCore(const BipartiteGraph& g, VertexId alpha,
                                        VertexId beta,
                                        const Deadline* deadline,
                                        bool* expired) {
  if (expired != nullptr) *expired = false;
  const VertexId n = g.NumVertices();
  std::vector<std::uint8_t> alive(n, 1);
  std::vector<VertexId> deg(n);
  std::vector<VertexId> stack;
  const auto threshold = [&](VertexId v) { return g.IsUpper(v) ? alpha : beta; };
  for (VertexId v = 0; v < n; ++v) {
    deg[v] = g.Degree(v);
    if (deg[v] < threshold(v)) {
      alive[v] = 0;
      stack.push_back(v);
    }
  }
  VertexId since_poll = 0;
  while (!stack.empty()) {
    const VertexId v = stack.back();
    stack.pop_back();
    if (deadline != nullptr && ++since_poll >= kPruneDeadlinePollInterval) {
      since_poll = 0;
      if (deadline->Expired()) {
        *expired = true;
        return alive;
      }
    }
    for (const auto& entry : g.Neighbors(v)) {
      const VertexId w = entry.neighbor;
      if (!alive[w]) continue;
      if (--deg[w] < threshold(w)) {
        alive[w] = 0;
        stack.push_back(w);
      }
    }
  }
  return alive;
}

ABCoreResult ABCoreDecomposition(const BipartiteGraph& g) {
  ABCoreResult result;
  const VertexId n = g.NumVertices();
  result.skyline.resize(n);

  std::vector<VertexId> prev;
  std::vector<VertexId> cur;
  VertexId alpha = 1;
  for (;; ++alpha) {
    if (!BetaPeel(g, alpha, &cur)) break;
    if (alpha == 1) {
      for (VertexId v = 0; v < n; ++v) {
        result.max_beta = std::max(result.max_beta, cur[v]);
      }
    } else {
      // beta_alpha(v) is non-increasing in alpha; a pair is maximal exactly
      // where the next alpha's beta strictly drops.
      for (VertexId v = 0; v < n; ++v) {
        if (prev[v] > cur[v]) result.skyline[v].push_back({alpha - 1, prev[v]});
      }
    }
    prev.swap(cur);
  }
  result.max_alpha = alpha - 1;
  if (result.max_alpha > 0) {
    for (VertexId v = 0; v < n; ++v) {
      if (prev[v] > 0) result.skyline[v].push_back({result.max_alpha, prev[v]});
    }
  }
  return result;
}

bool InABCore(const ABCoreResult& result, VertexId v, VertexId alpha,
              VertexId beta) {
  for (const CorePair& pair : result.skyline[v]) {
    // First pair with pair.alpha >= alpha has the largest beta among them.
    if (pair.alpha >= alpha) return pair.beta >= beta;
  }
  return false;
}

StatusOr<ABCorePruneResult> PruneToABCore(const BipartiteGraph& g,
                                          VertexId alpha, VertexId beta) {
  if (alpha < 1 || beta < 1) {
    return InvalidArgumentError(
        "PruneToABCore: alpha and beta must be >= 1 (got alpha=" +
        std::to_string(alpha) + ", beta=" + std::to_string(beta) + ")");
  }
  ABCorePruneResult out;
  EdgeId kept = 0;
  const std::vector<std::uint8_t> keep = CoreEdgeMask(g, alpha, beta, &kept);
  out.pruned_edges = g.NumEdges() - kept;
  out.graph = EdgeMaskSubgraph(g, keep, &out.edge_origin);
  return out;
}

BitrussResult DecomposeWithCorePruning(const BipartiteGraph& g,
                                       const DecomposeOptions& options) {
  // The deadline covers the whole pipeline: a caller's budget must not be
  // blown inside the prune pass before peeling even starts, so the
  // (2,2)-core cascade, the edge scan, and the compaction all poll it.
  if (options.deadline.Expired()) return TimedOutResult(g.NumEdges());
  EdgeId kept = 0;
  std::vector<std::uint8_t> keep;
  if (g.NumEdges() > 0) {
    bool expired = false;
    keep = CoreEdgeMask(g, 2, 2, &kept, &options.deadline, &expired);
    if (expired) return TimedOutResult(g.NumEdges());
  }
  // Fast path: nothing to prune — no subgraph build, no scatter-back.
  if (kept == g.NumEdges()) return Decompose(g, options);

  std::vector<EdgeId> edge_origin;
  const BipartiteGraph core = EdgeMaskSubgraph(g, keep, &edge_origin);
  if (options.deadline.Expired()) return TimedOutResult(g.NumEdges());
  BitrussResult inner = Decompose(core, options);
  BitrussResult result;
  result.phi.assign(g.NumEdges(), 0);
  result.original_support.assign(g.NumEdges(), 0);
  for (EdgeId e = 0; e < core.NumEdges(); ++e) {
    result.phi[edge_origin[e]] = inner.phi[e];
    result.original_support[edge_origin[e]] = inner.original_support[e];
  }
  result.total_butterflies = inner.total_butterflies;
  result.timed_out = inner.timed_out;
  result.counters = std::move(inner.counters);
  result.pc_trace = std::move(inner.pc_trace);
  if (!result.counters.per_edge_updates.empty()) {
    std::vector<std::uint64_t> scattered(g.NumEdges(), 0);
    for (EdgeId e = 0; e < core.NumEdges(); ++e) {
      scattered[edge_origin[e]] = result.counters.per_edge_updates[e];
    }
    result.counters.per_edge_updates = std::move(scattered);
  }
  return result;
}

}  // namespace bitruss
