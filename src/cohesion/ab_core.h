// (alpha,beta)-core decomposition and exact pre-pruning for bitruss.
//
// The (alpha,beta)-core of a bipartite graph is the maximal subgraph in
// which every upper vertex has degree >= alpha and every lower vertex has
// degree >= beta.  A butterfly is itself a subgraph whose four vertices all
// have internal degree 2, so every butterfly — and hence every k-bitruss
// with k >= 1 — lies inside the (2,2)-core.  Pruning to it before counting
// and index construction is therefore exact (ref [20]): supports, total
// butterfly count, and bitruss numbers of surviving edges are unchanged,
// and pruned edges have phi = 0 by definition.

#ifndef BITRUSS_COHESION_AB_CORE_H_
#define BITRUSS_COHESION_AB_CORE_H_

#include <cstdint>
#include <vector>

#include "core/decompose.h"
#include "graph/bipartite_graph.h"
#include "util/status.h"

namespace bitruss {

/// One maximal (alpha, beta) membership pair of a vertex.
struct CorePair {
  VertexId alpha = 0;
  VertexId beta = 0;
};

/// Full decomposition output: per-vertex skyline of maximal core pairs.
struct ABCoreResult {
  /// skyline[v] (global vertex id) lists the maximal (alpha, beta) pairs of
  /// v, alpha strictly increasing and beta strictly decreasing; v belongs
  /// to the (a, b)-core (a, b >= 1) iff some pair has alpha >= a and
  /// beta >= b.  Vertices outside even the (1,1)-core have empty skylines.
  std::vector<std::vector<CorePair>> skyline;
  VertexId max_alpha = 0;  ///< largest alpha with a non-empty (alpha,1)-core
  VertexId max_beta = 0;   ///< largest beta with a non-empty (1,beta)-core
};

/// Per-vertex coreness pairs via bucket peeling: one beta-peel over the
/// lower side (with upper-side alpha cascade) per alpha in [1, max_alpha].
/// O(max_alpha * |E|).
ABCoreResult ABCoreDecomposition(const BipartiteGraph& g);

/// True iff v belongs to the (alpha, beta)-core per `result`; alpha and
/// beta must be >= 1.
bool InABCore(const ABCoreResult& result, VertexId v, VertexId alpha,
              VertexId beta);

/// Membership extraction for one (alpha, beta): keep[v] != 0 (global vertex
/// id) iff v is in the (alpha, beta)-core.  A value of 0 makes the side's
/// constraint vacuous.  Single delete-to-fixpoint peel, O(|E|).  When
/// `deadline` is non-null the cascade polls it at coarse granularity and
/// returns early with *expired set (membership contents then unspecified).
std::vector<std::uint8_t> ComputeABCore(const BipartiteGraph& g, VertexId alpha,
                                        VertexId beta,
                                        const Deadline* deadline = nullptr,
                                        bool* expired = nullptr);

/// PruneToABCore output: the core's edges as a standalone graph (vertex ids
/// preserved, edge ids compacted in lexicographic endpoint order, matching
/// EdgeMaskSubgraph) plus the surviving-edge mapping back to g.
struct ABCorePruneResult {
  BipartiteGraph graph;
  /// For each edge of `graph` in EdgeId order, the originating EdgeId in g.
  std::vector<EdgeId> edge_origin;
  /// Number of edges of g outside the (alpha, beta)-core.
  EdgeId pruned_edges = 0;
};

/// Compacts g to its (alpha, beta)-core.  alpha and beta must be >= 1
/// (kInvalidArgument otherwise — a 0 threshold prunes nothing on that side
/// and callers asking for it are holding the API wrong).  An edgeless g is
/// valid and yields an empty, zero-pruned result.
[[nodiscard]] StatusOr<ABCorePruneResult> PruneToABCore(
    const BipartiteGraph& g,
                                          VertexId alpha, VertexId beta);

/// Decompose(g, options) behind an exact (2,2)-core pre-prune: runs the
/// decomposition on the compacted core and scatters phi / supports back to
/// g's edge ids (pruned edges read 0).  Bit-identical to the plain run;
/// when the prune removes nothing it skips reconstruction and delegates to
/// Decompose(g, options) directly.  options.deadline covers the prune pass
/// too (cascade, edge scan, compaction); an expired run returns the usual
/// partial result with timed_out set.
BitrussResult DecomposeWithCorePruning(const BipartiteGraph& g,
                                       const DecomposeOptions& options = {});

}  // namespace bitruss

#endif  // BITRUSS_COHESION_AB_CORE_H_
