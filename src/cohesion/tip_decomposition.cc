#include "cohesion/tip_decomposition.h"

#include <algorithm>
#include <functional>
#include <queue>
#include <utility>

namespace bitruss {

namespace {

// Accumulates, for one side vertex u, the number of common neighbors c with
// every other alive vertex w of the same side (a wedge count per co-vertex
// pair), then hands each (w, c) to `apply`.  pair_count is a dense scratch
// array over side-local ids, zeroed again before returning.
template <typename Fn>
void ForEachCoVertex(const BipartiteGraph& g, VertexId u, VertexId num_upper,
                     bool peel_upper, const std::vector<std::uint8_t>& removed,
                     std::vector<std::uint64_t>* pair_count,
                     std::vector<VertexId>* touched, Fn apply) {
  touched->clear();
  for (const auto& mid : g.Neighbors(u)) {
    for (const auto& far : g.Neighbors(mid.neighbor)) {
      const VertexId w = far.neighbor;
      if (w == u) continue;
      const VertexId j = peel_upper ? w : w - num_upper;
      if (removed[j]) continue;
      if ((*pair_count)[j]++ == 0) touched->push_back(j);
    }
  }
  for (const VertexId j : *touched) {
    const std::uint64_t c = (*pair_count)[j];
    (*pair_count)[j] = 0;
    apply(j, c);
  }
}

}  // namespace

TipResult TipDecomposition(const BipartiteGraph& g, bool peel_upper,
                           const ParallelOptions& parallel) {
  const VertexId num_upper = g.NumUpper();
  const VertexId num_side = peel_upper ? num_upper : g.NumLower();
  const auto global = [&](VertexId i) {
    return peel_upper ? i : num_upper + i;
  };

  TipResult result;
  result.theta.assign(num_side, 0);
  if (num_side == 0) return result;

  std::vector<std::uint8_t> removed(num_side, 0);
  std::vector<std::uint64_t> count(num_side, 0);
  std::vector<std::uint64_t> pair_count(num_side, 0);
  std::vector<VertexId> touched;

  // Initial butterfly counts: a co-vertex pair with c common neighbors
  // contributes C(c, 2) butterflies to both endpoints.  Each side vertex's
  // aggregation is independent and writes only count[i], so the pass
  // parallelizes over vertex chunks with per-thread scratch; every thread
  // count produces the same counts.
  const unsigned num_threads = ResolveNumThreads(parallel);
  const auto count_range = [&](VertexId begin, VertexId end,
                               std::vector<std::uint64_t>& pair_scratch,
                               std::vector<VertexId>& touched_scratch) {
    for (VertexId i = begin; i < end; ++i) {
      std::uint64_t butterflies = 0;
      ForEachCoVertex(g, global(i), num_upper, peel_upper, removed,
                      &pair_scratch, &touched_scratch,
                      [&](VertexId, std::uint64_t c) {
                        butterflies += c * (c - 1) / 2;
                      });
      count[i] = butterflies;
    }
  };
  if (num_threads <= 1) {
    count_range(0, num_side, pair_count, touched);
  } else {
    ThreadPool pool(num_threads);
    std::vector<std::vector<std::uint64_t>> pair_scratch(num_threads);
    std::vector<std::vector<VertexId>> touched_scratch(num_threads);
    pool.ParallelForChunks(
        0, num_side, num_threads * 8,
        [&](std::uint64_t begin, std::uint64_t end, unsigned,
            unsigned thread) {
          if (pair_scratch[thread].empty()) {
            pair_scratch[thread].assign(num_side, 0);
          }
          count_range(static_cast<VertexId>(begin),
                      static_cast<VertexId>(end), pair_scratch[thread],
                      touched_scratch[thread]);
        });
  }

  // Min-first peel with a lazy priority queue: stale entries (count changed
  // since push) are skipped at pop; every count update re-pushes.
  using Entry = std::pair<std::uint64_t, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> queue;
  for (VertexId i = 0; i < num_side; ++i) queue.push({count[i], i});

  std::uint64_t level = 0;
  while (!queue.empty()) {
    const auto [c, i] = queue.top();
    queue.pop();
    if (removed[i] || c != count[i]) continue;
    level = std::max(level, c);
    result.theta[i] = level;
    removed[i] = 1;
    ForEachCoVertex(g, global(i), num_upper, peel_upper, removed, &pair_count,
                    &touched, [&](VertexId j, std::uint64_t cj) {
                      if (cj < 2) return;  // no butterfly through the pair
                      count[j] -= cj * (cj - 1) / 2;
                      ++result.count_updates;
                      queue.push({count[j], j});
                    });
  }
  result.max_tip = level;
  return result;
}

}  // namespace bitruss
