// Tip (vertex-granularity) decomposition — the paper's ref [5] baseline
// hierarchy (Sariyuce & Pinar, also RECEIPT's sequential kernel).
//
// The k-tip of one side of a bipartite graph is the maximal subgraph in
// which every vertex of that side participates in at least k butterflies;
// the tip number theta(v) is the largest k whose k-tip contains v.  Peeling
// removes the minimum-count vertex and, for each surviving co-vertex w that
// shared c >= 2 common neighbors with it, applies one count update of
// C(c, 2) — one update per co-vertex pair instead of one per affected edge,
// the coarser/cheaper granularity the edge-level bitruss hierarchy refines.

#ifndef BITRUSS_COHESION_TIP_DECOMPOSITION_H_
#define BITRUSS_COHESION_TIP_DECOMPOSITION_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "util/thread_pool.h"

namespace bitruss {

struct TipResult {
  /// theta per vertex of the peeled side, indexed by side-local id (upper
  /// ids when peel_upper, lower-local ids otherwise).
  std::vector<std::uint64_t> theta;
  /// Largest theta — the deepest non-empty k-tip.
  std::uint64_t max_tip = 0;
  /// Butterfly-count updates applied during peeling, one per (removed
  /// vertex, surviving co-vertex) pair with a non-zero delta; the work
  /// metric the granularity ablation compares against phi updates.
  std::uint64_t count_updates = 0;
};

/// Tip decomposition of one side of g.  Initial per-vertex butterfly counts
/// by wedge aggregation, then min-first peeling (lazy priority queue; counts
/// are 64-bit, so degree-style dense buckets do not apply).  `parallel`
/// spreads the initial counting pass over a thread pool (each side vertex's
/// count is an independent wedge aggregation, so the result is identical at
/// every thread count); the peel itself is sequential.
TipResult TipDecomposition(const BipartiteGraph& g, bool peel_upper,
                           const ParallelOptions& parallel = {});

}  // namespace bitruss

#endif  // BITRUSS_COHESION_TIP_DECOMPOSITION_H_
