#include "core/be_index_builder.h"

#include <algorithm>
#include <stdexcept>

#include "butterfly/wedge_enumeration.h"
#include "obs/metrics.h"
#include "util/timer.h"

namespace bitruss {

namespace {

// Build telemetry, reported once per public Build/BuildCompressed call.
// The bytes gauge tracks the most recent build's footprint (a level, not a
// sum): compressed PC rounds overwrite it as the candidate shrinks.
struct IndexBuildMetrics {
  obs::Counter* builds;
  obs::Histogram* seconds;
  obs::Gauge* last_bytes;

  static const IndexBuildMetrics& Get() {
    static const IndexBuildMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Default();
      return IndexBuildMetrics{
          registry.GetCounter("bitruss_beindex_builds_total"),
          registry.GetHistogram("bitruss_beindex_build_seconds",
                                obs::ExponentialBuckets(0.001, 2.0, 14)),
          registry.GetGauge("bitruss_beindex_last_build_bytes"),
      };
    }();
    return metrics;
  }
};

void RecordBuild(const BEIndex& index, double seconds) {
  const IndexBuildMetrics& metrics = IndexBuildMetrics::Get();
  metrics.builds->Inc();
  metrics.seconds->Observe(seconds);
  metrics.last_bytes->Set(static_cast<std::int64_t>(index.MemoryBytes()));
}

}  // namespace

void BEIndex::KillWedge(WedgeId w) {
  const BloomId b = wedge_bloom[w];
  const std::uint64_t slot = wedge_slot[w];
  const std::uint64_t last = bloom_offsets[b] + bloom_live[b] - 1;
  const WedgeId moved = bloom_slots[last];
  bloom_slots[slot] = moved;
  wedge_slot[moved] = static_cast<std::uint32_t>(slot);
  bloom_slots[last] = w;
  wedge_slot[w] = static_cast<std::uint32_t>(last);
  --bloom_live[b];
  wedge_alive[w] = 0;
}

std::uint32_t BEIndex::EdgeLiveCount(EdgeId e) const {
  std::uint32_t live = 0;
  for (std::uint64_t i = edge_offsets[e]; i < edge_offsets[e + 1]; ++i) {
    live += wedge_alive[edge_wedges[i]];
  }
  return live;
}

std::vector<SupportT> BEIndex::ComputeSupports() const {
  return ComputeSupports(nullptr);
}

std::vector<SupportT> BEIndex::ComputeSupports(ThreadPool* pool) const {
  std::vector<SupportT> sup(num_edges, 0);
  const auto compute_range = [&](std::uint64_t begin, std::uint64_t end) {
    for (std::uint64_t e = begin; e < end; ++e) {
      SupportT s = 0;
      for (std::uint64_t i = edge_offsets[e]; i < edge_offsets[e + 1]; ++i) {
        const WedgeId w = edge_wedges[i];
        if (wedge_alive[w]) s += BloomK(wedge_bloom[w]) - 1;
      }
      sup[e] = s;
    }
  };
  if (pool == nullptr || pool->NumThreads() <= 1) {
    compute_range(0, num_edges);
  } else {
    pool->ParallelForChunks(
        0, num_edges, pool->NumThreads() * 8,
        [&](std::uint64_t begin, std::uint64_t end, unsigned, unsigned) {
          compute_range(begin, end);
        });
  }
  return sup;
}

std::uint64_t BEIndex::MemoryBytes() const {
  return wedge_e1.size() * sizeof(EdgeId) + wedge_e2.size() * sizeof(EdgeId) +
         wedge_bloom.size() * sizeof(BloomId) +
         wedge_alive.size() * sizeof(std::uint8_t) +
         wedge_slot.size() * sizeof(std::uint32_t) +
         edge_offsets.size() * sizeof(std::uint64_t) +
         edge_wedges.size() * sizeof(WedgeId) +
         bloom_offsets.size() * sizeof(std::uint64_t) +
         bloom_slots.size() * sizeof(WedgeId) +
         bloom_live.size() * sizeof(SupportT) +
         bloom_base.size() * sizeof(SupportT);
}

namespace {

using Entry = PriorityAdjacency::Entry;

// Adjacency restricted to included edges (BiT-PC candidate subgraphs).
struct FilteredAdj {
  std::vector<std::uint64_t> offsets;
  std::vector<Entry> entries;

  FilteredAdj(const PriorityAdjacency& adj,
              const std::vector<std::uint8_t>& included) {
    const VertexId n = adj.NumVertices();
    offsets.assign(n + 1, 0);
    for (VertexId r = 0; r < n; ++r) {
      std::uint64_t kept = 0;
      for (const Entry& entry : adj.Neighbors(r)) kept += included[entry.edge];
      offsets[r + 1] = offsets[r] + kept;
    }
    entries.resize(offsets[n]);
    std::uint64_t out = 0;
    for (VertexId r = 0; r < n; ++r) {
      for (const Entry& entry : adj.Neighbors(r)) {
        if (included[entry.edge]) entries[out++] = entry;
      }
    }
  }

  VertexId NumVertices() const {
    return static_cast<VertexId>(offsets.size() - 1);
  }
  PriorityAdjacency::Range Neighbors(VertexId r) const {
    return {entries.data() + offsets[r], entries.data() + offsets[r + 1]};
  }
  const Entry* FirstBelowPriority(VertexId r, VertexId bound) const {
    return internal::FirstRankAbove(Neighbors(r), bound);
  }
};

// One anchor range's share of the enumeration.  Bloom ids are local to the
// fragment; a bloom is an (anchor, endpoint) pair, so blooms never span
// fragments and concatenating fragments in anchor order reproduces the
// sequential bloom/wedge numbering exactly.
struct BuildFragment {
  std::vector<EdgeId> wedge_e1;
  std::vector<EdgeId> wedge_e2;
  std::vector<BloomId> wedge_bloom;   // fragment-local ids
  std::vector<SupportT> bloom_count;  // stored wedges per local bloom
  std::vector<SupportT> bloom_base;
};

// Per-thread enumeration scratch, reused across the thread's fragments.
// pair_bloom/pair_base are valid for one anchor iteration and restored to
// kNoBloom/0 by the anchor-done hook, so reuse needs no re-initialization.
constexpr BloomId kNoBloom = static_cast<BloomId>(-1);
struct BuildScratch {
  internal::BloomScratch bloom;
  std::vector<BloomId> pair_bloom;
  std::vector<SupportT> pair_base;

  void Prepare(VertexId n) {
    bloom.Prepare(n);
    pair_bloom.assign(n, kNoBloom);
    pair_base.assign(n, 0);
  }
  bool Prepared() const { return !pair_bloom.empty(); }
};

template <typename AdjT>
void EnumerateFragment(const AdjT& a, VertexId anchor_begin,
                       VertexId anchor_end,
                       const std::vector<std::uint8_t>& assigned,
                       BuildScratch& scratch, BuildFragment* frag) {
  const bool has_assigned = !assigned.empty();
  std::vector<BloomId>& pair_bloom = scratch.pair_bloom;
  std::vector<SupportT>& pair_base = scratch.pair_base;
  internal::ForEachBloomRange<true>(
      a, anchor_begin, anchor_end, scratch.bloom, [](VertexId, SupportT) {},
      [&](VertexId wr, SupportT, EdgeId e1, EdgeId e2) {
        if (has_assigned && assigned[e1] && assigned[e2]) {
          // Both bitruss numbers known: fold into the bloom base count.
          ++pair_base[wr];
          return;
        }
        BloomId b = pair_bloom[wr];
        if (b == kNoBloom) {
          b = static_cast<BloomId>(frag->bloom_count.size());
          pair_bloom[wr] = b;
          frag->bloom_count.push_back(0);
          frag->bloom_base.push_back(0);
        }
        ++frag->bloom_count[b];
        frag->wedge_e1.push_back(e1);
        frag->wedge_e2.push_back(e2);
        frag->wedge_bloom.push_back(b);
      },
      [&](const std::vector<VertexId>& touched) {
        for (const VertexId wr : touched) {
          if (pair_bloom[wr] != kNoBloom) {
            frag->bloom_base[pair_bloom[wr]] = pair_base[wr];
          }
          pair_base[wr] = 0;
          pair_bloom[wr] = kNoBloom;
        }
      });
}

template <typename AdjT>
BEIndex BuildImpl(EdgeId num_edges, const AdjT& a,
                  const std::vector<std::uint8_t>& assigned,
                  ThreadPool* pool) {
  BEIndex index;
  index.num_edges = num_edges;
  const VertexId n = a.NumVertices();

  std::vector<SupportT> bloom_count;  // stored wedges per bloom

  if (pool == nullptr || pool->NumThreads() <= 1) {
    BuildScratch scratch;
    scratch.Prepare(n);
    BuildFragment frag;
    EnumerateFragment(a, 0, n, assigned, scratch, &frag);
    index.wedge_e1 = std::move(frag.wedge_e1);
    index.wedge_e2 = std::move(frag.wedge_e2);
    index.wedge_bloom = std::move(frag.wedge_bloom);
    index.bloom_base = std::move(frag.bloom_base);
    bloom_count = std::move(frag.bloom_count);
  } else {
    // Fragments keyed by chunk index, enumerated under a shared cursor and
    // concatenated in chunk (= anchor) order: byte-identical to the
    // sequential build no matter which thread ran which chunk.
    const unsigned num_threads = pool->NumThreads();
    const unsigned num_chunks =
        n == 0 ? 1
               : static_cast<unsigned>(std::min<std::uint64_t>(
                     static_cast<std::uint64_t>(num_threads) * 8, n));
    std::vector<BuildFragment> fragments(num_chunks);
    std::vector<BuildScratch> scratch(num_threads);
    pool->ParallelForChunks(
        0, n, num_chunks,
        [&](std::uint64_t begin, std::uint64_t end, unsigned chunk,
            unsigned thread) {
          if (!scratch[thread].Prepared()) scratch[thread].Prepare(n);
          EnumerateFragment(a, static_cast<VertexId>(begin),
                            static_cast<VertexId>(end), assigned,
                            scratch[thread], &fragments[chunk]);
        });

    std::uint64_t total_wedges = 0;
    std::uint64_t total_blooms = 0;
    for (const BuildFragment& frag : fragments) {
      total_wedges += frag.wedge_e1.size();
      total_blooms += frag.bloom_count.size();
    }
    index.wedge_e1.reserve(total_wedges);
    index.wedge_e2.reserve(total_wedges);
    index.wedge_bloom.reserve(total_wedges);
    index.bloom_base.reserve(total_blooms);
    bloom_count.reserve(total_blooms);
    for (BuildFragment& frag : fragments) {
      const BloomId bloom_offset = static_cast<BloomId>(bloom_count.size());
      index.wedge_e1.insert(index.wedge_e1.end(), frag.wedge_e1.begin(),
                            frag.wedge_e1.end());
      index.wedge_e2.insert(index.wedge_e2.end(), frag.wedge_e2.begin(),
                            frag.wedge_e2.end());
      for (const BloomId b : frag.wedge_bloom) {
        index.wedge_bloom.push_back(b + bloom_offset);
      }
      index.bloom_base.insert(index.bloom_base.end(), frag.bloom_base.begin(),
                              frag.bloom_base.end());
      bloom_count.insert(bloom_count.end(), frag.bloom_count.begin(),
                         frag.bloom_count.end());
      frag = BuildFragment();  // release as we go; peak stays ~2x one copy
    }
  }

  const std::uint64_t num_wedges = index.wedge_e1.size();
  if (num_wedges > UINT32_MAX) {
    // Wedge count is bounded by sum min{d(u), d(v)}, which can exceed the
    // 2^32 edge-id cap on hub-heavy graphs; fail loudly, never truncate.
    throw std::length_error("BEIndex: wedge count exceeds 32-bit id space");
  }
  const BloomId num_blooms = static_cast<BloomId>(bloom_count.size());
  index.wedge_alive.assign(num_wedges, 1);
  index.bloom_live.assign(bloom_count.begin(), bloom_count.end());

  // Bloom slot segments.
  index.bloom_offsets.assign(num_blooms + 1, 0);
  for (BloomId b = 0; b < num_blooms; ++b) {
    index.bloom_offsets[b + 1] = index.bloom_offsets[b] + bloom_count[b];
  }
  index.bloom_slots.resize(num_wedges);
  index.wedge_slot.resize(num_wedges);
  {
    std::vector<std::uint64_t> cursor(index.bloom_offsets.begin(),
                                      index.bloom_offsets.end() - 1);
    for (std::uint64_t w = 0; w < num_wedges; ++w) {
      const std::uint64_t slot = cursor[index.wedge_bloom[w]]++;
      index.bloom_slots[slot] = static_cast<WedgeId>(w);
      index.wedge_slot[w] = static_cast<std::uint32_t>(slot);
    }
  }

  // Static per-edge CSR.
  index.edge_offsets.assign(num_edges + 1, 0);
  for (std::uint64_t w = 0; w < num_wedges; ++w) {
    ++index.edge_offsets[index.wedge_e1[w] + 1];
    ++index.edge_offsets[index.wedge_e2[w] + 1];
  }
  for (EdgeId e = 0; e < num_edges; ++e) {
    index.edge_offsets[e + 1] += index.edge_offsets[e];
  }
  index.edge_wedges.resize(2 * num_wedges);
  {
    std::vector<std::uint64_t> cursor(index.edge_offsets.begin(),
                                      index.edge_offsets.end() - 1);
    for (std::uint64_t w = 0; w < num_wedges; ++w) {
      index.edge_wedges[cursor[index.wedge_e1[w]]++] = static_cast<WedgeId>(w);
      index.edge_wedges[cursor[index.wedge_e2[w]]++] = static_cast<WedgeId>(w);
    }
  }
  return index;
}

}  // namespace

BEIndex BEIndexBuilder::Build(const BipartiteGraph& g,
                              const PriorityAdjacency& adj, ThreadPool* pool) {
  Timer timer;
  BEIndex index = BuildImpl(g.NumEdges(), adj, {}, pool);
  RecordBuild(index, timer.Seconds());
  return index;
}

BEIndex BEIndexBuilder::BuildCompressed(
    const BipartiteGraph& g, const PriorityAdjacency& adj,
    const std::vector<std::uint8_t>& assigned, ThreadPool* pool) {
  Timer timer;
  BEIndex index = BuildImpl(g.NumEdges(), adj, assigned, pool);
  RecordBuild(index, timer.Seconds());
  return index;
}

BEIndex BEIndexBuilder::BuildCompressed(
    const BipartiteGraph& g, const PriorityAdjacency& adj,
    const std::vector<std::uint8_t>& assigned,
    const std::vector<std::uint8_t>& included, ThreadPool* pool) {
  Timer timer;
  BEIndex index = included.empty()
                      ? BuildImpl(g.NumEdges(), adj, assigned, pool)
                      : BuildImpl(g.NumEdges(), FilteredAdj(adj, included),
                                  assigned, pool);
  RecordBuild(index, timer.Seconds());
  return index;
}

}  // namespace bitruss
