#include "core/be_index_builder.h"

#include <algorithm>
#include <stdexcept>

#include "butterfly/wedge_enumeration.h"

namespace bitruss {

void BEIndex::KillWedge(WedgeId w) {
  const BloomId b = wedge_bloom[w];
  const std::uint64_t slot = wedge_slot[w];
  const std::uint64_t last = bloom_offsets[b] + bloom_live[b] - 1;
  const WedgeId moved = bloom_slots[last];
  bloom_slots[slot] = moved;
  wedge_slot[moved] = static_cast<std::uint32_t>(slot);
  bloom_slots[last] = w;
  wedge_slot[w] = static_cast<std::uint32_t>(last);
  --bloom_live[b];
  wedge_alive[w] = 0;
}

std::uint32_t BEIndex::EdgeLiveCount(EdgeId e) const {
  std::uint32_t live = 0;
  for (std::uint64_t i = edge_offsets[e]; i < edge_offsets[e + 1]; ++i) {
    live += wedge_alive[edge_wedges[i]];
  }
  return live;
}

std::vector<SupportT> BEIndex::ComputeSupports() const {
  std::vector<SupportT> sup(num_edges, 0);
  for (EdgeId e = 0; e < num_edges; ++e) {
    SupportT s = 0;
    for (std::uint64_t i = edge_offsets[e]; i < edge_offsets[e + 1]; ++i) {
      const WedgeId w = edge_wedges[i];
      if (wedge_alive[w]) s += BloomK(wedge_bloom[w]) - 1;
    }
    sup[e] = s;
  }
  return sup;
}

std::uint64_t BEIndex::MemoryBytes() const {
  return wedge_e1.size() * sizeof(EdgeId) + wedge_e2.size() * sizeof(EdgeId) +
         wedge_bloom.size() * sizeof(BloomId) +
         wedge_alive.size() * sizeof(std::uint8_t) +
         wedge_slot.size() * sizeof(std::uint32_t) +
         edge_offsets.size() * sizeof(std::uint64_t) +
         edge_wedges.size() * sizeof(WedgeId) +
         bloom_offsets.size() * sizeof(std::uint64_t) +
         bloom_slots.size() * sizeof(WedgeId) +
         bloom_live.size() * sizeof(SupportT) +
         bloom_base.size() * sizeof(SupportT);
}

namespace {

using Entry = PriorityAdjacency::Entry;

// Adjacency restricted to included edges (BiT-PC candidate subgraphs).
struct FilteredAdj {
  std::vector<std::uint64_t> offsets;
  std::vector<Entry> entries;

  FilteredAdj(const PriorityAdjacency& adj,
              const std::vector<std::uint8_t>& included) {
    const VertexId n = adj.NumVertices();
    offsets.assign(n + 1, 0);
    for (VertexId r = 0; r < n; ++r) {
      std::uint64_t kept = 0;
      for (const Entry& entry : adj.Neighbors(r)) kept += included[entry.edge];
      offsets[r + 1] = offsets[r] + kept;
    }
    entries.resize(offsets[n]);
    std::uint64_t out = 0;
    for (VertexId r = 0; r < n; ++r) {
      for (const Entry& entry : adj.Neighbors(r)) {
        if (included[entry.edge]) entries[out++] = entry;
      }
    }
  }

  VertexId NumVertices() const {
    return static_cast<VertexId>(offsets.size() - 1);
  }
  PriorityAdjacency::Range Neighbors(VertexId r) const {
    return {entries.data() + offsets[r], entries.data() + offsets[r + 1]};
  }
  const Entry* FirstBelowPriority(VertexId r, VertexId bound) const {
    return internal::FirstRankAbove(Neighbors(r), bound);
  }
};

template <typename AdjT>
BEIndex BuildImpl(EdgeId num_edges, const AdjT& a,
                  const std::vector<std::uint8_t>& assigned) {
  BEIndex index;
  index.num_edges = num_edges;
  const VertexId n = a.NumVertices();

  // Per-endpoint scratch, valid for one anchor iteration.
  constexpr BloomId kNoBloom = static_cast<BloomId>(-1);
  std::vector<BloomId> pair_bloom(n, kNoBloom);
  std::vector<SupportT> pair_base(n, 0);

  std::vector<SupportT> bloom_count;  // stored wedges per bloom

  const bool has_assigned = !assigned.empty();
  internal::ForEachBloom<true>(
      a, [](VertexId, SupportT) {},
      [&](VertexId wr, SupportT, EdgeId e1, EdgeId e2) {
        if (has_assigned && assigned[e1] && assigned[e2]) {
          // Both bitruss numbers known: fold into the bloom base count.
          ++pair_base[wr];
          return;
        }
        BloomId b = pair_bloom[wr];
        if (b == kNoBloom) {
          b = static_cast<BloomId>(bloom_count.size());
          pair_bloom[wr] = b;
          bloom_count.push_back(0);
          index.bloom_base.push_back(0);
        }
        ++bloom_count[b];
        index.wedge_e1.push_back(e1);
        index.wedge_e2.push_back(e2);
        index.wedge_bloom.push_back(b);
      },
      [&](const std::vector<VertexId>& touched) {
        for (const VertexId wr : touched) {
          if (pair_bloom[wr] != kNoBloom) {
            index.bloom_base[pair_bloom[wr]] = pair_base[wr];
          }
          pair_base[wr] = 0;
          pair_bloom[wr] = kNoBloom;
        }
      });

  const std::uint64_t num_wedges = index.wedge_e1.size();
  if (num_wedges > UINT32_MAX) {
    // Wedge count is bounded by sum min{d(u), d(v)}, which can exceed the
    // 2^32 edge-id cap on hub-heavy graphs; fail loudly, never truncate.
    throw std::length_error("BEIndex: wedge count exceeds 32-bit id space");
  }
  const BloomId num_blooms = static_cast<BloomId>(bloom_count.size());
  index.wedge_alive.assign(num_wedges, 1);
  index.bloom_live.assign(bloom_count.begin(), bloom_count.end());

  // Bloom slot segments.
  index.bloom_offsets.assign(num_blooms + 1, 0);
  for (BloomId b = 0; b < num_blooms; ++b) {
    index.bloom_offsets[b + 1] = index.bloom_offsets[b] + bloom_count[b];
  }
  index.bloom_slots.resize(num_wedges);
  index.wedge_slot.resize(num_wedges);
  {
    std::vector<std::uint64_t> cursor(index.bloom_offsets.begin(),
                                      index.bloom_offsets.end() - 1);
    for (std::uint64_t w = 0; w < num_wedges; ++w) {
      const std::uint64_t slot = cursor[index.wedge_bloom[w]]++;
      index.bloom_slots[slot] = static_cast<WedgeId>(w);
      index.wedge_slot[w] = static_cast<std::uint32_t>(slot);
    }
  }

  // Static per-edge CSR.
  index.edge_offsets.assign(num_edges + 1, 0);
  for (std::uint64_t w = 0; w < num_wedges; ++w) {
    ++index.edge_offsets[index.wedge_e1[w] + 1];
    ++index.edge_offsets[index.wedge_e2[w] + 1];
  }
  for (EdgeId e = 0; e < num_edges; ++e) {
    index.edge_offsets[e + 1] += index.edge_offsets[e];
  }
  index.edge_wedges.resize(2 * num_wedges);
  {
    std::vector<std::uint64_t> cursor(index.edge_offsets.begin(),
                                      index.edge_offsets.end() - 1);
    for (std::uint64_t w = 0; w < num_wedges; ++w) {
      index.edge_wedges[cursor[index.wedge_e1[w]]++] = static_cast<WedgeId>(w);
      index.edge_wedges[cursor[index.wedge_e2[w]]++] = static_cast<WedgeId>(w);
    }
  }
  return index;
}

}  // namespace

BEIndex BEIndexBuilder::Build(const BipartiteGraph& g,
                              const PriorityAdjacency& adj) {
  return BuildImpl(g.NumEdges(), adj, {});
}

BEIndex BEIndexBuilder::BuildCompressed(
    const BipartiteGraph& g, const PriorityAdjacency& adj,
    const std::vector<std::uint8_t>& assigned) {
  return BuildImpl(g.NumEdges(), adj, assigned);
}

BEIndex BEIndexBuilder::BuildCompressed(
    const BipartiteGraph& g, const PriorityAdjacency& adj,
    const std::vector<std::uint8_t>& assigned,
    const std::vector<std::uint8_t>& included) {
  if (included.empty()) return BuildImpl(g.NumEdges(), adj, assigned);
  const FilteredAdj filtered(adj, included);
  return BuildImpl(g.NumEdges(), filtered, assigned);
}

}  // namespace bitruss
