// The Bloom-Edge Index (BE-Index, Section IV of Wang et al., ICDE'20).
//
// A bloom is a priority-anchored (2, k)-biclique: the set of wedges charged
// to one (anchor, endpoint) vertex pair by the BFC-VP enumeration.  Every
// butterfly consists of exactly two wedges of exactly one bloom, so with
// k(B) = number of wedges alive in bloom B:
//
//   sup(e) = sum over blooms B containing e of (k(B) - 1)        (Lemma 4)
//
// and removing an edge e updates, per bloom containing e, the twin edge in
// bulk (-= k(B)-1) and every other wedge edge by 1 — O(sup(e)) total work
// (Lemma 5).  The index stores wedges once, a static per-edge CSR of wedge
// ids, and per-bloom slot arrays with a live prefix so wedge removal is
// O(1) swap-remove.
//
// BuildCompressed implements BiT-PC's compressed index: edges outside the
// candidate subgraph are excluded entirely, and wedges whose two edges both
// already have their bitruss number assigned are folded into a per-bloom
// base count (they still contribute to k(B) but are never stored, visited,
// or updated).

#ifndef BITRUSS_CORE_BE_INDEX_BUILDER_H_
#define BITRUSS_CORE_BE_INDEX_BUILDER_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/vertex_priority.h"
#include "util/thread_pool.h"

namespace bitruss {

struct BEIndex {
  EdgeId num_edges = 0;

  // Wedge store (parallel arrays).
  std::vector<EdgeId> wedge_e1;       ///< anchor-side edge (anchor, mid)
  std::vector<EdgeId> wedge_e2;       ///< far-side edge (mid, endpoint)
  std::vector<BloomId> wedge_bloom;
  std::vector<std::uint8_t> wedge_alive;
  std::vector<std::uint32_t> wedge_slot;  ///< position within the bloom slots

  // Static per-edge CSR of wedge ids (never mutated during peeling).
  std::vector<std::uint64_t> edge_offsets;  ///< size num_edges + 1
  std::vector<WedgeId> edge_wedges;

  // Per-bloom wedge slots; [bloom_offsets[b], bloom_offsets[b]+bloom_live[b])
  // is the live prefix, maintained by swap-remove.
  std::vector<std::uint64_t> bloom_offsets;  ///< size NumBlooms() + 1
  std::vector<WedgeId> bloom_slots;
  std::vector<SupportT> bloom_live;
  std::vector<SupportT> bloom_base;  ///< compressed (both-assigned) wedges

  BloomId NumBlooms() const {
    return static_cast<BloomId>(bloom_live.size());
  }

  /// Current k(B): live stored wedges plus the compressed base.
  SupportT BloomK(BloomId b) const { return bloom_base[b] + bloom_live[b]; }

  EdgeId Twin(WedgeId w, EdgeId e) const {
    return wedge_e1[w] == e ? wedge_e2[w] : wedge_e1[w];
  }

  /// Removes wedge w from its bloom's live prefix (O(1)) and marks it dead.
  void KillWedge(WedgeId w);

  /// Number of live wedges containing edge e.
  std::uint32_t EdgeLiveCount(EdgeId e) const;

  /// sup(e) = sum of (k(B) - 1) over live wedges of e (Lemma 4).  Edges
  /// without wedges (or excluded from a compressed index) read 0.  The
  /// pool-taking overload parallelizes over edge ranges (each edge is an
  /// independent read), bit-identical at every thread count; BiT-PC's
  /// cascade recount passes go through it.
  std::vector<SupportT> ComputeSupports() const;
  std::vector<SupportT> ComputeSupports(ThreadPool* pool) const;

  std::uint64_t MemoryBytes() const;
};

class BEIndexBuilder {
 public:
  /// Full BE-Index over every edge of g.  When `pool` is non-null with more
  /// than one thread, the wedge enumeration is partitioned over anchor
  /// chunks and the fragments concatenated in anchor order — the result is
  /// byte-identical to the sequential build at every thread count.
  static BEIndex Build(const BipartiteGraph& g, const PriorityAdjacency& adj,
                       ThreadPool* pool = nullptr);

  /// Compressed index over all edges, folding wedges whose two edges are
  /// both `assigned` into the bloom base counts.
  static BEIndex BuildCompressed(const BipartiteGraph& g,
                                 const PriorityAdjacency& adj,
                                 const std::vector<std::uint8_t>& assigned,
                                 ThreadPool* pool = nullptr);

  /// Compressed index over the subgraph {e : included[e] != 0}; wedges with
  /// an excluded edge are dropped entirely.  `included` may be empty to
  /// mean "all edges".
  static BEIndex BuildCompressed(const BipartiteGraph& g,
                                 const PriorityAdjacency& adj,
                                 const std::vector<std::uint8_t>& assigned,
                                 const std::vector<std::uint8_t>& included,
                                 ThreadPool* pool = nullptr);
};

}  // namespace bitruss

#endif  // BITRUSS_CORE_BE_INDEX_BUILDER_H_
