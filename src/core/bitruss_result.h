// Result and counter types shared by every decomposition algorithm and the
// bench harnesses.

#ifndef BITRUSS_CORE_BITRUSS_RESULT_H_
#define BITRUSS_CORE_BITRUSS_RESULT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/types.h"

namespace bitruss {

/// One BiT-PC iteration, for Figure 8's progressive-compression trace.
struct PCIterationTrace {
  std::uint64_t theta = 0;            ///< support threshold of the iteration
  std::uint64_t candidate_edges = 0;  ///< unassigned edges in the candidate
  std::uint64_t assigned_now = 0;     ///< bitruss numbers fixed this round
  std::uint64_t index_bytes = 0;      ///< compressed BE-Index footprint
};

/// Work counters accumulated during a decomposition run.
struct UpdateCounters {
  double counting_seconds = 0;  ///< support counting + index construction
  double peeling_seconds = 0;   ///< peeling (per-iteration work for PC)
  /// Number of butterfly-support updates applied to edges.  A bloom-twin
  /// bulk update (-= k(B)-1, Lemma 5) counts as one update.
  std::uint64_t support_updates = 0;
  /// Largest online index footprint (full BE-Index for BU/BU+/BU++; max
  /// per-iteration compressed index for PC; 0 for BS).
  std::uint64_t peak_index_bytes = 0;
  /// Updates received per edge; sized NumEdges() only when
  /// DecomposeOptions::track_per_edge_updates was set.
  std::vector<std::uint64_t> per_edge_updates;
};

struct BitrussResult {
  /// Bitruss number phi(e) per edge.  Partial (unassigned edges read 0)
  /// when timed_out is set.
  std::vector<SupportT> phi;
  /// Butterfly support per edge in the input graph, before any peeling.
  std::vector<SupportT> original_support;
  std::uint64_t total_butterflies = 0;
  bool timed_out = false;
  UpdateCounters counters;
  /// Per-iteration trace; populated only by Algorithm::kPC.
  std::vector<PCIterationTrace> pc_trace;

  SupportT MaxSupport() const {
    return original_support.empty()
               ? 0
               : *std::max_element(original_support.begin(),
                                   original_support.end());
  }

  SupportT MaxPhi() const {
    return phi.empty() ? 0 : *std::max_element(phi.begin(), phi.end());
  }
};

}  // namespace bitruss

#endif  // BITRUSS_CORE_BITRUSS_RESULT_H_
