#include "core/decompose.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <optional>

#include "butterfly/butterfly_counting.h"
#include "core/be_index_builder.h"
#include "core/peeling_state.h"
#include "obs/metrics.h"

namespace bitruss {

namespace {

constexpr std::uint32_t kDeadlinePollInterval = 256;

// Registry handles are fetched once per process; the decompose phases then
// pay one atomic op per report.  Seconds buckets span 1ms..~8s.
struct DecomposeMetrics {
  obs::Counter* runs;
  obs::Histogram* counting_seconds;
  obs::Histogram* peeling_seconds;
  obs::Counter* pc_rounds;

  static const DecomposeMetrics& Get() {
    static const DecomposeMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Default();
      const std::vector<double> seconds =
          obs::ExponentialBuckets(0.001, 2.0, 14);
      return DecomposeMetrics{
          registry.GetCounter("bitruss_core_decompose_runs_total"),
          registry.GetHistogram("bitruss_core_counting_seconds", seconds),
          registry.GetHistogram("bitruss_core_peeling_seconds", seconds),
          registry.GetCounter("bitruss_core_pc_rounds_total"),
      };
    }();
    return metrics;
  }
};

// BiT-BS peeling: on every removal, re-enumerate the butterflies of the
// removed edge on the current (shrinking) graph and decrement the other
// three edges of each.  O(d(u) + sum_{w in N(v)} d(w)) per removal.
void PeelBS(const BipartiteGraph& g, std::vector<SupportT> sup,
            const DecomposeOptions& options, BitrussResult* result) {
  const EdgeId m = g.NumEdges();
  const VertexId n = g.NumVertices();
  std::vector<std::uint8_t> removed(m, 0);
  std::vector<std::uint32_t> stamp(n, 0);
  std::vector<EdgeId> stamp_edge(n, kInvalidEdge);
  std::uint32_t epoch = 0;

  const bool track = options.track_per_edge_updates;
  const auto update = [&](EdgeId e) {
    ++result->counters.support_updates;
    if (track) ++result->counters.per_edge_updates[e];
    if (sup[e] > 0) --sup[e];
  };

  SupportT max_sup = m == 0 ? 0 : *std::max_element(sup.begin(), sup.end());
  std::vector<std::vector<EdgeId>> buckets(
      static_cast<std::size_t>(max_sup) + 1);
  for (EdgeId e = 0; e < m; ++e) buckets[sup[e]].push_back(e);

  SupportT cursor = 0;
  SupportT level = 0;
  EdgeId remaining = m;
  std::uint32_t since_poll = 0;
  while (remaining > 0) {
    while (cursor < buckets.size() && buckets[cursor].empty()) ++cursor;
    if (cursor >= buckets.size()) break;
    std::vector<EdgeId>& bucket = buckets[cursor];
    const EdgeId e = bucket.back();
    bucket.pop_back();
    if (removed[e] || sup[e] != cursor) continue;
    if (++since_poll >= kDeadlinePollInterval) {
      since_poll = 0;
      if (options.deadline.Expired()) {
        result->timed_out = true;
        return;
      }
    }
    level = std::max(level, cursor);
    removed[e] = 1;
    --remaining;
    result->phi[e] = level;

    const VertexId u = g.EdgeUpper(e);
    const VertexId v = g.EdgeLower(e);
    ++epoch;
    for (const auto& [y, ey] : g.Neighbors(u)) {
      if (!removed[ey] && y != v) {
        stamp[y] = epoch;
        stamp_edge[y] = ey;
      }
    }
    SupportT min_new = cursor;
    for (const auto& [w, ew] : g.Neighbors(v)) {
      if (removed[ew] || w == u) continue;
      for (const auto& [y, ewy] : g.Neighbors(w)) {
        if (removed[ewy] || y == v || stamp[y] != epoch) continue;
        // Butterfly {u, v, w, y}: the three surviving edges lose it.
        update(stamp_edge[y]);
        update(ew);
        update(ewy);
        buckets[sup[stamp_edge[y]]].push_back(stamp_edge[y]);
        buckets[sup[ewy]].push_back(ewy);
        min_new = std::min({min_new, sup[stamp_edge[y]], sup[ewy]});
      }
      if (!removed[ew]) {
        buckets[sup[ew]].push_back(ew);
        min_new = std::min(min_new, sup[ew]);
      }
    }
    cursor = std::min(cursor, min_new);
  }
}

void RunIndexed(const BipartiteGraph& g, const PriorityAdjacency& adj,
                std::vector<SupportT> sup, Peeler::Mode mode,
                const DecomposeOptions& options, ThreadPool* pool,
                BitrussResult* result) {
  Timer timer;
  obs::ObsSpan build_span(options.trace, "decompose/index_build");
  BEIndex index = BEIndexBuilder::Build(g, adj, pool);
  build_span.Note("index_bytes", static_cast<double>(index.MemoryBytes()));
  build_span.End();
  result->counters.peak_index_bytes = index.MemoryBytes();
  result->counters.counting_seconds += timer.Seconds();

  PeelerOptions peel_options;
  peel_options.track_per_edge_updates = options.track_per_edge_updates;
  PeelCounters counters;
  counters.per_edge_updates = std::move(result->counters.per_edge_updates);
  Peeler peeler(std::move(index), std::move(sup), std::move(peel_options),
                &counters);
  timer.Reset();
  obs::ObsSpan peel_span(options.trace, "decompose/peel");
  const bool completed =
      peeler.Run(mode, options.deadline,
                 [&](EdgeId e, SupportT level) { result->phi[e] = level; });
  peel_span.End();
  result->counters.peeling_seconds = timer.Seconds();
  result->timed_out = !completed;
  result->counters.support_updates = counters.support_updates;
  result->counters.per_edge_updates = std::move(counters.per_edge_updates);
}

// BiT-PC.  Rounds iterate a strictly decreasing support threshold theta.
// Each round restricts to the theta-bitruss of g — computed by cascade
// *recounting* (counting passes, not support updates; that exchange is
// exactly the progressive-compression trade) — and peels it with all
// previously assigned edges frozen and their mutual wedges compressed into
// bloom base counts.  Every edge of the theta-bitruss has phi >= theta, so
// the round assigns every edge it peels, each edge is peeled exactly once
// across the whole run, and hub edges never absorb the low-level update
// storm (Figure 7's observation).
void RunPC(const BipartiteGraph& g, const PriorityAdjacency& adj,
           const std::vector<SupportT>& sup_g, const DecomposeOptions& options,
           ThreadPool* pool, BitrussResult* result) {
  const EdgeId m = g.NumEdges();
  Timer timer;
  std::vector<std::uint8_t> assigned(m, 0);
  std::vector<std::uint8_t> included(m, 0);
  EdgeId unassigned = m;

  const double tau = std::clamp(options.tau, 1e-6, 1.0);
  const EdgeId per_round = std::max<EdgeId>(
      1, static_cast<EdgeId>(std::llround(std::ceil(tau * m))));

  // Theta ladder: every per_round-th value of the descending original
  // support sequence, deduplicated, ending at 0.  The round count is
  // therefore ~1/tau regardless of how phi relates to sup_G, which is the
  // knob Figure 14 sweeps.
  std::vector<std::uint64_t> ladder;
  {
    std::vector<SupportT> sorted = sup_g;
    std::sort(sorted.begin(), sorted.end(), std::greater<SupportT>());
    for (std::size_t r = per_round - 1; r < sorted.size(); r += per_round) {
      if (ladder.empty() || sorted[r] < ladder.back()) {
        ladder.push_back(sorted[r]);
      }
    }
    if (ladder.empty() || ladder.back() > 0) ladder.push_back(0);
  }
  // Per-edge upper bound on phi, tightened every time a cascade evicts the
  // edge from a theta-bitruss; keeps later rounds' seed subgraphs small.
  std::vector<SupportT> phi_bound = sup_g;

  for (const std::uint64_t theta : ladder) {
    if (unassigned == 0) break;
    if (options.deadline.Expired()) {
      result->timed_out = true;
      break;
    }
    DecomposeMetrics::Get().pc_rounds->Inc();
    obs::ObsSpan round_span(options.trace, "pc/round");
    round_span.Note("theta", static_cast<double>(theta));

    // Candidate = theta-bitruss: seed with assigned edges (phi >= theta by
    // construction) plus unassigned edges whose phi bound allows theta,
    // then cascade-recount until every candidate has in-subgraph support
    // >= theta.  Recounting is counting work, not support updates — that
    // exchange is the essence of progressive compression.
    for (EdgeId e = 0; e < m; ++e) {
      included[e] = assigned[e] || phi_bound[e] >= theta;
    }
    // Cascade until every unassigned candidate holds in-subgraph support
    // >= theta; the converged build is reused directly for the peel.
    BEIndex index;
    std::vector<SupportT> sup_sub;
    bool converged = false;
    while (!converged && !options.deadline.Expired()) {
      // The cascade recount is the PC hot path: both the compressed build
      // and the Lemma 4 support scan run over the pool.
      index = BEIndexBuilder::BuildCompressed(g, adj, assigned, included, pool);
      sup_sub = index.ComputeSupports(pool);
      converged = true;
      if (theta == 0) break;
      for (EdgeId e = 0; e < m; ++e) {
        if (included[e] && !assigned[e] && sup_sub[e] < theta) {
          included[e] = 0;
          phi_bound[e] = std::min<SupportT>(
              phi_bound[e], static_cast<SupportT>(theta - 1));
          converged = false;
        }
      }
    }
    if (!converged) {
      result->timed_out = true;
      break;
    }

    std::uint64_t candidate_unassigned = 0;
    for (EdgeId e = 0; e < m; ++e) {
      candidate_unassigned += included[e] && !assigned[e];
    }
    if (candidate_unassigned == 0) {
      // No edge has phi at or above this theta; move down the ladder.
      result->pc_trace.push_back({theta, 0, 0, 0});
      round_span.Note("candidate_edges", 0);
      continue;
    }

    const std::uint64_t index_bytes = index.MemoryBytes();
    result->counters.peak_index_bytes =
        std::max(result->counters.peak_index_bytes, index_bytes);

    PeelerOptions peel_options;
    peel_options.track_per_edge_updates = options.track_per_edge_updates;
    peel_options.frozen.resize(m);
    for (EdgeId e = 0; e < m; ++e) {
      peel_options.frozen[e] = assigned[e] || !included[e];
    }
    PeelCounters counters;
    counters.per_edge_updates = std::move(result->counters.per_edge_updates);

    std::uint64_t assigned_now = 0;
    Peeler peeler(std::move(index), std::move(sup_sub),
                  std::move(peel_options), &counters);
    const bool completed = peeler.Run(
        Peeler::Mode::kBatchBlooms, options.deadline,
        [&](EdgeId e, SupportT level) {
          // Every candidate edge sits in the theta-bitruss, so the peel
          // level provably reaches theta; the guard is defensive only.
          if (level >= theta) {
            result->phi[e] = level;
            assigned[e] = 1;
            ++assigned_now;
          }
        });
    result->counters.support_updates += counters.support_updates;
    result->counters.per_edge_updates = std::move(counters.per_edge_updates);
    result->pc_trace.push_back(
        {theta, candidate_unassigned, assigned_now, index_bytes});
    round_span.Note("candidate_edges",
                    static_cast<double>(candidate_unassigned));
    round_span.Note("assigned", static_cast<double>(assigned_now));
    round_span.Note("index_bytes", static_cast<double>(index_bytes));
    if (!completed) {
      result->timed_out = true;
      break;
    }
    unassigned -= static_cast<EdgeId>(assigned_now);
  }
  result->counters.peeling_seconds = timer.Seconds();
}

}  // namespace

BitrussResult Decompose(const BipartiteGraph& g,
                        const DecomposeOptions& options) {
  BitrussResult result;
  const EdgeId m = g.NumEdges();
  result.phi.assign(m, 0);
  if (options.track_per_edge_updates) {
    result.counters.per_edge_updates.assign(m, 0);
  }

  const unsigned num_threads = ResolveNumThreads(options.parallel);
  std::optional<ThreadPool> owned_pool;
  if (num_threads > 1) owned_pool.emplace(num_threads);
  ThreadPool* pool = owned_pool ? &*owned_pool : nullptr;

  const DecomposeMetrics& metrics = DecomposeMetrics::Get();
  metrics.runs->Inc();

  Timer timer;
  obs::ObsSpan count_span(options.trace, "decompose/count");
  const VertexPriority priority =
      VertexPriority::Compute(g, options.priority_rule);
  const PriorityAdjacency adj(g, priority);
  std::vector<SupportT> sup = CountEdgeSupports(g, adj, pool);
  result.original_support = sup;
  std::uint64_t support_sum = 0;
  for (const SupportT s : sup) support_sum += s;
  result.total_butterflies = support_sum / 4;  // every butterfly has 4 edges
  count_span.Note("butterflies",
                  static_cast<double>(result.total_butterflies));
  count_span.End();
  result.counters.counting_seconds = timer.Seconds();

  switch (options.algorithm) {
    case Algorithm::kBS: {
      timer.Reset();
      PeelBS(g, std::move(sup), options, &result);
      result.counters.peeling_seconds = timer.Seconds();
      break;
    }
    case Algorithm::kBU:
      RunIndexed(g, adj, std::move(sup), Peeler::Mode::kSingle, options, pool,
                 &result);
      break;
    case Algorithm::kBUPlus:
      RunIndexed(g, adj, std::move(sup), Peeler::Mode::kBatchEdges, options,
                 pool, &result);
      break;
    case Algorithm::kBUPlusPlus:
      RunIndexed(g, adj, std::move(sup), Peeler::Mode::kBatchBlooms, options,
                 pool, &result);
      break;
    case Algorithm::kPC:
      RunPC(g, adj, sup, options, pool, &result);
      break;
  }
  metrics.counting_seconds->Observe(result.counters.counting_seconds);
  metrics.peeling_seconds->Observe(result.counters.peeling_seconds);
  return result;
}

}  // namespace bitruss
