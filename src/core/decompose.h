// Bitruss decomposition: Decompose(g, options) with the five algorithm
// variants of Wang et al. (ICDE'20).
//
//   kBS         baseline: peel with direct butterfly re-enumeration on the
//               shrinking graph (no index) — Section III.
//   kBU         BE-Index peeling, one edge at a time — Section IV.
//   kBUPlus     + batch edge processing — Section V-A.
//   kBUPlusPlus + batch bloom processing — Section V-B.
//   kPC         progressive compression: iterate a decreasing support
//               threshold theta; each round rebuilds a compressed BE-Index
//               over the candidate subgraph {e : sup_G(e) >= theta} with
//               already-assigned edges folded away, peels it, and fixes
//               phi for edges whose peel level reaches theta — Section V-C.
//               `tau` sets the fraction of edges targeted per round
//               (tau = 1 degenerates to a single full round).
//
// cohesion/ab_core.h wraps this entry point as DecomposeWithCorePruning():
// an exact (2,2)-core pre-prune in front of any of the variants above.

#ifndef BITRUSS_CORE_DECOMPOSE_H_
#define BITRUSS_CORE_DECOMPOSE_H_

#include "core/bitruss_result.h"
#include "graph/bipartite_graph.h"
#include "graph/vertex_priority.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace bitruss {

enum class Algorithm {
  kBS,
  kBU,
  kBUPlus,
  kBUPlusPlus,
  kPC,
};

struct DecomposeOptions {
  Algorithm algorithm = Algorithm::kBUPlusPlus;
  /// BiT-PC: target fraction of edges added to the candidate per iteration.
  double tau = 0.02;
  /// Abort knob; expired runs return partial phi with timed_out set.
  Deadline deadline;
  /// Fill UpdateCounters::per_edge_updates (costs one u64 per edge).
  bool track_per_edge_updates = false;
  /// Vertex ordering; any total order is correct (kIdOnly is for ablation).
  PriorityRule priority_rule = PriorityRule::kDegreeThenId;
  /// Thread count for support counting, BE-Index construction and BiT-PC's
  /// cascade recount passes (peeling itself stays sequential here; see
  /// core/parallel_peel.h for the parallel peeler).  Results are
  /// bit-identical at every thread count.
  ParallelOptions parallel;
  /// Optional phase tracing: counting / index build / peel (and, for kPC,
  /// one span per theta round) are recorded as spans.  Null disables
  /// tracing at zero cost.
  obs::TraceRecorder* trace = nullptr;
};

BitrussResult Decompose(const BipartiteGraph& g,
                        const DecomposeOptions& options = {});

}  // namespace bitruss

#endif  // BITRUSS_CORE_DECOMPOSE_H_
