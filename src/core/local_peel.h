// Warm-start local re-peeling: repairs bitruss numbers around a dirty
// frontier instead of re-running a full decomposition.
//
// Theory.  Bitruss numbers admit a local fixpoint characterization (the
// nucleus-decomposition analogue of the k-core h-index iteration): define
// the operator
//
//   H_L(e) = max k such that e lies in >= k butterflies whose three OTHER
//            edges f all have L(f) >= k
//
// Then phi is the greatest fixpoint of L <- min(L, H_L): for any fixpoint
// L, the edge set S_k = {e : L(e) >= k} has every edge in >= k butterflies
// inside S_k, so S_k is contained in the k-bitruss and L <= phi; and phi
// itself is a fixpoint.  Iterating L <- min(L, H_L) from ANY pointwise
// upper bound of phi therefore converges monotonically down to exactly phi.
//
// Locality.  The iteration only needs to visit edges whose label can still
// move.  LocalHIndexRepair runs the worklist over a dirty frontier with
// every label outside the (transitively pushed) region treated as exact
// and frozen: when an edge's label drops, only butterfly partners whose
// label exceeds the new value — and which the caller's `is_mutable`
// predicate admits — are (re)queued.  The caller is responsible for two
// preconditions that make the result exact (incremental_bitruss.cc derives
// both from provable affected bands):
//
//   1. every label is a pointwise upper bound on the true phi, and
//   2. every edge whose phi differs from its label either sits in the
//      initial frontier or is reachable from it through `is_mutable`
//      butterfly-partner pushes.
//
// Under 1+2 the converged labels equal phi exactly on every visited edge
// and were already exact everywhere else.

#ifndef BITRUSS_CORE_LOCAL_PEEL_H_
#define BITRUSS_CORE_LOCAL_PEEL_H_

#include <algorithm>
#include <cstdint>
#include <deque>
#include <unordered_set>
#include <utility>
#include <vector>

#include "butterfly/wedge_enumeration.h"
#include "graph/types.h"

namespace bitruss {

/// Work accounting for one LocalHIndexRepair run.
struct LocalPeelStats {
  /// Butterflies enumerated across every H recomputation (the budget unit).
  std::uint64_t enumerated_butterflies = 0;
  std::uint64_t recomputes = 0;   ///< worklist pops that recomputed H
  std::uint64_t label_drops = 0;  ///< pops whose label strictly dropped
};

/// h-index of a butterfly weight multiset, capped at `cap`: the largest
/// k <= cap with at least k weights >= k.  `bucket` is caller-owned
/// scratch (resized to cap + 1).
inline SupportT HIndexOfWeights(const std::vector<SupportT>& weights,
                                SupportT cap,
                                std::vector<std::uint32_t>* bucket) {
  if (cap == 0 || weights.empty()) return 0;
  bucket->assign(static_cast<std::size_t>(cap) + 1, 0);
  for (const SupportT w : weights) ++(*bucket)[std::min(w, cap)];
  std::uint64_t at_or_above = 0;
  for (SupportT k = cap; k > 0; --k) {
    at_or_above += (*bucket)[k];
    if (at_or_above >= k) return k;
  }
  return 0;
}

/// Caller-owned scratch for LocalHIndexRepair so a streaming caller (one
/// repair per update) pays no per-call container allocations; contents
/// are reset by each run.
struct LocalPeelScratch {
  std::unordered_set<EdgeId> queued;
  std::deque<EdgeId> work;
  std::vector<SupportT> weights;
  std::vector<EdgeId> partners;
  std::vector<std::uint32_t> bucket;
};

/// Runs the worklist iteration described above.  `labels` is indexed by
/// edge id of `adj` (an AdjT per wedge_enumeration.h that additionally
/// exposes EdgeUpper/EdgeLower); `frontier` must be duplicate-free.
/// Stops and returns false once more than `budget` butterflies have been
/// enumerated — labels are then part-way down and the caller must fall
/// back to a full recompute of the affected region.  When `entry_labels`
/// is non-null, every edge receives an (edge, label-at-first-enqueue)
/// record; re-enqueued edges append again, so the FIRST occurrence per
/// edge is the label the repair started from.
template <typename AdjT, typename MutableFn>
bool LocalHIndexRepair(
    const AdjT& adj, std::vector<SupportT>& labels,
    const std::vector<EdgeId>& frontier, MutableFn&& is_mutable,
    std::uint64_t budget, LocalPeelStats* stats, LocalPeelScratch* scratch,
    std::vector<std::pair<EdgeId, SupportT>>* entry_labels = nullptr) {
  std::unordered_set<EdgeId>& queued = scratch->queued;
  std::deque<EdgeId>& work = scratch->work;
  queued.clear();
  work.clear();
  queued.insert(frontier.begin(), frontier.end());
  work.insert(work.end(), frontier.begin(), frontier.end());
  if (entry_labels != nullptr) {
    for (const EdgeId e : frontier) entry_labels->emplace_back(e, labels[e]);
  }

  std::vector<SupportT>& weights = scratch->weights;
  std::vector<EdgeId>& partners = scratch->partners;
  std::vector<std::uint32_t>& bucket = scratch->bucket;
  while (!work.empty()) {
    const EdgeId e = work.front();
    work.pop_front();
    queued.erase(e);
    const SupportT cap = labels[e];
    if (cap == 0) continue;  // labels never drop below zero

    weights.clear();
    partners.clear();
    stats->enumerated_butterflies += internal::CollectButterflyWeights(
        adj, adj.EdgeUpper(e), adj.EdgeLower(e),
        [&](EdgeId f) { return labels[f]; }, cap, &weights, &partners);
    ++stats->recomputes;
    const SupportT h = HIndexOfWeights(weights, cap, &bucket);
    if (h < cap) {
      labels[e] = h;
      ++stats->label_drops;
      // Partners at or below h count e's butterflies with weight >= their
      // own level either way; only labels above h can be invalidated.
      for (const EdgeId g : partners) {
        if (labels[g] > h && is_mutable(g) && queued.insert(g).second) {
          work.push_back(g);
          if (entry_labels != nullptr) {
            entry_labels->emplace_back(g, labels[g]);
          }
        }
      }
    }
    if (stats->enumerated_butterflies > budget) return false;
  }
  return true;
}

}  // namespace bitruss

#endif  // BITRUSS_CORE_LOCAL_PEEL_H_
