#include "core/parallel_peel.h"

#include <algorithm>
#include <atomic>
#include <cassert>

#include "butterfly/butterfly_counting.h"
#include "graph/vertex_priority.h"
#include "obs/metrics.h"

namespace bitruss {

namespace {

// Round/frontier telemetry for the parallel peeler.  Rounds and merged
// deltas accumulate locally and flush once per run; the frontier histogram
// pays one Observe per round (rounds are few compared to edges).
struct ParallelPeelMetrics {
  obs::Counter* rounds;
  obs::Counter* deltas_merged;
  obs::Histogram* frontier_edges;

  static const ParallelPeelMetrics& Get() {
    static const ParallelPeelMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Default();
      return ParallelPeelMetrics{
          registry.GetCounter("bitruss_core_parallel_peel_rounds_total"),
          registry.GetCounter("bitruss_core_peel_deltas_merged_total"),
          registry.GetHistogram("bitruss_core_peel_frontier_edges",
                                obs::ExponentialBuckets(1.0, 4.0, 12)),
      };
    }();
    return metrics;
  }
};

// Frontier edges processed per deadline poll inside an enumeration chunk.
constexpr std::uint64_t kEdgesPerPoll = 64;
// Below this frontier size a round runs inline on the calling thread — the
// dispatch handshake would cost more than the enumeration.  Both paths
// compute identical deltas, so the cutoff never changes results.
constexpr std::uint64_t kMinFrontierForDispatch = 64;

// Per-thread peeling scratch, allocated lazily on first use and reused
// across rounds.  `delta[e]` accumulates this round's support losses for
// surviving edge e; `touched` lists the edges with delta > 0 so the merge
// and the reset both cost O(touched), not O(m).
struct PeelScratch {
  std::vector<SupportT> delta;
  std::vector<EdgeId> touched;
  std::vector<std::uint64_t> stamp;
  std::vector<EdgeId> stamp_edge;
  std::uint64_t epoch = 0;
  std::uint64_t updates = 0;

  bool Prepared() const { return !stamp.empty(); }
  void Prepare(EdgeId m, VertexId n) {
    delta.assign(m, 0);
    touched.reserve(1024);
    stamp.assign(n, 0);
    stamp_edge.assign(n, kInvalidEdge);
  }
};

}  // namespace

BitrussResult DecomposeParallelPeel(const BipartiteGraph& g,
                                    const ParallelPeelOptions& options) {
  BitrussResult result;
  const EdgeId m = g.NumEdges();
  const VertexId n = g.NumVertices();
  result.phi.assign(m, 0);
  if (m == 0) return result;

  const unsigned num_threads = ResolveNumThreads({options.num_threads});
  ThreadPool pool(num_threads);

  // Phase 1: parallel exact support counting (bit-identical to the
  // sequential BFC-VP count; anchor chunks poll the deadline).
  Timer timer;
  obs::ObsSpan count_span(options.trace, "parallel_peel/count");
  std::vector<SupportT> sup;
  {
    const VertexPriority priority = VertexPriority::Compute(g);
    const PriorityAdjacency adj(g, priority);
    bool expired = false;
    sup = CountEdgeSupports(g, adj, &pool, options.deadline, &expired);
    if (expired) {
      result.timed_out = true;
      return result;
    }
  }
  std::uint64_t support_sum = 0;
  for (const SupportT s : sup) support_sum += s;
  result.total_butterflies = support_sum / 4;  // every butterfly has 4 edges
  result.original_support = sup;
  count_span.Note("butterflies", static_cast<double>(result.total_butterflies));
  count_span.End();
  result.counters.counting_seconds = timer.Seconds();
  timer.Reset();

  // Phase 2: round-based peeling.  `removed` marks edges peeled in earlier
  // rounds, `dying` the current frontier; both are written only between
  // parallel regions, so enumeration chunks read them race-free.
  std::vector<std::uint8_t> removed(m, 0);
  std::vector<std::uint8_t> dying(m, 0);

  const SupportT max_sup = *std::max_element(sup.begin(), sup.end());
  std::vector<std::vector<EdgeId>> buckets(
      static_cast<std::size_t>(max_sup) + 1);
  for (EdgeId e = 0; e < m; ++e) buckets[sup[e]].push_back(e);

  std::vector<PeelScratch> scratch(num_threads);
  std::vector<EdgeId> frontier;
  std::atomic<bool> abort{false};

  // Enumerates the butterflies of frontier[begin, end) on the surviving
  // graph.  A butterfly is charged to its minimum-id frontier edge, so each
  // lost butterfly decrements each of its surviving edges exactly once
  // across all chunks.
  const auto enumerate_chunk = [&](std::uint64_t begin, std::uint64_t end,
                                   unsigned /*chunk*/, unsigned thread) {
    PeelScratch& s = scratch[thread];
    if (!s.Prepared()) s.Prepare(m, n);
    for (std::uint64_t i = begin; i < end; ++i) {
      if (options.deadline.IsFinite() && i % kEdgesPerPoll == 0) {
        if (abort.load(std::memory_order_relaxed)) return;
        if (options.deadline.Expired()) {
          abort.store(true, std::memory_order_relaxed);
          return;
        }
      }
      const EdgeId e = frontier[i];
      if (sup[e] == 0) continue;  // no surviving butterflies to discount
      const VertexId u = g.EdgeUpper(e);
      const VertexId v = g.EdgeLower(e);
      ++s.epoch;
      for (const auto& [y, ey] : g.Neighbors(u)) {
        if (y != v && !removed[ey]) {
          s.stamp[y] = s.epoch;
          s.stamp_edge[y] = ey;
        }
      }
      for (const auto& [w, ew] : g.Neighbors(v)) {
        if (w == u || removed[ew]) continue;
        for (const auto& [y, ewy] : g.Neighbors(w)) {
          if (y == v || removed[ewy] || s.stamp[y] != s.epoch) continue;
          // Butterfly {u, v, w, y} with edges {e, euy, ew, ewy}.
          const EdgeId euy = s.stamp_edge[y];
          if ((dying[euy] && euy < e) || (dying[ew] && ew < e) ||
              (dying[ewy] && ewy < e)) {
            continue;  // charged to a smaller frontier edge
          }
          for (const EdgeId f : {euy, ew, ewy}) {
            if (!dying[f]) {
              if (s.delta[f]++ == 0) s.touched.push_back(f);
              ++s.updates;
            }
          }
        }
      }
    }
  };

  const ParallelPeelMetrics& metrics = ParallelPeelMetrics::Get();
  obs::ObsSpan peel_span(options.trace, "parallel_peel/peel");
  std::uint64_t rounds = 0;
  std::uint64_t deltas_merged = 0;

  SupportT level = 0;
  std::uint64_t cursor = 0;  // lowest possibly non-empty bucket
  EdgeId remaining = m;
  while (remaining > 0) {
    if (options.deadline.Expired()) {
      result.timed_out = true;
      break;
    }
    while (cursor < buckets.size() && buckets[cursor].empty()) ++cursor;
    if (cursor >= buckets.size()) break;  // defensive; cannot happen
    level = std::max(level, static_cast<SupportT>(cursor));

    // Frontier: every alive edge with sup <= level.  Buckets hold one
    // current entry per alive edge (plus stale ones, skipped by the
    // sup[e] == b check), so draining [cursor, level] collects the set.
    frontier.clear();
    for (std::uint64_t b = cursor; b <= level; ++b) {
      for (const EdgeId e : buckets[b]) {
        if (!removed[e] && !dying[e] && sup[e] == b) {
          dying[e] = 1;
          frontier.push_back(e);
        }
      }
      buckets[b].clear();
    }
    cursor = static_cast<std::uint64_t>(level) + 1;
    if (frontier.empty()) continue;
    ++rounds;
    metrics.frontier_edges->Observe(static_cast<double>(frontier.size()));

    // A frontier edge's support can only keep falling, so the sequential
    // peeler would pop every one of them before the level rises: phi is
    // exactly `level`, and it stays correct even if the deadline expires
    // before the round's updates land.
    for (const EdgeId e : frontier) result.phi[e] = level;

    pool.ParallelForChunks(
        0, frontier.size(),
        frontier.size() < kMinFrontierForDispatch ? 1 : num_threads * 4,
        enumerate_chunk);
    if (abort.load(std::memory_order_relaxed)) {
      result.timed_out = true;
      break;
    }

    // Deterministic merge, sequential over threads: sup(f) ends at its
    // start value minus the total delta, whatever the chunk schedule was.
    for (PeelScratch& s : scratch) {
      deltas_merged += s.touched.size();
      for (const EdgeId f : s.touched) {
        const SupportT d = s.delta[f];
        s.delta[f] = 0;
        assert(!removed[f] && !dying[f] && sup[f] >= d);
        sup[f] = sup[f] >= d ? sup[f] - d : 0;
        buckets[sup[f]].push_back(f);
        if (sup[f] < cursor) cursor = sup[f];
      }
      s.touched.clear();
    }

    for (const EdgeId e : frontier) {
      removed[e] = 1;
      dying[e] = 0;
    }
    remaining -= static_cast<EdgeId>(frontier.size());
  }

  for (const PeelScratch& s : scratch) {
    result.counters.support_updates += s.updates;
  }
  metrics.rounds->Inc(rounds);
  metrics.deltas_merged->Inc(deltas_merged);
  peel_span.Note("rounds", static_cast<double>(rounds));
  peel_span.Note("deltas_merged", static_cast<double>(deltas_merged));
  result.counters.peeling_seconds = timer.Seconds();
  return result;
}

}  // namespace bitruss
