// Round-based parallel bitruss peeling (RECEIPT-style, Lakhotia et al.;
// the ref [26] direction of Wang et al. ICDE'20 Section VI-F).
//
// Instead of the sequential bucket queue popping one minimum-support edge
// at a time, each ROUND removes the whole frontier {e alive : sup(e) <=
// level} simultaneously (level is the running maximum of the minimum alive
// support, exactly the sequential peeler's level variable).  Peeling is
// confluent — supports only decrease, so every frontier edge would have
// been popped at this level by the sequential order too — which makes the
// per-round parallelism exact: phi is bit-identical to Decompose() at
// every thread count.
//
// Within a round, the frontier's butterflies are re-enumerated
// combination-style on the surviving graph (the BiT-BS trade: no index to
// maintain, every round pays enumeration).  A butterfly containing k >= 1
// frontier edges must decrement each of its surviving edges exactly once;
// it is charged to its minimum-id frontier edge, enumerated from that edge
// only, and the per-thread support deltas are merged per edge in a
// deterministic integer sum — no atomics on the hot path.

#ifndef BITRUSS_CORE_PARALLEL_PEEL_H_
#define BITRUSS_CORE_PARALLEL_PEEL_H_

#include "core/bitruss_result.h"
#include "graph/bipartite_graph.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace bitruss {

struct ParallelPeelOptions {
  /// 0 resolves from BITRUSS_NUM_THREADS (default 1); see ResolveNumThreads.
  unsigned num_threads = 0;
  /// Abort knob, polled coarsely by counting chunks and peel rounds; an
  /// expired run returns partial results with timed_out set.  Every phi
  /// value assigned before expiry is the edge's true bitruss number.
  Deadline deadline;
  /// Optional phase tracing (counting and peeling spans, with round and
  /// frontier totals as notes).  Null disables tracing at zero cost.
  obs::TraceRecorder* trace = nullptr;
};

/// Full decomposition via round-based parallel peeling.  phi, supports and
/// the butterfly total are bit-identical to Decompose() at every thread
/// count; counters.support_updates counts per-edge delta applications.
BitrussResult DecomposeParallelPeel(const BipartiteGraph& g,
                                    const ParallelPeelOptions& options = {});

}  // namespace bitruss

#endif  // BITRUSS_CORE_PARALLEL_PEEL_H_
