#include "core/peeling_state.h"

#include <algorithm>

#include "obs/metrics.h"

namespace bitruss {

namespace {
constexpr std::uint32_t kDeadlinePollInterval = 1024;

// One "round" = one assignment step of the peel loop: a successful pop in
// kSingle mode, a drained support level in the batch modes.  Accumulated
// locally and flushed once per Run so the hot loop touches no atomics.
obs::Counter* PeelRoundsCounter() {
  static obs::Counter* const counter =
      obs::MetricsRegistry::Default().GetCounter(
          "bitruss_core_peel_rounds_total");
  return counter;
}
}  // namespace

Peeler::Peeler(BEIndex index, std::vector<SupportT> support,
               PeelerOptions options, PeelCounters* counters)
    : index_(std::move(index)),
      support_(std::move(support)),
      options_(std::move(options)),
      counters_(counters) {
  const EdgeId m = index_.num_edges;
  removed_.assign(m, 0);
  if (options_.track_per_edge_updates &&
      counters_->per_edge_updates.size() < m) {
    counters_->per_edge_updates.assign(m, 0);
  }
  SupportT max_sup = 0;
  for (EdgeId e = 0; e < m; ++e) {
    if (!IsFrozen(e)) max_sup = std::max(max_sup, support_[e]);
  }
  buckets_.assign(static_cast<std::size_t>(max_sup) + 1, {});
  for (EdgeId e = 0; e < m; ++e) {
    if (!IsFrozen(e)) buckets_[support_[e]].push_back(e);
  }
}

void Peeler::ApplyUpdate(EdgeId e, SupportT delta) {
  if (removed_[e] || IsFrozen(e)) return;
  ++counters_->support_updates;
  if (options_.track_per_edge_updates) ++counters_->per_edge_updates[e];
  const SupportT old = support_[e];
  const SupportT now = old > delta ? old - delta : 0;
  if (now == old) return;
  support_[e] = now;
  buckets_[now].push_back(e);
  cursor_ = std::min(cursor_, now);
}

void Peeler::RemoveEdgeWedges(EdgeId e) {
  for (std::uint64_t i = index_.edge_offsets[e]; i < index_.edge_offsets[e + 1];
       ++i) {
    const WedgeId w = index_.edge_wedges[i];
    if (!index_.wedge_alive[w]) continue;
    const BloomId b = index_.wedge_bloom[w];
    const SupportT kb = index_.BloomK(b);
    ApplyUpdate(index_.Twin(w, e), kb - 1);
    const std::uint64_t begin = index_.bloom_offsets[b];
    const std::uint64_t end = begin + index_.bloom_live[b];
    for (std::uint64_t slot = begin; slot < end; ++slot) {
      const WedgeId other = index_.bloom_slots[slot];
      if (other == w) continue;
      ApplyUpdate(index_.wedge_e1[other], 1);
      ApplyUpdate(index_.wedge_e2[other], 1);
    }
    index_.KillWedge(w);
  }
}

void Peeler::ProcessBatchBlooms(const std::vector<EdgeId>& batch) {
  if (wedge_dying_.empty()) {
    wedge_dying_.assign(index_.wedge_e1.size(), 0);
    bloom_dying_.resize(index_.NumBlooms());
  }
  // Collect the batch's dead wedges grouped by bloom (a wedge with both
  // edges in the batch is collected once).
  for (const EdgeId e : batch) {
    for (std::uint64_t i = index_.edge_offsets[e];
         i < index_.edge_offsets[e + 1]; ++i) {
      const WedgeId w = index_.edge_wedges[i];
      if (!index_.wedge_alive[w] || wedge_dying_[w]) continue;
      wedge_dying_[w] = 1;
      const BloomId b = index_.wedge_bloom[w];
      if (bloom_dying_[b].empty()) dirty_blooms_.push_back(b);
      bloom_dying_[b].push_back(w);
    }
  }
  for (const BloomId b : dirty_blooms_) {
    std::vector<WedgeId>& dying = bloom_dying_[b];
    const SupportT kb = index_.BloomK(b);
    const SupportT t = static_cast<SupportT>(dying.size());
    // Surviving twin of each dead wedge loses every butterfly it formed in
    // this bloom: one bulk update of k(B) - 1.
    for (const WedgeId w : dying) {
      const EdgeId e1 = index_.wedge_e1[w];
      const EdgeId e2 = index_.wedge_e2[w];
      if (!removed_[e1]) ApplyUpdate(e1, kb - 1);
      if (!removed_[e2]) ApplyUpdate(e2, kb - 1);
      index_.KillWedge(w);
      wedge_dying_[w] = 0;
    }
    // Each surviving wedge pairs with each of the t dead wedges: one -t
    // update per endpoint.
    const std::uint64_t begin = index_.bloom_offsets[b];
    const std::uint64_t end = begin + index_.bloom_live[b];
    for (std::uint64_t slot = begin; slot < end; ++slot) {
      const WedgeId other = index_.bloom_slots[slot];
      ApplyUpdate(index_.wedge_e1[other], t);
      ApplyUpdate(index_.wedge_e2[other], t);
    }
    dying.clear();
  }
  dirty_blooms_.clear();
}

bool Peeler::Run(Mode mode, const Deadline& deadline,
                 const std::function<void(EdgeId, SupportT)>& on_assign) {
  const EdgeId m = index_.num_edges;
  EdgeId remaining = 0;
  for (EdgeId e = 0; e < m; ++e) remaining += !IsFrozen(e);

  SupportT level = 0;
  std::uint32_t since_poll = 0;
  std::uint64_t rounds = 0;
  std::vector<EdgeId> batch;

  while (remaining > 0) {
    while (cursor_ < buckets_.size() && buckets_[cursor_].empty()) ++cursor_;
    if (cursor_ >= buckets_.size()) break;  // defensive; cannot occur
    if (++since_poll >= kDeadlinePollInterval) {
      since_poll = 0;
      if (deadline.Expired()) {
        if (rounds > 0) PeelRoundsCounter()->Inc(rounds);
        return false;
      }
    }

    if (mode == Mode::kSingle) {
      std::vector<EdgeId>& bucket = buckets_[cursor_];
      const EdgeId e = bucket.back();
      bucket.pop_back();
      if (removed_[e] || support_[e] != cursor_) continue;  // stale entry
      ++rounds;
      level = std::max(level, cursor_);
      removed_[e] = 1;
      --remaining;
      on_assign(e, level);
      RemoveEdgeWedges(e);
      continue;
    }

    // Batch modes: drain every valid edge at the current level first, so
    // all of them are marked removed before any update is applied.
    batch.clear();
    {
      std::vector<EdgeId>& bucket = buckets_[cursor_];
      while (!bucket.empty()) {
        const EdgeId e = bucket.back();
        bucket.pop_back();
        if (removed_[e] || support_[e] != cursor_) continue;
        removed_[e] = 1;
        batch.push_back(e);
      }
    }
    if (batch.empty()) continue;
    ++rounds;
    level = std::max(level, cursor_);
    remaining -= static_cast<EdgeId>(batch.size());
    for (const EdgeId e : batch) on_assign(e, level);
    if (mode == Mode::kBatchEdges) {
      for (const EdgeId e : batch) RemoveEdgeWedges(e);
    } else {
      ProcessBatchBlooms(batch);
    }
    // One outer iteration consumed a whole support level here; advance the
    // poll counter by the real work done so the deadline stays responsive
    // even when the peel spans few levels.
    since_poll += static_cast<std::uint32_t>(
        std::min<std::size_t>(batch.size(), kDeadlinePollInterval));
  }
  if (rounds > 0) PeelRoundsCounter()->Inc(rounds);
  return true;
}

}  // namespace bitruss
