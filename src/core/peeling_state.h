// Bottom-up peeling over the BE-Index (Algorithms BiT-BU / BiT-BU+ /
// BiT-BU++ of Wang et al., ICDE'20).
//
// The peeler owns a bucket queue keyed by current support and repeatedly
// removes minimum-support edges, assigning phi(e) = max level reached so
// far.  Removal updates follow Lemma 5 through the index:
//
//   kSingle      one edge at a time (BiT-BU).
//   kBatchEdges  removes the whole current support level as a batch and
//                skips updates targeting in-batch edges (BiT-BU+,
//                "batch edge processing").
//   kBatchBlooms additionally groups the batch's dead wedges by bloom and
//                applies per-bloom aggregate updates: each surviving twin
//                of a dead wedge gets one -(k(B)-1) update, each surviving
//                wedge endpoint one -t update, where t is the number of
//                wedges the bloom lost (BiT-BU++, "batch bloom
//                processing").  Results are identical; only the number of
//                update operations shrinks.
//
// Frozen edges (BiT-PC's assigned or out-of-candidate edges) are never
// enqueued, never popped, and never updated; updates that would land on
// them are skipped without being counted — that skip is exactly the
// progressive-compression saving.

#ifndef BITRUSS_CORE_PEELING_STATE_H_
#define BITRUSS_CORE_PEELING_STATE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/be_index_builder.h"
#include "graph/types.h"
#include "util/timer.h"

namespace bitruss {

struct PeelCounters {
  std::uint64_t support_updates = 0;
  /// Updates received per edge; sized on demand when tracking is enabled.
  std::vector<std::uint64_t> per_edge_updates;
};

struct PeelerOptions {
  /// Edges excluded from peeling (never popped, never updated).  Empty
  /// means none.
  std::vector<std::uint8_t> frozen;
  bool track_per_edge_updates = false;
};

class Peeler {
 public:
  enum class Mode {
    kSingle,       ///< BiT-BU
    kBatchEdges,   ///< BiT-BU+
    kBatchBlooms,  ///< BiT-BU++
  };

  Peeler(BEIndex index, std::vector<SupportT> support, PeelerOptions options,
         PeelCounters* counters);

  /// Peels every non-frozen edge, invoking on_assign(e, phi) as each edge's
  /// bitruss number is fixed.  Returns false if the deadline expired before
  /// completion (the remaining edges keep their current state).
  bool Run(Mode mode, const Deadline& deadline,
           const std::function<void(EdgeId, SupportT)>& on_assign);

  const std::vector<std::uint8_t>& removed() const { return removed_; }
  const std::vector<SupportT>& support() const { return support_; }

 private:
  bool IsFrozen(EdgeId e) const {
    return !options_.frozen.empty() && options_.frozen[e];
  }
  void ApplyUpdate(EdgeId e, SupportT delta);
  void RemoveEdgeWedges(EdgeId e);
  void ProcessBatchBlooms(const std::vector<EdgeId>& batch);

  BEIndex index_;
  std::vector<SupportT> support_;
  PeelerOptions options_;
  PeelCounters* counters_;

  std::vector<std::uint8_t> removed_;
  std::vector<std::vector<EdgeId>> buckets_;
  SupportT cursor_ = 0;  ///< lowest possibly non-empty bucket

  // Scratch for kBatchBlooms.
  std::vector<std::uint8_t> wedge_dying_;
  std::vector<BloomId> dirty_blooms_;
  std::vector<std::vector<WedgeId>> bloom_dying_;  // indexed by bloom id
};

}  // namespace bitruss

#endif  // BITRUSS_CORE_PEELING_STATE_H_
