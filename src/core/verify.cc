#include "core/verify.h"

#include <algorithm>
#include <set>

#include "butterfly/butterfly_counting.h"
#include "graph/subgraph.h"

namespace bitruss {

std::vector<std::uint8_t> KBitrussEdges(const BipartiteGraph& g, SupportT k) {
  std::vector<std::uint8_t> alive(g.NumEdges(), 1);
  if (k == 0) return alive;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<EdgeId> origin;
    const BipartiteGraph sub = EdgeMaskSubgraph(g, alive, &origin);
    const std::vector<SupportT> sup = CountEdgeSupports(sub);
    for (EdgeId se = 0; se < sub.NumEdges(); ++se) {
      if (sup[se] < k) {
        alive[origin[se]] = 0;
        changed = true;
      }
    }
  }
  return alive;
}

bool VerifyBitrussNumbers(const BipartiteGraph& g,
                          const std::vector<SupportT>& phi,
                          std::string* error) {
  const auto fail = [&](const std::string& why) {
    if (error != nullptr) *error = why;
    return false;
  };
  if (phi.size() != g.NumEdges()) {
    return fail("phi has " + std::to_string(phi.size()) + " entries, graph has " +
                std::to_string(g.NumEdges()) + " edges");
  }
  std::set<SupportT> levels(phi.begin(), phi.end());
  const SupportT max_phi = levels.empty() ? 0 : *levels.rbegin();
  levels.insert(max_phi + 1);  // nothing may survive above the claimed max
  for (const SupportT k : levels) {
    if (k == 0) continue;
    const std::vector<std::uint8_t> in_bitruss = KBitrussEdges(g, k);
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      const bool claimed = phi[e] >= k;
      if (claimed != static_cast<bool>(in_bitruss[e])) {
        return fail("edge " + std::to_string(e) + ": phi=" +
                    std::to_string(phi[e]) + " but k-bitruss membership for k=" +
                    std::to_string(k) + " is " +
                    (in_bitruss[e] ? "true" : "false"));
      }
    }
  }
  if (error != nullptr) error->clear();
  return true;
}

}  // namespace bitruss
