// Independent verification of bitruss numbers.
//
// Works from the definition, not from any decomposition machinery: for
// every distinct k, the k-bitruss of g (computed by cascade deletion of
// edges with sub-k support) must equal {e : phi(e) >= k}.  Cost is one
// cascade per distinct phi value — intended for tests and spot checks, not
// for production paths.

#ifndef BITRUSS_CORE_VERIFY_H_
#define BITRUSS_CORE_VERIFY_H_

#include <string>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/types.h"

namespace bitruss {

/// True iff `phi` is exactly the bitruss decomposition of g.  On failure,
/// `error` (when non-null) receives a human-readable reason.
bool VerifyBitrussNumbers(const BipartiteGraph& g,
                          const std::vector<SupportT>& phi,
                          std::string* error = nullptr);

/// Maximal subgraph of g in which every edge is contained in at least k
/// butterflies, as an edge mask (the k-bitruss; the whole graph for k = 0).
std::vector<std::uint8_t> KBitrussEdges(const BipartiteGraph& g, SupportT k);

}  // namespace bitruss

#endif  // BITRUSS_CORE_VERIFY_H_
