#include "dynamic/dynamic_graph.h"

#include <algorithm>
#include <cassert>

#include "butterfly/butterfly_counting.h"
#include "butterfly/wedge_enumeration.h"

namespace bitruss {

DynamicBipartiteGraph::DynamicBipartiteGraph(const BipartiteGraph& seed)
    : num_upper_(seed.NumUpper()),
      num_lower_(seed.NumLower()),
      num_live_(seed.NumEdges()),
      adj_(seed.NumVertices()) {
  const std::vector<SupportT> sup = CountEdgeSupports(seed);
  slots_.resize(seed.NumEdges());
  edge_index_.reserve(seed.NumEdges());
  std::uint64_t support_sum = 0;
  for (EdgeId e = 0; e < seed.NumEdges(); ++e) {
    const VertexId u = seed.EdgeUpper(e);
    const VertexId v = seed.EdgeLower(e);
    slots_[e] = {u, v, static_cast<std::uint32_t>(adj_[u].size()),
                 static_cast<std::uint32_t>(adj_[v].size()), sup[e]};
    adj_[u].push_back({v, e});
    adj_[v].push_back({u, e});
    edge_index_.emplace(PairKey(u, v), e);
    support_sum += sup[e];
  }
  // Every butterfly contributes +1 support to each of its four edges.
  num_butterflies_ = support_sum / 4;
}

EdgeId DynamicBipartiteGraph::FindEdge(VertexId a, VertexId b) const {
  const std::uint64_t key = a < num_upper_ ? PairKey(a, b) : PairKey(b, a);
  const auto it = edge_index_.find(key);
  return it == edge_index_.end() ? kInvalidEdge : it->second;
}

StatusOr<EdgeId> DynamicBipartiteGraph::InsertEdge(VertexId upper_local,
                                                   VertexId lower_local,
                                                   UpdateDelta* delta) {
  if (upper_local >= num_upper_ || lower_local >= num_lower_) {
    return InvalidArgumentError("InsertEdge: endpoint out of range");
  }
  const VertexId u = upper_local;
  const VertexId v = num_upper_ + lower_local;
  const std::uint64_t key = PairKey(u, v);
  if (edge_index_.count(key) != 0) {
    return AlreadyExistsError("InsertEdge: edge already present");
  }
  if (delta != nullptr) delta->Clear();

  // New butterflies are exactly those through (u, v); each adds +1 support
  // to its three pre-existing edges, and the new edge collects the total.
  std::uint64_t found = 0;
  internal::ForEachButterflyThroughEdge(
      *this, u, v, [&](EdgeId e1, EdgeId e2, EdgeId e3) {
        ++found;
        slots_[e1].support = internal::SaturatingIncrement(slots_[e1].support);
        slots_[e2].support = internal::SaturatingIncrement(slots_[e2].support);
        slots_[e3].support = internal::SaturatingIncrement(slots_[e3].support);
        if (delta != nullptr) {
          delta->touched.push_back(e1);
          delta->touched.push_back(e2);
          delta->touched.push_back(e3);
        }
      });
  num_butterflies_ += found;
  if (delta != nullptr) delta->butterflies = found;

  EdgeId e;
  if (!free_slots_.empty()) {
    e = free_slots_.back();
    free_slots_.pop_back();
  } else {
    e = static_cast<EdgeId>(slots_.size());
    slots_.emplace_back();
  }
  slots_[e] = {u, v, static_cast<std::uint32_t>(adj_[u].size()),
               static_cast<std::uint32_t>(adj_[v].size()),
               internal::SaturatingSupportCast(found)};
  adj_[u].push_back({v, e});
  adj_[v].push_back({u, e});
  edge_index_.emplace(key, e);
  ++num_live_;
  return e;
}

Status DynamicBipartiteGraph::DeleteEdge(EdgeId e, UpdateDelta* delta) {
  if (!IsLive(e)) {
    return NotFoundError("DeleteEdge: no live edge in this slot");
  }
  if (delta != nullptr) delta->Clear();
  EdgeSlot& slot = slots_[e];
  const VertexId u = slot.upper;
  const VertexId v = slot.lower;

  // The edge is still present; its own adjacency entries are skipped by the
  // enumeration, so only the three OTHER edges of each lost butterfly get
  // the -1 delta.  A support-0 edge is in no butterfly, so the wedge walk
  // would find nothing — skip it.
  if (slot.support != 0) {
    std::uint64_t found = 0;
    internal::ForEachButterflyThroughEdge(
        *this, u, v, [&](EdgeId e1, EdgeId e2, EdgeId e3) {
          ++found;
          slots_[e1].support =
              internal::SaturatingDecrement(slots_[e1].support);
          slots_[e2].support =
              internal::SaturatingDecrement(slots_[e2].support);
          slots_[e3].support =
              internal::SaturatingDecrement(slots_[e3].support);
          if (delta != nullptr) {
            delta->touched.push_back(e1);
            delta->touched.push_back(e2);
            delta->touched.push_back(e3);
          }
        });
    assert(found == slot.support);
    num_butterflies_ -= found;
    if (delta != nullptr) delta->butterflies = found;
  }

  RemoveAdjEntry(u, slot.upper_pos);
  RemoveAdjEntry(v, slot.lower_pos);
  edge_index_.erase(PairKey(u, v));
  slot = EdgeSlot{};  // upper == kInvalidVertex marks the slot free
  free_slots_.push_back(e);
  --num_live_;
  return OkStatus();
}

void DynamicBipartiteGraph::RemoveAdjEntry(VertexId v, std::uint32_t pos) {
  std::vector<Entry>& list = adj_[v];
  if (pos + 1 != list.size()) {
    const Entry moved = list.back();
    list[pos] = moved;
    EdgeSlot& ms = slots_[moved.edge];
    if (ms.upper == v) {
      ms.upper_pos = pos;
    } else {
      ms.lower_pos = pos;
    }
  }
  list.pop_back();
}

std::vector<EdgeId> DynamicBipartiteGraph::CompactSlots() {
  const EdgeId old_slots = NumSlots();
  std::vector<EdgeId> mapping(old_slots, kInvalidEdge);
  EdgeId next = 0;
  for (EdgeId e = 0; e < old_slots; ++e) {
    if (IsLive(e)) mapping[e] = next++;
  }
  free_slots_.clear();
  free_slots_.shrink_to_fit();
  if (next == old_slots) return mapping;  // already compact

  // The mapping is monotone, so live slots move strictly downward and a
  // single forward pass relocates them in place.
  for (EdgeId e = 0; e < old_slots; ++e) {
    if (mapping[e] != kInvalidEdge && mapping[e] != e) {
      slots_[mapping[e]] = slots_[e];
    }
  }
  slots_.resize(next);
  slots_.shrink_to_fit();
  for (std::vector<Entry>& list : adj_) {
    for (Entry& entry : list) entry.edge = mapping[entry.edge];
  }
  for (auto& [key, slot] : edge_index_) slot = mapping[slot];
  return mapping;
}

GraphSnapshot DynamicBipartiteGraph::Snapshot() const {
  // Live edges in lexicographic (upper, lower) order so the CSR ids match
  // BipartiteGraph's documented edge-id invariant.
  struct Row {
    VertexId upper_local, lower_local;
    EdgeId slot;
  };
  std::vector<Row> rows;
  rows.reserve(num_live_);
  for (EdgeId e = 0; e < NumSlots(); ++e) {
    if (IsLive(e)) {
      rows.push_back({slots_[e].upper, slots_[e].lower - num_upper_, e});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.upper_local != b.upper_local ? a.upper_local < b.upper_local
                                          : a.lower_local < b.lower_local;
  });

  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(rows.size());
  GraphSnapshot snapshot;
  snapshot.slot_of_edge.reserve(rows.size());
  snapshot.supports.reserve(rows.size());
  for (const Row& row : rows) {
    pairs.emplace_back(row.upper_local, row.lower_local);
    snapshot.slot_of_edge.push_back(row.slot);
    snapshot.supports.push_back(slots_[row.slot].support);
  }
  snapshot.graph = BipartiteGraph(num_upper_, num_lower_, std::move(pairs));
  return snapshot;
}

DynamicGraphState DynamicBipartiteGraph::ExportState() const {
  DynamicGraphState state;
  state.num_upper = num_upper_;
  state.num_lower = num_lower_;
  state.num_butterflies = num_butterflies_;
  state.upper.reserve(slots_.size());
  state.lower.reserve(slots_.size());
  state.support.reserve(slots_.size());
  for (const EdgeSlot& slot : slots_) {
    state.upper.push_back(slot.upper);
    state.lower.push_back(slot.lower);
    state.support.push_back(slot.support);
  }
  state.free_slots = free_slots_;
  return state;
}

StatusOr<DynamicBipartiteGraph> DynamicBipartiteGraph::FromState(
    const DynamicGraphState& state) {
  const std::size_t num_slots = state.upper.size();
  if (state.lower.size() != num_slots || state.support.size() != num_slots) {
    return DataLossError("graph state: slot arrays disagree in length");
  }
  if (static_cast<std::uint64_t>(state.num_upper) + state.num_lower >=
      kInvalidVertex) {
    return DataLossError("graph state: vertex counts overflow the id space");
  }
  DynamicBipartiteGraph graph;
  graph.num_upper_ = state.num_upper;
  graph.num_lower_ = state.num_lower;
  graph.adj_.assign(graph.NumVertices(), {});
  graph.slots_.resize(num_slots);
  graph.edge_index_.reserve(num_slots);

  std::vector<char> is_free(num_slots, 0);
  std::uint64_t support_sum = 0;
  EdgeId live = 0;
  for (std::size_t s = 0; s < num_slots; ++s) {
    const VertexId u = state.upper[s];
    const VertexId v = state.lower[s];
    if (u == kInvalidVertex) {
      if (v != kInvalidVertex || state.support[s] != 0) {
        return DataLossError("graph state: malformed free slot");
      }
      is_free[s] = 1;
      continue;  // slots_[s] default-constructed == free
    }
    if (u >= state.num_upper || v < state.num_upper ||
        v >= state.num_upper + state.num_lower) {
      return DataLossError("graph state: edge endpoint out of range");
    }
    if (!graph.edge_index_.emplace(PairKey(u, v), static_cast<EdgeId>(s))
             .second) {
      return DataLossError("graph state: duplicate edge");
    }
    graph.slots_[s] = {u, v, static_cast<std::uint32_t>(graph.adj_[u].size()),
                       static_cast<std::uint32_t>(graph.adj_[v].size()),
                       state.support[s]};
    graph.adj_[u].push_back({v, static_cast<EdgeId>(s)});
    graph.adj_[v].push_back({u, static_cast<EdgeId>(s)});
    support_sum += state.support[s];
    ++live;
  }
  // Every butterfly contributes +1 support to each of its four edges.
  if (support_sum != 4 * state.num_butterflies) {
    return DataLossError(
        "graph state: support sum disagrees with butterfly count");
  }
  if (state.free_slots.size() != num_slots - live) {
    return DataLossError("graph state: free-slot stack size mismatch");
  }
  std::vector<char> seen(num_slots, 0);
  for (const EdgeId s : state.free_slots) {
    if (s >= num_slots || is_free[s] == 0 || seen[s] != 0) {
      return DataLossError("graph state: free-slot stack inconsistent");
    }
    seen[s] = 1;
  }
  graph.free_slots_ = state.free_slots;
  graph.num_live_ = live;
  graph.num_butterflies_ = state.num_butterflies;
  return graph;
}

std::uint64_t DynamicBipartiteGraph::MemoryBytes() const {
  std::uint64_t adjacency = 0;
  for (const std::vector<Entry>& list : adj_) {
    adjacency += list.capacity() * sizeof(Entry);
  }
  // Hash index estimate: nodes (key, value, next pointer) + bucket array.
  const std::uint64_t index =
      edge_index_.size() *
          (sizeof(std::uint64_t) + sizeof(EdgeId) + sizeof(void*)) +
      edge_index_.bucket_count() * sizeof(void*);
  return sizeof(*this) + adjacency + slots_.capacity() * sizeof(EdgeSlot) +
         free_slots_.capacity() * sizeof(EdgeId) + index;
}

}  // namespace bitruss
