// Mutable bipartite graph with incrementally maintained butterfly supports.
//
// `DynamicBipartiteGraph` wraps a seed `BipartiteGraph` in hashed adjacency
// (per-vertex neighbor vectors + a pair->edge hash index) so edges can be
// inserted and deleted between decomposition runs without recounting the
// whole graph: each update enumerates only the butterflies through the
// touched edge (internal::ForEachButterflyThroughEdge) and applies the
// ±1 support delta to the O(affected) edges.  Aggregate counters — live
// edge count and exact total butterflies — are maintained across the
// stream.
//
// Edge ids are stable SLOT ids: the seed's edges keep their CSR EdgeIds,
// inserts reuse freed slots (free list) before growing, and a deleted
// slot's id stays invalid until reused.  `Snapshot()` compacts the live
// edges back to an immutable CSR `BipartiteGraph` (whose ids follow the
// lexicographic invariant documented in graph/bipartite_graph.h) together
// with the snapshot-id -> slot-id mapping and the maintained supports in
// snapshot order, so a mutated graph feeds straight into `Decompose()` /
// `BuildBEIndex()`.
//
// Vertex ids use the same one global space as BipartiteGraph: upper in
// [0, NumUpper()), lower in [NumUpper(), NumUpper() + NumLower()).  The
// vertex sets are fixed at seeding; mutation APIs take side-local indices
// like the BipartiteGraph constructor and return Status/StatusOr
// (util/status.h) instead of throwing — duplicate inserts and unknown
// deletes are routine stream events, not contract violations.

#ifndef BITRUSS_DYNAMIC_DYNAMIC_GRAPH_H_
#define BITRUSS_DYNAMIC_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace bitruss {

/// Compaction of a DynamicBipartiteGraph back to immutable CSR.
struct GraphSnapshot {
  BipartiteGraph graph;
  /// Snapshot EdgeId -> dynamic slot id (size graph.NumEdges()).
  std::vector<EdgeId> slot_of_edge;
  /// Maintained butterfly supports reindexed to snapshot edge ids.
  std::vector<SupportT> supports;
};

class DynamicBipartiteGraph {
 public:
  struct Entry {
    VertexId neighbor;  ///< global vertex id of the other endpoint
    EdgeId edge;        ///< slot id
  };

  /// Seeds from a static graph: copies its adjacency, keeps its EdgeIds as
  /// the initial slot ids, and runs one exact counting pass for the
  /// starting supports.
  explicit DynamicBipartiteGraph(const BipartiteGraph& seed);

  VertexId NumUpper() const { return num_upper_; }
  VertexId NumLower() const { return num_lower_; }
  VertexId NumVertices() const { return num_upper_ + num_lower_; }
  /// Live edges (seed edges + inserts - deletes).
  EdgeId NumEdges() const { return num_live_; }
  /// Upper bound over slot ids; slots in [0, NumSlots()) may be free.
  EdgeId NumSlots() const { return static_cast<EdgeId>(slots_.size()); }
  /// Exact butterfly count, maintained across every update.
  std::uint64_t NumButterflies() const { return num_butterflies_; }

  /// Inserts the edge (upper_local, lower_local), updating the supports of
  /// every edge that gains a butterfly.  Returns the assigned slot id;
  /// kInvalidArgument for out-of-range endpoints, kAlreadyExists if the
  /// edge is present.
  StatusOr<EdgeId> InsertEdge(VertexId upper_local, VertexId lower_local);

  /// Deletes the edge in slot `e`, updating the supports of every edge
  /// that loses a butterfly.  kNotFound if `e` is out of range or free.
  Status DeleteEdge(EdgeId e);

  bool IsLive(EdgeId e) const {
    return e < slots_.size() && slots_[e].upper != kInvalidVertex;
  }
  /// Endpoints as global vertex ids; requires IsLive(e).
  VertexId EdgeUpper(EdgeId e) const { return slots_[e].upper; }
  VertexId EdgeLower(EdgeId e) const { return slots_[e].lower; }
  /// Maintained butterfly support of a live edge.
  SupportT Support(EdgeId e) const { return slots_[e].support; }

  VertexId Degree(VertexId v) const {
    return static_cast<VertexId>(adj_[v].size());
  }
  const std::vector<Entry>& Neighbors(VertexId v) const { return adj_[v]; }

  /// Slot id of the edge between global vertices a and b (either order),
  /// or kInvalidEdge if absent.
  EdgeId FindEdge(VertexId a, VertexId b) const;

  /// Compacts the live edges to CSR; see GraphSnapshot.
  GraphSnapshot Snapshot() const;

  std::uint64_t MemoryBytes() const;

 private:
  struct EdgeSlot {
    VertexId upper = kInvalidVertex;  ///< kInvalidVertex marks a free slot
    VertexId lower = kInvalidVertex;
    std::uint32_t upper_pos = 0;  ///< index of this edge in adj_[upper]
    std::uint32_t lower_pos = 0;  ///< index of this edge in adj_[lower]
    SupportT support = 0;
  };

  static std::uint64_t PairKey(VertexId upper, VertexId lower) {
    return (static_cast<std::uint64_t>(upper) << 32) | lower;
  }

  /// Swap-pop removal of adj_[v][pos], fixing the moved entry's slot.
  void RemoveAdjEntry(VertexId v, std::uint32_t pos);

  VertexId num_upper_ = 0;
  VertexId num_lower_ = 0;
  EdgeId num_live_ = 0;
  std::uint64_t num_butterflies_ = 0;
  std::vector<std::vector<Entry>> adj_;  // size NumVertices()
  std::vector<EdgeSlot> slots_;
  std::vector<EdgeId> free_slots_;
  std::unordered_map<std::uint64_t, EdgeId> edge_index_;  // PairKey -> slot
};

}  // namespace bitruss

#endif  // BITRUSS_DYNAMIC_DYNAMIC_GRAPH_H_
