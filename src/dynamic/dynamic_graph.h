// Mutable bipartite graph with incrementally maintained butterfly supports.
//
// `DynamicBipartiteGraph` wraps a seed `BipartiteGraph` in hashed adjacency
// (per-vertex neighbor vectors + a pair->edge hash index) so edges can be
// inserted and deleted between decomposition runs without recounting the
// whole graph: each update enumerates only the butterflies through the
// touched edge (internal::ForEachButterflyThroughEdge) and applies the
// ±1 support delta to the O(affected) edges.  Aggregate counters — live
// edge count and exact total butterflies — are maintained across the
// stream.
//
// Edge ids are stable SLOT ids: the seed's edges keep their CSR EdgeIds,
// inserts reuse freed slots (free list) before growing, and a deleted
// slot's id stays invalid until reused.  `Snapshot()` compacts the live
// edges back to an immutable CSR `BipartiteGraph` (whose ids follow the
// lexicographic invariant documented in graph/bipartite_graph.h) together
// with the snapshot-id -> slot-id mapping and the maintained supports in
// snapshot order, so a mutated graph feeds straight into `Decompose()` /
// `BuildBEIndex()`.
//
// Vertex ids use the same one global space as BipartiteGraph: upper in
// [0, NumUpper()), lower in [NumUpper(), NumUpper() + NumLower()).  The
// vertex sets are fixed at seeding; mutation APIs take side-local indices
// like the BipartiteGraph constructor and return Status/StatusOr
// (util/status.h) instead of throwing — duplicate inserts and unknown
// deletes are routine stream events, not contract violations.

#ifndef BITRUSS_DYNAMIC_DYNAMIC_GRAPH_H_
#define BITRUSS_DYNAMIC_DYNAMIC_GRAPH_H_

#include <cassert>
#include <cstdint>
#include <limits>
#include <unordered_map>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace bitruss {

namespace internal {

/// Support deltas are applied one butterfly at a time, so the only overflow
/// hazards are ±1 steps at the SupportT boundaries.  Stepping past a
/// boundary is a maintained-invariant violation (insert-heavy synthetic
/// streams can in principle push a hub edge's support to 2^32): debug
/// builds assert, release builds saturate so the graph stays usable.
inline SupportT SaturatingIncrement(SupportT s) {
  assert(s != std::numeric_limits<SupportT>::max() &&
         "butterfly support overflow");
  return s == std::numeric_limits<SupportT>::max() ? s : s + 1;
}

inline SupportT SaturatingDecrement(SupportT s) {
  assert(s != 0 && "butterfly support underflow");
  return s == 0 ? 0 : s - 1;
}

/// Clamp for the 64-bit butterfly tally of a freshly inserted edge.
inline SupportT SaturatingSupportCast(std::uint64_t count) {
  assert(count <= std::numeric_limits<SupportT>::max() &&
         "butterfly support overflow");
  return count > std::numeric_limits<SupportT>::max()
             ? std::numeric_limits<SupportT>::max()
             : static_cast<SupportT>(count);
}

}  // namespace internal

/// Compaction of a DynamicBipartiteGraph back to immutable CSR.
struct GraphSnapshot {
  BipartiteGraph graph;
  /// Snapshot EdgeId -> dynamic slot id (size graph.NumEdges()).
  std::vector<EdgeId> slot_of_edge;
  /// Maintained butterfly supports reindexed to snapshot edge ids.
  std::vector<SupportT> supports;
};

/// What one InsertEdge/DeleteEdge did to the maintained supports, for
/// callers (incremental_bitruss.h) that repair derived state from the same
/// butterfly deltas instead of recomputing it.  The deltas are still
/// applied to the maintained supports; this is a report, not a deferral.
struct UpdateDelta {
  /// Pre-existing edges whose support moved, one entry per butterfly the
  /// edge gained (insert) or lost (delete) — an edge in several affected
  /// butterflies appears several times; callers dedupe.  The inserted /
  /// deleted edge itself is not listed.
  std::vector<EdgeId> touched;
  /// Butterflies gained (insert) or lost (delete) by the update.
  std::uint64_t butterflies = 0;

  void Clear() {
    touched.clear();
    butterflies = 0;
  }
};

/// Full serializable image of a DynamicBipartiteGraph: the slot table, the
/// free-slot stack IN PUSH ORDER, and the aggregate counters.  Produced by
/// ExportState(), consumed by FromState(); the persistence layer stores it
/// verbatim.  Preserving free-slot ORDER (not just membership) matters:
/// the stack decides which slot the next insert reuses, so a restored
/// graph assigns the same slot ids the original process would have —
/// recovery stays slot-for-slot comparable with an oracle replay.
struct DynamicGraphState {
  VertexId num_upper = 0;
  VertexId num_lower = 0;
  std::uint64_t num_butterflies = 0;
  /// Parallel per-slot arrays; upper[s] == kInvalidVertex marks slot s
  /// free (lower is then kInvalidVertex and support 0).  Vertex ids are
  /// GLOBAL (lower offset by num_upper), exactly as the slot table holds
  /// them.
  std::vector<VertexId> upper;
  std::vector<VertexId> lower;
  std::vector<SupportT> support;
  /// Free-slot stack, bottom first; lists exactly the free slots.
  std::vector<EdgeId> free_slots;
};

class DynamicBipartiteGraph {
 public:
  struct Entry {
    VertexId neighbor;  ///< global vertex id of the other endpoint
    EdgeId edge;        ///< slot id
  };

  /// Seeds from a static graph: copies its adjacency, keeps its EdgeIds as
  /// the initial slot ids, and runs one exact counting pass for the
  /// starting supports.
  explicit DynamicBipartiteGraph(const BipartiteGraph& seed);

  VertexId NumUpper() const { return num_upper_; }
  VertexId NumLower() const { return num_lower_; }
  VertexId NumVertices() const { return num_upper_ + num_lower_; }
  /// Live edges (seed edges + inserts - deletes).
  EdgeId NumEdges() const { return num_live_; }
  /// Upper bound over slot ids; slots in [0, NumSlots()) may be free.
  EdgeId NumSlots() const { return static_cast<EdgeId>(slots_.size()); }
  /// Exact butterfly count, maintained across every update.
  std::uint64_t NumButterflies() const { return num_butterflies_; }

  /// Inserts the edge (upper_local, lower_local), updating the supports of
  /// every edge that gains a butterfly.  Returns the assigned slot id;
  /// kInvalidArgument for out-of-range endpoints, kAlreadyExists if the
  /// edge is present.  When `delta` is non-null it is cleared and filled
  /// with the update's support deltas (untouched on failure).
  [[nodiscard]] StatusOr<EdgeId> InsertEdge(VertexId upper_local,
                                            VertexId lower_local,
                              UpdateDelta* delta = nullptr);

  /// Deletes the edge in slot `e`, updating the supports of every edge
  /// that loses a butterfly.  kNotFound if `e` is out of range or free.
  /// When `delta` is non-null it is cleared and filled with the update's
  /// support deltas (untouched on failure).
  [[nodiscard]] Status DeleteEdge(EdgeId e, UpdateDelta* delta = nullptr);

  bool IsLive(EdgeId e) const {
    return e < slots_.size() && slots_[e].upper != kInvalidVertex;
  }
  /// Endpoints as global vertex ids; requires IsLive(e).
  VertexId EdgeUpper(EdgeId e) const { return slots_[e].upper; }
  VertexId EdgeLower(EdgeId e) const { return slots_[e].lower; }
  /// Maintained butterfly support of a live edge.
  SupportT Support(EdgeId e) const { return slots_[e].support; }

  VertexId Degree(VertexId v) const {
    return static_cast<VertexId>(adj_[v].size());
  }
  const std::vector<Entry>& Neighbors(VertexId v) const { return adj_[v]; }

  /// Slot id of the edge between global vertices a and b (either order),
  /// or kInvalidEdge if absent.
  EdgeId FindEdge(VertexId a, VertexId b) const;

  /// Compacts the live edges to CSR; see GraphSnapshot.
  GraphSnapshot Snapshot() const;

  /// Serializable image of the current state; see DynamicGraphState.
  DynamicGraphState ExportState() const;

  /// Rebuilds a graph from an exported image, revalidating every internal
  /// invariant (endpoint ranges, duplicate edges, free-stack consistency,
  /// support sum == 4 * butterflies).  kDataLoss on any violation: the
  /// caller is recovery, where a malformed image IS corrupt persisted
  /// state.  The rebuilt adjacency enumerates neighbors in slot order
  /// (not the original insertion order), which is behaviorally equivalent
  /// — supports and phi do not depend on enumeration order.
  [[nodiscard]] static StatusOr<DynamicBipartiteGraph> FromState(
      const DynamicGraphState& state);

  /// Compacts the slot table so NumSlots() == NumEdges() again: live slots
  /// are renumbered downward (relative order preserved), freed slots and
  /// their vector capacity are released.  Returns the old-slot -> new-slot
  /// mapping (kInvalidEdge for slots that were free).  Every EdgeId handed
  /// out before the call is invalidated; callers owning slot-indexed state
  /// must remap it through the returned vector.  Without periodic calls,
  /// sustained insert/delete churn grows the slot table monotonically even
  /// when NumEdges() stays flat.
  std::vector<EdgeId> CompactSlots();

  std::uint64_t MemoryBytes() const;

 private:
  DynamicBipartiteGraph() = default;  // FromState fills everything in

  struct EdgeSlot {
    VertexId upper = kInvalidVertex;  ///< kInvalidVertex marks a free slot
    VertexId lower = kInvalidVertex;
    std::uint32_t upper_pos = 0;  ///< index of this edge in adj_[upper]
    std::uint32_t lower_pos = 0;  ///< index of this edge in adj_[lower]
    SupportT support = 0;
  };

  static std::uint64_t PairKey(VertexId upper, VertexId lower) {
    return (static_cast<std::uint64_t>(upper) << 32) | lower;
  }

  /// Swap-pop removal of adj_[v][pos], fixing the moved entry's slot.
  void RemoveAdjEntry(VertexId v, std::uint32_t pos);

  VertexId num_upper_ = 0;
  VertexId num_lower_ = 0;
  EdgeId num_live_ = 0;
  std::uint64_t num_butterflies_ = 0;
  std::vector<std::vector<Entry>> adj_;  // size NumVertices()
  std::vector<EdgeSlot> slots_;
  std::vector<EdgeId> free_slots_;
  std::unordered_map<std::uint64_t, EdgeId> edge_index_;  // PairKey -> slot
};

}  // namespace bitruss

#endif  // BITRUSS_DYNAMIC_DYNAMIC_GRAPH_H_
