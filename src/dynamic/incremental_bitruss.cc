#include "dynamic/incremental_bitruss.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "butterfly/wedge_enumeration.h"
#include "core/local_peel.h"
#include "obs/metrics.h"

namespace bitruss {

namespace {

// Process-wide dynamic-maintenance telemetry.  IncrementalBitruss itself
// is movable (it cannot hold atomics), so the registry instruments live
// here and every instance reports into the same family; per-instance
// numbers stay in IncrementalTotals / IncrementalUpdateStats.
struct DynamicMetrics {
  obs::Counter* inserts;
  obs::Counter* deletes;
  obs::Counter* local_repairs;
  obs::Counter* fallbacks;
  obs::Counter* phi_changes;
  obs::Histogram* repair_frontier_edges;
  obs::Histogram* repair_butterflies;

  static const DynamicMetrics& Get() {
    static const DynamicMetrics metrics = [] {
      auto& registry = obs::MetricsRegistry::Default();
      return DynamicMetrics{
          registry.GetCounter("bitruss_dynamic_inserts_total"),
          registry.GetCounter("bitruss_dynamic_deletes_total"),
          registry.GetCounter("bitruss_dynamic_local_repairs_total"),
          registry.GetCounter("bitruss_dynamic_fallbacks_total"),
          registry.GetCounter("bitruss_dynamic_phi_changes_total"),
          registry.GetHistogram("bitruss_dynamic_repair_frontier_edges",
                                obs::ExponentialBuckets(1.0, 4.0, 10)),
          registry.GetHistogram("bitruss_dynamic_repair_butterflies",
                                obs::ExponentialBuckets(1.0, 4.0, 12)),
      };
    }();
    return metrics;
  }
};

}  // namespace

IncrementalBitruss::IncrementalBitruss(const BipartiteGraph& seed,
                                       IncrementalBitrussOptions options)
    : options_(std::move(options)), graph_(seed) {
  // A finite deadline could leave the initial phi (or a fallback) partial,
  // poisoning every later repair; maintenance always runs to completion.
  options_.decompose.deadline = Deadline();
  const GraphSnapshot snapshot = graph_.Snapshot();
  const BitrussResult initial = Decompose(snapshot.graph, options_.decompose);
  phi_.assign(graph_.NumSlots(), 0);
  for (EdgeId e = 0; e < snapshot.graph.NumEdges(); ++e) {
    phi_[snapshot.slot_of_edge[e]] = initial.phi[e];
  }
  stamp_.assign(graph_.NumSlots(), 0);
}

IncrementalBitruss::IncrementalBitruss(DynamicBipartiteGraph graph,
                                       std::vector<SupportT> phi,
                                       IncrementalBitrussOptions options)
    : options_(std::move(options)),
      graph_(std::move(graph)),
      phi_(std::move(phi)) {
  if (phi_.size() != graph_.NumSlots()) {
    throw std::invalid_argument(
        "IncrementalBitruss: phi size does not match the slot table");
  }
  options_.decompose.deadline = Deadline();  // same rule as the seed ctor
  stamp_.assign(graph_.NumSlots(), 0);
}

std::uint64_t IncrementalBitruss::EffectiveBudget() const {
  if (!options_.adaptive_budget) return options_.cascade_budget;
  // Below half the butterfly count a local repair is still cheaper than a
  // recount; past it, bail out early.  The floor keeps tiny graphs from
  // falling back over trivial cascades.
  const std::uint64_t half = graph_.NumButterflies() / 2;
  return std::min(options_.cascade_budget,
                  std::max<std::uint64_t>(1024, half));
}

void IncrementalBitruss::NewEpoch() {
  if (stamp_.size() < graph_.NumSlots()) {
    stamp_.resize(graph_.NumSlots(), 0);
  }
  if (++epoch_ == 0) {  // uint32 wrap: all stamps are stale, reset them
    std::fill(stamp_.begin(), stamp_.end(), 0);
    epoch_ = 1;
  }
}

StatusOr<EdgeId> IncrementalBitruss::InsertEdge(VertexId upper_local,
                                                VertexId lower_local) {
  StatusOr<EdgeId> result = graph_.InsertEdge(upper_local, lower_local,
                                              &delta_);
  if (!result.ok()) return result;
  const EdgeId slot = result.value();
  if (phi_.size() < graph_.NumSlots()) phi_.resize(graph_.NumSlots(), 0);
  phi_[slot] = 0;
  last_ = IncrementalUpdateStats{};
  entry_labels_.clear();
  ++totals_.inserts;
  DynamicMetrics::Get().inserts->Inc();

  bool local_ok;
  if (delta_.butterflies == 0) {
    // The new edge closed no butterfly: no support moved, so no phi moved,
    // and its own phi is 0.
    local_ok = true;
  } else if (options_.cascade_budget == 0) {
    local_ok = false;
  } else {
    local_ok = RepairInsert(slot);
  }
  FinishUpdate(local_ok, graph_.EdgeUpper(slot), graph_.EdgeLower(slot));
  return result;
}

Status IncrementalBitruss::DeleteEdge(EdgeId slot) {
  if (!graph_.IsLive(slot)) {
    return graph_.DeleteEdge(slot);  // the graph's kNotFound contract
  }
  const VertexId u = graph_.EdgeUpper(slot);
  const VertexId v = graph_.EdgeLower(slot);
  const SupportT k_star = phi_[slot];
  const Status status = graph_.DeleteEdge(slot, &delta_);
  if (!status.ok()) return status;
  phi_[slot] = 0;  // the slot is free until reused
  last_ = IncrementalUpdateStats{};
  entry_labels_.clear();
  ++totals_.deletes;
  DynamicMetrics::Get().deletes->Inc();

  bool local_ok;
  if (delta_.butterflies == 0 || k_star == 0) {
    // No butterfly lost means no support moved; and the deletion band is
    // empty when the deleted edge had phi 0 (every shrinking edge f had
    // phi(f) <= phi(e0), and phi cannot drop below 0).
    local_ok = true;
  } else if (options_.cascade_budget == 0) {
    local_ok = false;
  } else {
    local_ok = RepairDelete(k_star);
  }
  FinishUpdate(local_ok, u, v);
  return status;
}

bool IncrementalBitruss::RepairInsert(const EdgeId slot) {
  const VertexId u = graph_.EdgeUpper(slot);
  const VertexId v = graph_.EdgeLower(slot);
  const std::uint64_t budget = EffectiveBudget();

  // Band bound: phi_new(e0) <= K = h-index over e0's butterflies of
  // min(partner supports) — a butterfly can carry level k only if all its
  // edges have support >= k.  Every edge phi can touch lies below K.
  scratch_.weights.clear();
  const SupportT own_support = graph_.Support(slot);
  last_.enumerated_butterflies += internal::CollectButterflyWeights(
      graph_, u, v, [&](EdgeId f) { return graph_.Support(f); }, own_support,
      &scratch_.weights);
  const SupportT band =
      HIndexOfWeights(scratch_.weights, own_support, &scratch_.bucket);
  if (band == 0) return true;  // nothing can rise, the new edge stays at 0

  // Affected-band expansion: butterfly-BFS from e0 and the support-delta
  // edges, pulling in only edges whose phi can still rise (old phi below
  // the band, support strictly above old phi).  Risen edges chain to the
  // seed through shared butterflies between risen edges, so the closure
  // of this walk covers everything the insert can change.
  NewEpoch();
  frontier_.clear();
  Stamp(slot);
  frontier_.push_back(slot);
  for (const EdgeId f : delta_.touched) {
    if (!Stamped(f) && phi_[f] < band && graph_.Support(f) > phi_[f]) {
      Stamp(f);
      frontier_.push_back(f);
    }
  }
  // head starts past e0: its butterfly partners are exactly the delta
  // edges just seeded, so expanding it would only re-pay the enumeration.
  for (std::size_t head = 1; head < frontier_.size(); ++head) {
    const EdgeId f = frontier_[head];
    internal::ForEachButterflyThroughEdge(
        graph_, graph_.EdgeUpper(f), graph_.EdgeLower(f),
        [&](EdgeId e1, EdgeId e2, EdgeId e3) {
          ++last_.enumerated_butterflies;
          for (const EdgeId g : {e1, e2, e3}) {
            if (!Stamped(g) && phi_[g] < band && graph_.Support(g) > phi_[g]) {
              Stamp(g);
              frontier_.push_back(g);
            }
          }
        });
    if (last_.enumerated_butterflies > budget) return false;
  }
  last_.frontier_edges = frontier_.size();

  // Warm-start labels: each band edge rises to at most min(support, K),
  // everything outside the band keeps its exact phi.  The repair iterates
  // the labels back down to the exact new phi (core/local_peel.h).
  for (const EdgeId f : frontier_) {
    entry_labels_.emplace_back(f, phi_[f]);
    phi_[f] = std::min(graph_.Support(f), band);
  }
  LocalPeelStats stats;
  const std::uint64_t used = last_.enumerated_butterflies;
  const bool completed = LocalHIndexRepair(
      graph_, phi_, frontier_, [&](EdgeId g) { return Stamped(g); },
      budget - std::min(budget, used), &stats, &scratch_);
  last_.enumerated_butterflies += stats.enumerated_butterflies;
  if (!completed) return false;
  for (const auto& [f, before] : entry_labels_) {
    if (phi_[f] != before) ++last_.phi_changes;
  }
  return true;
}

bool IncrementalBitruss::RepairDelete(const SupportT k_star) {
  // Deletion band: only edges with phi <= phi_old(e0) = k_star can drop
  // (and phi-0 edges have nowhere to go).  Labels are already an upper
  // bound — phi only shrinks under deletion — so the repair iterates the
  // current phi down directly, seeded by the support-delta edges.
  NewEpoch();
  frontier_.clear();
  for (const EdgeId f : delta_.touched) {
    if (!Stamped(f) && phi_[f] > 0 && phi_[f] <= k_star) {
      Stamp(f);
      frontier_.push_back(f);
    }
  }
  if (frontier_.empty()) return true;

  LocalPeelStats stats;
  const bool completed = LocalHIndexRepair(
      graph_, phi_, frontier_, [&](EdgeId g) { return phi_[g] <= k_star; },
      EffectiveBudget(), &stats, &scratch_, &entry_labels_);
  last_.enumerated_butterflies += stats.enumerated_butterflies;
  if (!completed) return false;
  // entry_labels_ may list an edge several times; the first occurrence
  // holds its pre-update phi.
  NewEpoch();
  last_.frontier_edges = 0;
  for (const auto& [f, before] : entry_labels_) {
    if (Stamped(f)) continue;
    Stamp(f);
    ++last_.frontier_edges;
    if (phi_[f] != before) ++last_.phi_changes;
  }
  return true;
}

void IncrementalBitruss::FinishUpdate(const bool local_ok, const VertexId u,
                                      const VertexId v) {
  const DynamicMetrics& metrics = DynamicMetrics::Get();
  if (local_ok) {
    ++totals_.local_repairs;
    metrics.local_repairs->Inc();
  } else {
    // Roll the part-way repaired labels back to their pre-update values
    // (reverse order: the first record per edge is the oldest), then
    // recompute the affected component exactly.
    for (auto it = entry_labels_.rbegin(); it != entry_labels_.rend(); ++it) {
      phi_[it->first] = it->second;
    }
    last_.fallback = true;
    ++totals_.fallbacks;
    metrics.fallbacks->Inc();
    RecomputeComponents(u, v);
  }
  totals_.enumerated_butterflies += last_.enumerated_butterflies;
  totals_.phi_changes += last_.phi_changes;
  metrics.phi_changes->Inc(last_.phi_changes);
  metrics.repair_frontier_edges->Observe(
      static_cast<double>(last_.frontier_edges));
  metrics.repair_butterflies->Observe(
      static_cast<double>(last_.enumerated_butterflies));
}

void IncrementalBitruss::RecomputeComponents(const VertexId u,
                                             const VertexId v) {
  // Butterflies and peeling cascades never cross connected components, so
  // re-decomposing the component(s) of the updated edge's endpoints (a
  // deletion can split one into two) is exact; phi elsewhere is untouched.
  std::vector<std::uint8_t> visited(graph_.NumVertices(), 0);
  std::vector<VertexId> queue;
  const auto push = [&](VertexId s) {
    if (s < graph_.NumVertices() && !visited[s] && graph_.Degree(s) > 0) {
      visited[s] = 1;
      queue.push_back(s);
    }
  };
  push(u);
  push(v);

  struct Row {
    VertexId upper_local, lower_local;
    EdgeId slot;
  };
  std::vector<Row> rows;
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const VertexId x = queue[head];
    for (const DynamicBipartiteGraph::Entry& entry : graph_.Neighbors(x)) {
      push(entry.neighbor);
      if (x < graph_.NumUpper()) {  // each edge once, from its upper side
        rows.push_back({x, entry.neighbor - graph_.NumUpper(), entry.edge});
      }
    }
  }
  if (rows.empty()) return;

  // Lexicographic endpoint order matches the BipartiteGraph constructor's
  // edge-id assignment, giving the component-id -> slot mapping for free.
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.upper_local != b.upper_local ? a.upper_local < b.upper_local
                                          : a.lower_local < b.lower_local;
  });
  std::vector<std::pair<VertexId, VertexId>> pairs;
  pairs.reserve(rows.size());
  for (const Row& row : rows) {
    pairs.emplace_back(row.upper_local, row.lower_local);
  }
  const BipartiteGraph component(graph_.NumUpper(), graph_.NumLower(),
                                 std::move(pairs));
  const BitrussResult result = Decompose(component, options_.decompose);
  for (EdgeId e = 0; e < component.NumEdges(); ++e) {
    if (phi_[rows[e].slot] != result.phi[e]) ++last_.phi_changes;
    phi_[rows[e].slot] = result.phi[e];
  }
}

std::vector<EdgeId> IncrementalBitruss::CompactSlots() {
  std::vector<EdgeId> mapping = graph_.CompactSlots();
  std::vector<SupportT> compacted(graph_.NumSlots(), 0);
  for (EdgeId old_slot = 0; old_slot < mapping.size(); ++old_slot) {
    if (mapping[old_slot] != kInvalidEdge) {
      compacted[mapping[old_slot]] = phi_[old_slot];
    }
  }
  phi_ = std::move(compacted);
  ResetSlotScratch();
  return mapping;
}

void IncrementalBitruss::ResetSlotScratch() {
  // Everything below is keyed by (or holds) slot ids, which a compaction
  // just renumbered.  Release the old-slot-table sizing rather than keep
  // capacity pinned to the pre-compaction high-water mark.
  stamp_.assign(graph_.NumSlots(), 0);
  stamp_.shrink_to_fit();
  epoch_ = 0;  // stamps are all 0; the next NewEpoch() opens epoch 1
  frontier_.clear();
  frontier_.shrink_to_fit();
  entry_labels_.clear();
  entry_labels_.shrink_to_fit();
  delta_.Clear();
  delta_.touched.shrink_to_fit();
  scratch_ = LocalPeelScratch{};
  last_ = IncrementalUpdateStats{};
}

}  // namespace bitruss
