// Incremental bitruss (phi) maintenance over a DynamicBipartiteGraph.
//
// `IncrementalBitruss` keeps exact bitruss numbers current across an edge
// update stream: it owns a DynamicBipartiteGraph (which already maintains
// exact butterfly supports per update), computes the initial phi with one
// full Decompose(), and on each InsertEdge/DeleteEdge repairs phi by a
// bounded local re-peel instead of recounting the world.  After every
// update the maintained phi is bit-identical to a from-scratch
// Snapshot() + Decompose() — the repair is exact, not approximate.
//
// Why a local repair is exact.  Updates move phi monotonically (an insert
// can only raise bitruss numbers, a delete only lower them) and inside a
// provable band around the updated edge e0:
//
//   insert  every changed edge f has phi_old(f) < phi_new(e0) and
//           phi_new(f) <= phi_new(e0): a risen edge lies in a
//           (phi_old(f)+1)-bitruss of the new graph, which must contain e0
//           (otherwise it existed before the insert).  phi_new(e0) is not
//           known up front, so the repair uses the upper bound
//           K = h-index over e0's butterflies of min(partner supports),
//           which dominates it.
//   delete  symmetrically, every changed edge had phi_old(f) <=
//           phi_old(e0) = K — known exactly, no estimate needed.
//
// Changed edges also chain to the support-delta set through shared
// butterflies between changed edges (an edge's phi cannot move unless its
// own butterflies changed or a butterfly partner moved), so seeding the
// dirty frontier from the edges whose supports changed and expanding only
// through edges whose phi can still move (old phi inside the band, support
// above old phi) reaches every edge the update can affect.  The repair
// then runs core/local_peel.h's warm-start h-index iteration down from
// per-edge upper bounds; see that header for the fixpoint argument.
//
// Cascades are budgeted: once an update enumerates more than
// `cascade_budget` butterflies (band expansion + repair combined), the
// maintainer abandons the local path and recomputes the affected connected
// component with a scoped Decompose() — still exact, since butterflies and
// peeling cascades never cross connected components.

#ifndef BITRUSS_DYNAMIC_INCREMENTAL_BITRUSS_H_
#define BITRUSS_DYNAMIC_INCREMENTAL_BITRUSS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/decompose.h"
#include "core/local_peel.h"
#include "dynamic/dynamic_graph.h"
#include "graph/bipartite_graph.h"
#include "graph/types.h"
#include "util/status.h"

namespace bitruss {

struct IncrementalBitrussOptions {
  /// Maximum butterflies enumerated by one update's local repair (band
  /// expansion + fixpoint iteration) before falling back to the scoped
  /// component recompute.  0 forces the fallback on every non-trivial
  /// update (useful for testing and as a recount-only baseline).
  std::uint64_t cascade_budget = 1u << 20;
  /// Additionally cap the effective per-update budget at half the graph's
  /// current NumButterflies() (floor 1024): a full recount costs on the
  /// order of the butterfly count, so a local repair that enumerates more
  /// can never beat the fallback — dense blocks (hub-heavy graphs like
  /// D-style) bail out early instead of paying budget + recount.  Disable
  /// to take cascade_budget literally.
  bool adaptive_budget = true;
  /// Algorithm/options for the initial decomposition and the fallback
  /// recomputes.  The deadline is ignored (cleared at construction): a
  /// timed-out partial phi would poison every later repair.
  DecomposeOptions decompose;
};

/// Per-update repair telemetry (reset by each InsertEdge/DeleteEdge).
struct IncrementalUpdateStats {
  bool fallback = false;  ///< budget exceeded -> component recompute
  std::uint64_t enumerated_butterflies = 0;  ///< local-repair work
  std::uint64_t frontier_edges = 0;  ///< dirty edges seeded + pulled in
  std::uint64_t phi_changes = 0;     ///< edges whose phi actually moved
};

/// Stream-lifetime aggregates.
struct IncrementalTotals {
  std::uint64_t inserts = 0;
  std::uint64_t deletes = 0;
  /// Updates fully handled by the bounded local re-peel (includes trivial
  /// updates that touched no butterfly).
  std::uint64_t local_repairs = 0;
  std::uint64_t fallbacks = 0;
  std::uint64_t enumerated_butterflies = 0;
  std::uint64_t phi_changes = 0;
};

class IncrementalBitruss {
 public:
  explicit IncrementalBitruss(const BipartiteGraph& seed,
                              IncrementalBitrussOptions options = {});

  /// Restore constructor for recovery: adopts an already-maintained graph
  /// and its phi (indexed by slot, size graph.NumSlots()) WITHOUT the
  /// initial Decompose().  The caller vouches that phi is the exact
  /// decomposition of `graph` — recovery loads both from one checksummed
  /// snapshot, so they can only disagree if the writer was wrong, not
  /// through bit rot.  Throws std::invalid_argument on a size mismatch.
  IncrementalBitruss(DynamicBipartiteGraph graph, std::vector<SupportT> phi,
                     IncrementalBitrussOptions options = {});

  /// Copying would silently fork the maintained phi (and duplicate the
  /// graph plus all repair scratch); pass by reference or move instead.
  IncrementalBitruss(const IncrementalBitruss&) = delete;
  IncrementalBitruss& operator=(const IncrementalBitruss&) = delete;
  IncrementalBitruss(IncrementalBitruss&&) = default;
  IncrementalBitruss& operator=(IncrementalBitruss&&) = default;

  const DynamicBipartiteGraph& Graph() const { return graph_; }

  /// Maintained bitruss number of a live slot.  Free slots read 0, and so
  /// does any slot id at or past Graph().NumSlots() — stale ids from
  /// before a CompactSlots() (exactly what a concurrent reader may hold)
  /// are answered, not trusted.  Use CheckedPhi() to distinguish the
  /// cases.
  SupportT Phi(EdgeId slot) const {
    return slot < phi_.size() ? phi_[slot] : 0;
  }
  /// Phi with an explicit contract: kInvalidArgument for a slot id outside
  /// [0, Graph().NumSlots()), kNotFound for a free (deleted) slot.
  [[nodiscard]] StatusOr<SupportT> CheckedPhi(EdgeId slot) const {
    if (slot >= phi_.size()) {
      return InvalidArgumentError("slot id out of range");
    }
    if (!graph_.IsLive(slot)) return NotFoundError("slot is free");
    return phi_[slot];
  }
  /// Maintained phi indexed by slot id, size Graph().NumSlots().
  const std::vector<SupportT>& PhiBySlot() const { return phi_; }

  /// Graph mutation with exact phi repair.  Status contracts match
  /// DynamicBipartiteGraph; failed updates change nothing.
  [[nodiscard]] StatusOr<EdgeId> InsertEdge(VertexId upper_local,
                                            VertexId lower_local);
  [[nodiscard]] Status DeleteEdge(EdgeId slot);

  /// Compacts the underlying slot table (DynamicBipartiteGraph::
  /// CompactSlots) and remaps the maintained phi.  Returns the old-slot ->
  /// new-slot mapping; previously handed-out EdgeIds are invalidated.
  std::vector<EdgeId> CompactSlots();

  const IncrementalUpdateStats& LastUpdateStats() const { return last_; }
  const IncrementalTotals& Totals() const { return totals_; }

 private:
  /// Resizes/resets every piece of slot-indexed scratch to the current
  /// slot table in one place — called after CompactSlots() renumbers the
  /// slots, so no stale-sized buffer (stamps, frontier, peel scratch,
  /// delta report) survives a compaction.
  void ResetSlotScratch();
  /// Per-update enumeration budget: cascade_budget capped at half the
  /// current butterfly count (see IncrementalBitrussOptions).
  std::uint64_t EffectiveBudget() const;
  /// Lazily sizes the stamp scratch to NumSlots() and opens a new epoch.
  void NewEpoch();
  bool Stamped(EdgeId e) const { return stamp_[e] == epoch_; }
  void Stamp(EdgeId e) { stamp_[e] = epoch_; }

  /// Local repair after a successful insert of `slot`; false on budget
  /// exhaustion (phi is then part-way repaired until the fallback runs).
  bool RepairInsert(EdgeId slot);
  /// Local repair after a successful delete whose edge had phi `k_star`.
  bool RepairDelete(SupportT k_star);
  /// Exact fallback: Decompose() the connected component(s) of global
  /// vertices u and v and scatter phi back to their slots.
  void RecomputeComponents(VertexId u, VertexId v);
  void FinishUpdate(bool local_ok, VertexId u, VertexId v);

  IncrementalBitrussOptions options_;
  DynamicBipartiteGraph graph_;
  std::vector<SupportT> phi_;  // by slot id; free slots hold 0

  // Reusable per-update scratch.
  UpdateDelta delta_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<EdgeId> frontier_;
  LocalPeelScratch scratch_;
  std::vector<std::pair<EdgeId, SupportT>> entry_labels_;

  IncrementalUpdateStats last_;
  IncrementalTotals totals_;
};

}  // namespace bitruss

#endif  // BITRUSS_DYNAMIC_INCREMENTAL_BITRUSS_H_
