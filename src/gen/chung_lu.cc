#include "gen/chung_lu.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>
#include <vector>

#include "util/random.h"

namespace bitruss {

namespace {

// Cumulative weights for (i+1)^-exponent, normalized to end at 1.
std::vector<double> CumulativeWeights(VertexId n, double exponent) {
  std::vector<double> cumulative(n, 0.0);
  double total = 0;
  for (VertexId i = 0; i < n; ++i) {
    total += std::pow(static_cast<double>(i) + 1.0, -exponent);
    cumulative[i] = total;
  }
  for (VertexId i = 0; i < n; ++i) cumulative[i] /= total;
  return cumulative;
}

VertexId SampleIndex(const std::vector<double>& cumulative, double r) {
  const auto it =
      std::lower_bound(cumulative.begin(), cumulative.end(), r);
  const std::size_t i = static_cast<std::size_t>(it - cumulative.begin());
  return static_cast<VertexId>(std::min(i, cumulative.size() - 1));
}

}  // namespace

BipartiteGraph GenerateChungLu(const ChungLuParams& params) {
  const VertexId nu = params.num_upper;
  const VertexId nl = params.num_lower;
  const std::uint64_t grid = static_cast<std::uint64_t>(nu) * nl;
  const std::uint64_t target = std::min<std::uint64_t>(params.num_edges, grid);
  if (target == 0) return BipartiteGraph(nu, nl, {});

  const double upper_exp = std::clamp(params.upper_exponent, 0.0, 0.99);
  const double lower_exp = std::clamp(params.lower_exponent, 0.0, 0.99);
  const std::vector<double> upper_cdf = CumulativeWeights(nu, upper_exp);
  const std::vector<double> lower_cdf = CumulativeWeights(nl, lower_exp);

  std::unordered_set<std::uint64_t> taken;
  taken.reserve(target * 2);
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(target);

  Rng rng(params.seed * 0x2545f4914f6cdd1dull + 0x9e3779b9ull);
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 128ull * target + 1024;
  while (edges.size() < target && attempts < max_attempts) {
    ++attempts;
    const VertexId u = SampleIndex(upper_cdf, rng.NextDouble());
    const VertexId l = SampleIndex(lower_cdf, rng.NextDouble());
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | l;
    if (taken.insert(key).second) edges.emplace_back(u, l);
  }
  // Hub saturation can stall rejection sampling; top up deterministically
  // so the edge count (and scale monotonicity) is exact.
  if (edges.size() < target) {
    for (VertexId u = 0; u < nu && edges.size() < target; ++u) {
      for (VertexId l = 0; l < nl && edges.size() < target; ++l) {
        const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | l;
        if (taken.insert(key).second) edges.emplace_back(u, l);
      }
    }
  }
  return BipartiteGraph(nu, nl, std::move(edges));
}

}  // namespace bitruss
