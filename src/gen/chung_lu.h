// Chung-Lu style bipartite generator with power-law expected degrees —
// the synthetic stand-in for the paper's skewed real-world datasets.

#ifndef BITRUSS_GEN_CHUNG_LU_H_
#define BITRUSS_GEN_CHUNG_LU_H_

#include <cstdint>

#include "graph/bipartite_graph.h"

namespace bitruss {

struct ChungLuParams {
  VertexId num_upper = 0;
  VertexId num_lower = 0;
  EdgeId num_edges = 0;
  /// Skew of the expected-degree sequence per side: vertex i gets weight
  /// (i+1)^-exponent.  0 is uniform; 0.7-0.9 gives hub-heavy tails like the
  /// paper's datasets.  Values are clamped to [0, 0.99].
  double upper_exponent = 0.8;
  double lower_exponent = 0.8;
  std::uint64_t seed = 1;
};

/// Exactly min(num_edges, num_upper * num_lower) distinct edges; endpoints
/// drawn independently from the two weight distributions (duplicates
/// resampled).  Deterministic in params for a fixed build; the weight
/// table uses std::pow, so cross-platform bit-identity additionally
/// depends on the libm in use (the PRNG itself is bit-exact everywhere).
BipartiteGraph GenerateChungLu(const ChungLuParams& params);

}  // namespace bitruss

#endif  // BITRUSS_GEN_CHUNG_LU_H_
