#include "gen/dataset_suite.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "gen/chung_lu.h"
#include "gen/random_bipartite.h"
#include "util/random.h"

namespace bitruss {

namespace {

enum class Family { kUniform, kChungLu };

struct DatasetSpec {
  const char* name;
  Family family;
  VertexId num_upper;
  VertexId num_lower;
  EdgeId num_edges;
  double upper_exponent;  // ignored for kUniform
  double lower_exponent;
};

// Ordered by |E| like Table II.  "D-label"/"D-style" are the Discogs
// stand-ins; "D-style" has few hub-heavy lower vertices, which is what
// gives BiT-PC its edge in Figures 7/8/10.
constexpr DatasetSpec kSpecs[] = {
    {"Writer", Family::kChungLu, 3000, 2500, 12000, 0.50, 0.50},
    {"Location", Family::kChungLu, 2500, 1500, 14000, 0.60, 0.55},
    {"YouTube", Family::kChungLu, 4000, 2000, 16000, 0.70, 0.60},
    {"Producer", Family::kChungLu, 3500, 2500, 18000, 0.55, 0.50},
    {"Github", Family::kChungLu, 6000, 4000, 30000, 0.80, 0.70},
    {"Twitter", Family::kChungLu, 8000, 5000, 45000, 0.85, 0.75},
    {"Amazon", Family::kUniform, 9000, 9000, 50000, 0, 0},
    {"D-label", Family::kChungLu, 10000, 6000, 60000, 0.80, 0.70},
    {"Actor-movie", Family::kChungLu, 12000, 8000, 70000, 0.75, 0.70},
    {"Wiki-fr", Family::kChungLu, 12000, 7000, 80000, 0.85, 0.75},
    {"DBLP", Family::kUniform, 15000, 12000, 90000, 0, 0},
    {"D-style", Family::kChungLu, 12000, 500, 110000, 0.60, 0.90},
    {"Wiki-it", Family::kChungLu, 14000, 8000, 120000, 0.85, 0.75},
    {"LiveJournal", Family::kChungLu, 20000, 15000, 150000, 0.80, 0.75},
    {"Tracker", Family::kChungLu, 25000, 12000, 200000, 0.90, 0.80},
};

// Bench-only configs, reachable through MakeDataset but excluded from
// DatasetNames() so the default 15-dataset unit sweep stays cheap.
// "Tracker-XL" (~1M edges at scale 1) exists for the thread-scaling benches
// (ablation_parallel_peel, fig12_scalability) to measure beyond the
// default suite's 200k-edge ceiling.
constexpr DatasetSpec kBenchOnlySpecs[] = {
    {"Tracker-XL", Family::kChungLu, 120000, 60000, 1000000, 0.90, 0.80},
};

std::int64_t ScaleCount(std::uint32_t base, double scale, std::int64_t floor) {
  const auto scaled = static_cast<std::int64_t>(
      std::llround(static_cast<double>(base) * scale));
  if (scaled > static_cast<std::int64_t>(UINT32_MAX)) {
    throw std::invalid_argument(
        "MakeDataset: scale overflows 32-bit vertex/edge ids");
  }
  return std::max(floor, scaled);
}

VertexId ScaleVertices(VertexId base, double scale) {
  return static_cast<VertexId>(ScaleCount(base, scale, 2));
}

EdgeId ScaleEdges(EdgeId base, double scale) {
  return static_cast<EdgeId>(ScaleCount(base, scale, 1));
}

}  // namespace

std::vector<std::string> DatasetNames() {
  std::vector<std::string> names;
  names.reserve(std::size(kSpecs));
  for (const DatasetSpec& spec : kSpecs) names.emplace_back(spec.name);
  return names;
}

namespace {

BipartiteGraph MakeFromSpec(const DatasetSpec& spec, double scale) {
  const VertexId nu = ScaleVertices(spec.num_upper, scale);
  const VertexId nl = ScaleVertices(spec.num_lower, scale);
  const EdgeId m = ScaleEdges(spec.num_edges, scale);
  const std::uint64_t seed = HashString64(spec.name);
  if (spec.family == Family::kUniform) {
    return GenerateUniformBipartite(nu, nl, m, seed);
  }
  ChungLuParams params;
  params.num_upper = nu;
  params.num_lower = nl;
  params.num_edges = m;
  params.upper_exponent = spec.upper_exponent;
  params.lower_exponent = spec.lower_exponent;
  params.seed = seed;
  return GenerateChungLu(params);
}

}  // namespace

BipartiteGraph MakeDataset(const std::string& name, double scale) {
  if (!(scale > 0)) {
    throw std::invalid_argument("MakeDataset: scale must be positive");
  }
  for (const DatasetSpec& spec : kSpecs) {
    if (name == spec.name) return MakeFromSpec(spec, scale);
  }
  for (const DatasetSpec& spec : kBenchOnlySpecs) {
    if (name == spec.name) return MakeFromSpec(spec, scale);
  }
  throw std::invalid_argument("MakeDataset: unknown dataset '" + name + "'");
}

}  // namespace bitruss
