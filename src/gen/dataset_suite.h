// The named synthetic dataset suite standing in for the paper's Table II
// datasets (Section VI protocol).  Every dataset is generated — no
// downloads — with a fixed per-name seed, so a given build reproduces the
// same graphs on every run; `scale` multiplies the vertex and edge budgets
// so benches and smoke tests can dial the cost.  (Chung-Lu weights go
// through std::pow, so bit-identity across different libm implementations
// is not guaranteed — see gen/chung_lu.h.)

#ifndef BITRUSS_GEN_DATASET_SUITE_H_
#define BITRUSS_GEN_DATASET_SUITE_H_

#include <string>
#include <vector>

#include "graph/bipartite_graph.h"

namespace bitruss {

/// All dataset names, ordered by size (mirrors Table II's 15 rows).
std::vector<std::string> DatasetNames();

/// Generates the named dataset at the given scale (1.0 = bench default).
/// Deterministic in (name, scale); throws std::invalid_argument for an
/// unknown name.  Beyond DatasetNames(), the bench-only "Tracker-XL"
/// (~1M edges at scale 1) is accepted — it exists for the thread-scaling
/// benches and is deliberately left out of the default 15-dataset sweep.
BipartiteGraph MakeDataset(const std::string& name, double scale);

}  // namespace bitruss

#endif  // BITRUSS_GEN_DATASET_SUITE_H_
