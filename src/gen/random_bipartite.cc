#include "gen/random_bipartite.h"

#include <unordered_set>
#include <utility>
#include <vector>

#include "util/random.h"

namespace bitruss {

BipartiteGraph GenerateUniformBipartite(VertexId num_upper, VertexId num_lower,
                                        EdgeId num_edges, std::uint64_t seed) {
  const std::uint64_t grid =
      static_cast<std::uint64_t>(num_upper) * num_lower;
  const std::uint64_t target = std::min<std::uint64_t>(num_edges, grid);

  std::unordered_set<std::uint64_t> taken;
  taken.reserve(target * 2);
  std::vector<std::pair<VertexId, VertexId>> edges;
  edges.reserve(target);

  Rng rng(seed ^ 0x5bd1e995ull);
  std::uint64_t attempts = 0;
  const std::uint64_t max_attempts = 64ull * target + 1024;
  while (edges.size() < target && attempts < max_attempts) {
    ++attempts;
    const VertexId u = static_cast<VertexId>(rng.Below(num_upper));
    const VertexId l = static_cast<VertexId>(rng.Below(num_lower));
    const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | l;
    if (taken.insert(key).second) edges.emplace_back(u, l);
  }
  // Dense corner: top up deterministically so the edge count is exact.
  if (edges.size() < target) {
    for (VertexId u = 0; u < num_upper && edges.size() < target; ++u) {
      for (VertexId l = 0; l < num_lower && edges.size() < target; ++l) {
        const std::uint64_t key = (static_cast<std::uint64_t>(u) << 32) | l;
        if (taken.insert(key).second) edges.emplace_back(u, l);
      }
    }
  }
  return BipartiteGraph(num_upper, num_lower, std::move(edges));
}

}  // namespace bitruss
