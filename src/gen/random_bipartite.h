// Uniform (Erdos-Renyi style) random bipartite graphs.

#ifndef BITRUSS_GEN_RANDOM_BIPARTITE_H_
#define BITRUSS_GEN_RANDOM_BIPARTITE_H_

#include <cstdint>

#include "graph/bipartite_graph.h"

namespace bitruss {

/// Exactly min(num_edges, num_upper * num_lower) distinct edges sampled
/// uniformly.  Deterministic in the arguments (bit-identical across runs
/// and platforms).
BipartiteGraph GenerateUniformBipartite(VertexId num_upper, VertexId num_lower,
                                        EdgeId num_edges, std::uint64_t seed);

}  // namespace bitruss

#endif  // BITRUSS_GEN_RANDOM_BIPARTITE_H_
