#include "graph/bipartite_graph.h"

#include <algorithm>
#include <stdexcept>

namespace bitruss {

BipartiteGraph::BipartiteGraph(VertexId num_upper, VertexId num_lower,
                               std::vector<std::pair<VertexId, VertexId>> edges)
    : num_upper_(num_upper), num_lower_(num_lower) {
  for (const auto& [u, l] : edges) {
    if (u >= num_upper || l >= num_lower) {
      throw std::invalid_argument("BipartiteGraph: edge endpoint out of range");
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  const EdgeId m = static_cast<EdgeId>(edges.size());
  edge_upper_.resize(m);
  edge_lower_.resize(m);
  const VertexId n = NumVertices();
  offsets_.assign(n + 1, 0);
  for (EdgeId e = 0; e < m; ++e) {
    const VertexId u = edges[e].first;
    const VertexId v = num_upper_ + edges[e].second;
    edge_upper_[e] = u;
    edge_lower_[e] = v;
    ++offsets_[u + 1];
    ++offsets_[v + 1];
  }
  for (VertexId v = 0; v < n; ++v) offsets_[v + 1] += offsets_[v];

  adj_.resize(2ull * m);
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId e = 0; e < m; ++e) {
    const VertexId u = edge_upper_[e];
    const VertexId v = edge_lower_[e];
    adj_[cursor[u]++] = {v, e};
    adj_[cursor[v]++] = {u, e};
  }
}

std::vector<std::pair<VertexId, VertexId>> BipartiteGraph::EdgeList() const {
  std::vector<std::pair<VertexId, VertexId>> edges(NumEdges());
  for (EdgeId e = 0; e < NumEdges(); ++e) {
    edges[e] = {edge_upper_[e], edge_lower_[e] - num_upper_};
  }
  return edges;
}

std::uint64_t BipartiteGraph::MemoryBytes() const {
  return offsets_.size() * sizeof(std::uint64_t) +
         adj_.size() * sizeof(AdjEntry) +
         (edge_upper_.size() + edge_lower_.size()) * sizeof(VertexId);
}

}  // namespace bitruss
