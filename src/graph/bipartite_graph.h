// Immutable bipartite graph in CSR form.
//
// Vertices use one global id space: upper vertices are [0, NumUpper()),
// lower vertices are [NumUpper(), NumUpper() + NumLower()).  Each undirected
// edge has one EdgeId; both adjacency directions carry it, so per-edge
// arrays (supports, bitruss numbers) are indexed directly.
//
// Edge ids are assigned in lexicographic (upper, lower) order after
// deduplication — a documented invariant that verify.cc and the tests rely
// on to map sub-graph edges back to the parent graph.

#ifndef BITRUSS_GRAPH_BIPARTITE_GRAPH_H_
#define BITRUSS_GRAPH_BIPARTITE_GRAPH_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "graph/types.h"

namespace bitruss {

class BipartiteGraph {
 public:
  struct AdjEntry {
    VertexId neighbor;  ///< global vertex id of the other endpoint
    EdgeId edge;
  };

  /// Iteration range over a CSR adjacency slice.
  struct NeighborRange {
    const AdjEntry* first;
    const AdjEntry* last;
    const AdjEntry* begin() const { return first; }
    const AdjEntry* end() const { return last; }
    std::size_t size() const { return static_cast<std::size_t>(last - first); }
  };

  BipartiteGraph() = default;

  /// Builds from (upper index, lower index) pairs with side-local indices
  /// in [0, num_upper) x [0, num_lower).  Duplicate pairs are collapsed;
  /// out-of-range endpoints throw std::invalid_argument.
  BipartiteGraph(VertexId num_upper, VertexId num_lower,
                 std::vector<std::pair<VertexId, VertexId>> edges);

  VertexId NumUpper() const { return num_upper_; }
  VertexId NumLower() const { return num_lower_; }
  VertexId NumVertices() const { return num_upper_ + num_lower_; }
  EdgeId NumEdges() const { return static_cast<EdgeId>(edge_upper_.size()); }

  bool IsUpper(VertexId v) const { return v < num_upper_; }
  VertexId LowerGlobal(VertexId lower_local) const {
    return num_upper_ + lower_local;
  }

  VertexId Degree(VertexId v) const {
    return static_cast<VertexId>(offsets_[v + 1] - offsets_[v]);
  }

  NeighborRange Neighbors(VertexId v) const {
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }

  /// Endpoints as global vertex ids (EdgeUpper < NumUpper() <= EdgeLower).
  VertexId EdgeUpper(EdgeId e) const { return edge_upper_[e]; }
  VertexId EdgeLower(EdgeId e) const { return edge_lower_[e]; }

  /// Edges as (upper local, lower local) pairs in EdgeId order.
  std::vector<std::pair<VertexId, VertexId>> EdgeList() const;

  std::uint64_t MemoryBytes() const;

 private:
  VertexId num_upper_ = 0;
  VertexId num_lower_ = 0;
  std::vector<std::uint64_t> offsets_;  // size NumVertices() + 1
  std::vector<AdjEntry> adj_;           // size 2 * NumEdges()
  std::vector<VertexId> edge_upper_;    // global upper id per edge
  std::vector<VertexId> edge_lower_;    // global lower id per edge
};

}  // namespace bitruss

#endif  // BITRUSS_GRAPH_BIPARTITE_GRAPH_H_
