#include "graph/subgraph.h"

#include <algorithm>
#include <numeric>

#include "util/random.h"

namespace bitruss {

namespace {

// Kept[i] != 0 for a uniform sample of round(percent% * n) indices.
std::vector<std::uint8_t> SampleSide(VertexId n, unsigned percent, Rng& rng) {
  std::vector<std::uint8_t> kept(n, 0);
  if (n == 0) return kept;
  VertexId target = static_cast<VertexId>(
      (static_cast<std::uint64_t>(n) * percent + 50) / 100);
  target = std::min<VertexId>(n, std::max<VertexId>(1, target));
  std::vector<VertexId> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  for (VertexId i = 0; i < target; ++i) {  // partial Fisher-Yates
    const VertexId j = i + static_cast<VertexId>(rng.Below(n - i));
    std::swap(ids[i], ids[j]);
    kept[ids[i]] = 1;
  }
  return kept;
}

}  // namespace

BipartiteGraph InducedVertexSample(const BipartiteGraph& g, unsigned percent,
                                   std::uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
  const std::vector<std::uint8_t> keep_upper =
      SampleSide(g.NumUpper(), percent, rng);
  const std::vector<std::uint8_t> keep_lower =
      SampleSide(g.NumLower(), percent, rng);

  std::vector<VertexId> upper_map(g.NumUpper(), kInvalidVertex);
  std::vector<VertexId> lower_map(g.NumLower(), kInvalidVertex);
  VertexId nu = 0, nl = 0;
  for (VertexId u = 0; u < g.NumUpper(); ++u) {
    if (keep_upper[u]) upper_map[u] = nu++;
  }
  for (VertexId l = 0; l < g.NumLower(); ++l) {
    if (keep_lower[l]) lower_map[l] = nl++;
  }

  std::vector<std::pair<VertexId, VertexId>> edges;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    const VertexId u = g.EdgeUpper(e);
    const VertexId l = g.EdgeLower(e) - g.NumUpper();
    if (keep_upper[u] && keep_lower[l]) {
      edges.emplace_back(upper_map[u], lower_map[l]);
    }
  }
  return BipartiteGraph(nu, nl, std::move(edges));
}

BipartiteGraph EdgeMaskSubgraph(const BipartiteGraph& g,
                                const std::vector<std::uint8_t>& keep,
                                std::vector<EdgeId>* edge_origin) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  if (edge_origin != nullptr) edge_origin->clear();
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (!keep[e]) continue;
    // Iterating by ascending EdgeId yields lexicographic endpoint order, the
    // same order the constructor assigns — so positions map 1:1.
    edges.emplace_back(g.EdgeUpper(e), g.EdgeLower(e) - g.NumUpper());
    if (edge_origin != nullptr) edge_origin->push_back(e);
  }
  return BipartiteGraph(g.NumUpper(), g.NumLower(), std::move(edges));
}

}  // namespace bitruss
