// Subgraph extraction utilities (Figure 12's scalability protocol).

#ifndef BITRUSS_GRAPH_SUBGRAPH_H_
#define BITRUSS_GRAPH_SUBGRAPH_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"

namespace bitruss {

/// Induced subgraph on a uniform sample of `percent`% of the upper and
/// `percent`% of the lower vertices (rounded, at least one per side when
/// the side is non-empty).  Kept vertices are re-indexed compactly, so the
/// result is a standalone graph.  Deterministic in (g, percent, seed).
BipartiteGraph InducedVertexSample(const BipartiteGraph& g, unsigned percent,
                                   std::uint64_t seed);

/// Subgraph keeping exactly the edges with keep[e] != 0.  Vertex ids are
/// preserved (no re-indexing).  When `edge_origin` is non-null it receives,
/// for each edge of the result in EdgeId order, the originating EdgeId in g
/// (well-defined because edge ids follow lexicographic endpoint order).
BipartiteGraph EdgeMaskSubgraph(const BipartiteGraph& g,
                                const std::vector<std::uint8_t>& keep,
                                std::vector<EdgeId>* edge_origin = nullptr);

}  // namespace bitruss

#endif  // BITRUSS_GRAPH_SUBGRAPH_H_
