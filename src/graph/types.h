// Core integral types shared across the bitruss library.
//
// 32-bit ids keep the CSR arrays and BE-Index compact; the target workloads
// (Section VI scale and the ROADMAP's scaled-up successors) stay well under
// 2^32 vertices/edges per shard.  Aggregate counters (butterfly totals,
// update counts, byte sizes) are always 64-bit.

#ifndef BITRUSS_GRAPH_TYPES_H_
#define BITRUSS_GRAPH_TYPES_H_

#include <cstdint>

namespace bitruss {

using VertexId = std::uint32_t;
using EdgeId = std::uint32_t;

/// Per-edge butterfly support / bitruss number.  A single edge (u, v) is in
/// at most (d(u)-1)*(d(v)-1) butterflies, which fits 32 bits at our scales.
using SupportT = std::uint32_t;

using BloomId = std::uint32_t;
using WedgeId = std::uint32_t;

constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);
constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

}  // namespace bitruss

#endif  // BITRUSS_GRAPH_TYPES_H_
