#include "graph/vertex_priority.h"

#include <algorithm>
#include <numeric>

namespace bitruss {

VertexPriority VertexPriority::Compute(const BipartiteGraph& g,
                                       PriorityRule rule) {
  const VertexId n = g.NumVertices();
  VertexPriority p;
  p.order_.resize(n);
  std::iota(p.order_.begin(), p.order_.end(), 0);
  if (rule == PriorityRule::kDegreeThenId) {
    std::sort(p.order_.begin(), p.order_.end(), [&](VertexId a, VertexId b) {
      const VertexId da = g.Degree(a), db = g.Degree(b);
      if (da != db) return da > db;
      return a > b;
    });
  } else {
    std::sort(p.order_.begin(), p.order_.end(),
              [](VertexId a, VertexId b) { return a > b; });
  }
  p.rank_.resize(n);
  for (VertexId r = 0; r < n; ++r) p.rank_[p.order_[r]] = r;
  return p;
}

PriorityAdjacency::PriorityAdjacency(const BipartiteGraph& g,
                                     const VertexPriority& priority) {
  const VertexId n = g.NumVertices();
  offsets_.assign(n + 1, 0);
  for (VertexId r = 0; r < n; ++r) {
    offsets_[r + 1] = offsets_[r] + g.Degree(priority.VertexAtRank(r));
  }
  entries_.resize(offsets_[n]);
  for (VertexId r = 0; r < n; ++r) {
    Entry* out = entries_.data() + offsets_[r];
    for (const auto& [neighbor, edge] : g.Neighbors(priority.VertexAtRank(r))) {
      *out++ = {priority.Rank(neighbor), edge};
    }
    std::sort(entries_.data() + offsets_[r], out,
              [](const Entry& a, const Entry& b) { return a.rank < b.rank; });
  }
}

const PriorityAdjacency::Entry* PriorityAdjacency::FirstBelowPriority(
    VertexId r, VertexId bound) const {
  const Range range = Neighbors(r);
  return std::partition_point(
      range.begin(), range.end(),
      [bound](const Entry& e) { return e.rank <= bound; });
}

std::uint64_t PriorityAdjacency::MemoryBytes() const {
  return offsets_.size() * sizeof(std::uint64_t) +
         entries_.size() * sizeof(Entry);
}

}  // namespace bitruss
