// Vertex priority order (Definition 7 of Wang et al., ICDE'20) and the
// priority-sorted adjacency used by butterfly counting and the BE-Index
// builder.
//
// Ranking vertices by (degree, id) bounds the number of priority-obeyed
// wedges — and with it counting time, index build time, and index size —
// by O(sum_{(u,v) in E} min{d(u), d(v)}).  Any total order is correct
// (Lemma 3 holds regardless); kIdOnly exists for the ablation bench.

#ifndef BITRUSS_GRAPH_VERTEX_PRIORITY_H_
#define BITRUSS_GRAPH_VERTEX_PRIORITY_H_

#include <cstdint>
#include <vector>

#include "graph/bipartite_graph.h"
#include "graph/types.h"

namespace bitruss {

enum class PriorityRule {
  kDegreeThenId,  ///< higher degree first, ties broken by higher id (paper)
  kIdOnly,        ///< higher id first (ablation baseline)
};

/// A total order on vertices.  Rank 0 is the HIGHEST priority vertex.
class VertexPriority {
 public:
  static VertexPriority Compute(const BipartiteGraph& g,
                                PriorityRule rule = PriorityRule::kDegreeThenId);

  VertexId NumVertices() const { return static_cast<VertexId>(rank_.size()); }
  /// Rank of vertex v (0 = highest priority).
  VertexId Rank(VertexId v) const { return rank_[v]; }
  /// Vertex holding rank r.
  VertexId VertexAtRank(VertexId r) const { return order_[r]; }

 private:
  std::vector<VertexId> rank_;
  std::vector<VertexId> order_;
};

/// Rank-indexed adjacency: for every vertex (addressed by its rank), the
/// neighbor list stores (neighbor rank, edge id) sorted by ascending rank,
/// i.e. descending priority.  Wedge enumerations binary-search the first
/// neighbor below a given priority and scan the suffix.
class PriorityAdjacency {
 public:
  struct Entry {
    VertexId rank;  ///< neighbor's rank
    EdgeId edge;
  };

  struct Range {
    const Entry* first;
    const Entry* last;
    const Entry* begin() const { return first; }
    const Entry* end() const { return last; }
    std::size_t size() const { return static_cast<std::size_t>(last - first); }
  };

  PriorityAdjacency(const BipartiteGraph& g, const VertexPriority& priority);

  VertexId NumVertices() const {
    return static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Neighbors of the vertex at rank r, ascending by neighbor rank.
  Range Neighbors(VertexId r) const {
    return {entries_.data() + offsets_[r], entries_.data() + offsets_[r + 1]};
  }

  /// First neighbor of rank-r's list whose rank is strictly greater than
  /// `bound` (all ranks are distinct, so >= bound+1 equals > bound).
  const Entry* FirstBelowPriority(VertexId r, VertexId bound) const;

  std::uint64_t MemoryBytes() const;

 private:
  std::vector<std::uint64_t> offsets_;
  std::vector<Entry> entries_;
};

}  // namespace bitruss

#endif  // BITRUSS_GRAPH_VERTEX_PRIORITY_H_
