#include "obs/admin_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace bitruss::obs {

namespace {

using Clock = std::chrono::steady_clock;

// Stop() latency bound: the listener re-checks the stop flag at least this
// often while no connection arrives.
constexpr int kAcceptPollMs = 50;
// Per-poll I/O bound and the grace given to the response write once the
// request deadline has already been spent reading the request.
constexpr int kIoPollMs = 2000;

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 431: return "Request Header Fields Too Large";
    default: return "Internal Server Error";
  }
}

// Milliseconds to give the next poll(): the time left to `deadline`,
// capped at kIoPollMs; <= 0 once the deadline has passed.
int PollTimeoutMs(Clock::time_point deadline) {
  const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
                             deadline - Clock::now())
                             .count();
  return static_cast<int>(
      std::min<long long>(remaining, static_cast<long long>(kIoPollMs)));
}

bool SendAll(int fd, const std::string& data, Clock::time_point deadline) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const int wait = PollTimeoutMs(deadline);
    if (wait <= 0) return false;
    pollfd pfd{fd, POLLOUT, 0};
    const int ready = ::poll(&pfd, 1, wait);
    if (ready < 0 && errno == EINTR) continue;
    if (ready < 0) return false;
    if (ready == 0) continue;  // deadline re-checked at the loop top
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

AdminServer::AdminServer(AdminServerOptions options) : options_(options) {}

AdminServer::~AdminServer() { Stop(); }

void AdminServer::Handle(const std::string& path, Handler handler) {
  MutexLock lock(mu_);
  handlers_[path] = std::move(handler);
}

Status AdminServer::Start() {
  MutexLock lock(mu_);
  if (started_) {
    return FailedPreconditionError("AdminServer already started");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return InternalError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string message = std::string("bind: ") + std::strerror(errno);
    ::close(fd);
    return InternalError(message);
  }
  if (::listen(fd, 16) < 0) {
    const std::string message = std::string("listen: ") + std::strerror(errno);
    ::close(fd);
    return InternalError(message);
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    const std::string message =
        std::string("getsockname: ") + std::strerror(errno);
    ::close(fd);
    return InternalError(message);
  }

  listen_fd_ = fd;
  port_.store(ntohs(bound.sin_port), std::memory_order_release);
  stopping_.store(false, std::memory_order_release);
  started_ = true;
  // The fd travels by value: ListenLoop never touches the guarded
  // listen_fd_ member, and Stop() joins the thread before closing it.
  listener_ = std::thread(&AdminServer::ListenLoop, this, fd);
  return OkStatus();
}

void AdminServer::Stop() {
  // Join outside the lock: the listener's ServeConnection takes mu_ to
  // look up handlers, so joining under mu_ could deadlock.
  std::thread to_join;
  {
    MutexLock lock(mu_);
    if (!started_) return;
    started_ = false;
    stopping_.store(true, std::memory_order_release);
    to_join = std::move(listener_);
  }
  if (to_join.joinable()) to_join.join();
  {
    MutexLock lock(mu_);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }
  port_.store(0, std::memory_order_release);
}

void AdminServer::ListenLoop(int listen_fd) {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, kAcceptPollMs);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int client = ::accept(listen_fd, nullptr, nullptr);
    if (client < 0) continue;
    ServeConnection(client);
    ::close(client);
  }
}

void AdminServer::ServeConnection(int client_fd) {
  // Read until the end of the header block (we never accept bodies),
  // bounded in BYTES (431 past max_request_bytes) and in TIME (408 once
  // the whole-request deadline expires) — a trickling or oversized client
  // gets a definite answer instead of wedging the listener.
  const Clock::time_point deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(
                             options_.request_deadline_seconds));
  std::string request;
  bool oversize = false;
  bool timed_out = false;
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    if (request.size() >= options_.max_request_bytes) {
      oversize = true;
      break;
    }
    const int wait = PollTimeoutMs(deadline);
    if (wait <= 0) {
      timed_out = true;
      break;
    }
    pollfd pfd{client_fd, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, wait);
    if (ready < 0 && errno == EINTR) continue;
    if (ready < 0) return;
    if (ready == 0) continue;  // deadline re-checked at the loop top
    char buffer[1024];
    const ssize_t n = ::recv(client_fd, buffer, sizeof(buffer), 0);
    if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
    if (n <= 0) break;
    request.append(buffer, static_cast<std::size_t>(n));
  }

  AdminResponse response;
  const std::size_t line_end = request.find("\r\n");
  const std::string line =
      line_end == std::string::npos ? request : request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string::npos
                              ? std::string::npos
                              : line.find(' ', sp1 + 1);
  if (oversize) {
    response = {431, "text/plain; charset=utf-8",
                "request headers exceed " +
                    std::to_string(options_.max_request_bytes) + " bytes\n"};
  } else if (timed_out) {
    response = {408, "text/plain; charset=utf-8",
                "request not completed within the deadline\n"};
  } else if (sp1 == std::string::npos || sp2 == std::string::npos) {
    response = {400, "text/plain; charset=utf-8", "malformed request line\n"};
  } else if (line.substr(0, sp1) != "GET") {
    response = {405, "text/plain; charset=utf-8", "only GET is supported\n"};
  } else {
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::size_t query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    // Copy the handler out under the lock, invoke it unlocked: handlers
    // may take their own time (snapshot formatting) and must not hold up
    // concurrent Handle() registrations.
    Handler handler;
    {
      MutexLock lock(mu_);
      const auto it = handlers_.find(path);
      if (it != handlers_.end()) handler = it->second;
    }
    if (!handler) {
      response = {404, "text/plain; charset=utf-8",
                  "no handler for " + path + "\n"};
    } else {
      response = handler();
    }
  }

  std::string out = "HTTP/1.0 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  // The response write gets a fresh short grace even when the request
  // deadline is already spent (a 408 the client never sees is useless);
  // total connection time stays bounded by deadline + kIoPollMs per poll.
  SendAll(client_fd, out, Clock::now() + std::chrono::milliseconds(kIoPollMs));
  requests_served_.fetch_add(1, std::memory_order_acq_rel);
}

void RegisterStandardEndpoints(AdminServer* server, MetricsRegistry* registry,
                               TraceRecorder* trace) {
  server->Handle("/metrics", [registry] {
    return AdminResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                         ExportPrometheus(registry->Snapshot())};
  });
  server->Handle("/metrics.json", [registry] {
    return AdminResponse{200, "application/json",
                         ExportJson(registry->Snapshot())};
  });
  server->Handle("/tracez", [trace] {
    if (trace == nullptr) {
      return AdminResponse{404, "text/plain; charset=utf-8",
                           "no trace recorder attached\n"};
    }
    return AdminResponse{200, "application/json", trace->ToJson()};
  });
}

}  // namespace bitruss::obs
