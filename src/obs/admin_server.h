// Observability layer: embedded HTTP admin endpoint.
//
// A deliberately minimal HTTP/1.0 server — one listener thread, blocking
// accept (bounded by a poll timeout so Stop() is prompt), one request per
// connection, `Connection: close` — whose only job is to make the
// in-process observability surface scrapeable while the service runs:
//
//     obs::AdminServer admin({.port = 0});           // 0 = ephemeral
//     obs::RegisterStandardEndpoints(&admin, &obs::MetricsRegistry::Default(),
//                                    &trace);        // /metrics, /tracez, ...
//     admin.Handle("/healthz", [&] { return service.HealthJson(); ... });
//     admin.Start();
//     ... curl http://127.0.0.1:<admin.Port()>/metrics ...
//     admin.Stop();
//
// Handlers run on the listener thread, so one slow scrape delays the next
// — acceptable for an admin port (it is NOT the data plane; readers and
// the writer never touch this thread).  Handlers must therefore be
// wait-free with respect to the serving hot path: everything registered by
// RegisterStandardEndpoints only takes registry/trace snapshots.
//
// The server binds 127.0.0.1 only: this is an operator port, not a public
// listener; anything else belongs behind a real HTTP stack.  No deps
// beyond POSIX sockets.

#ifndef BITRUSS_OBS_ADMIN_SERVER_H_
#define BITRUSS_OBS_ADMIN_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "util/status.h"
#include "util/sync.h"

namespace bitruss::obs {

class MetricsRegistry;
class TraceRecorder;

struct AdminServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  /// back with Port() after Start()).
  int port = 0;
  /// Total header-block byte cap; a request that exceeds it before its
  /// blank line is answered 431 without reading further (an admin scrape
  /// is one short GET — anything bigger is a mistake or abuse).
  std::size_t max_request_bytes = 8192;
  /// Whole-request wall deadline covering the header read; a client that
  /// connects and trickles (or never finishes) its request is answered
  /// 408 when this expires instead of wedging the single listener thread.
  /// The response write gets its own short I/O grace on top.
  double request_deadline_seconds = 5.0;
};

/// What a handler hands back; the server adds the status line,
/// Content-Type, Content-Length and Connection headers.
struct AdminResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class AdminServer {
 public:
  /// Produces the response for one GET request.  Runs on the listener
  /// thread; must be safe to call concurrently with the rest of the
  /// process (snapshot reads, no blocking on the serving hot path).
  using Handler = std::function<AdminResponse()>;

  explicit AdminServer(AdminServerOptions options = {});
  AdminServer(const AdminServer&) = delete;
  AdminServer& operator=(const AdminServer&) = delete;
  /// Stops the server if still running.
  ~AdminServer();

  /// Registers `handler` for exact-match `path` (query strings are
  /// stripped before matching).  Thread-safe; may be called before or
  /// after Start() (the listener copies the handler under the lock per
  /// request, so registration never races a dispatch).
  void Handle(const std::string& path, Handler handler);

  /// Binds, listens, and starts the listener thread.  kInternal on any
  /// socket-layer failure (the error message carries errno); calling
  /// Start() twice returns kFailedPrecondition.
  [[nodiscard]] Status Start();

  /// Stops the listener and joins its thread; idempotent, but Start/Stop
  /// lifecycle calls must be serialized by the caller (concurrent Stop()s
  /// would race the join).  In-flight requests finish first (one request
  /// is at most one handler call).
  void Stop();

  /// The bound port (resolved ephemeral port included); 0 before Start().
  int Port() const { return port_.load(std::memory_order_acquire); }

  /// Requests answered so far (404s/405s included).
  std::uint64_t RequestsServed() const {
    return requests_served_.load(std::memory_order_acquire);
  }

 private:
  /// The listener thread's body.  Takes the listening fd BY VALUE so the
  /// loop never reads the guarded listen_fd_ member; the fd stays valid
  /// for the loop's whole life because Stop() joins before closing it.
  void ListenLoop(int listen_fd);
  void ServeConnection(int client_fd);

  AdminServerOptions options_;  // set at construction, const thereafter

  mutable Mutex mu_;
  std::map<std::string, Handler> handlers_ GUARDED_BY(mu_);
  bool started_ GUARDED_BY(mu_) = false;
  int listen_fd_ GUARDED_BY(mu_) = -1;
  // Started by Start() and moved out (then joined) by exactly one Stop()
  // caller, both under mu_; the join itself runs unlocked.
  std::thread listener_ GUARDED_BY(mu_);

  // Ordering: release-stored by Start()/Stop(), acquire-loaded by any
  // thread reading the bound port.
  std::atomic<int> port_{0};
  // Ordering: acq_rel increment per answered request, acquire load in the
  // accessor (a monotonic tally, ordered so tests see served responses).
  std::atomic<std::uint64_t> requests_served_{0};
  // Ordering: release-stored by Stop(), acquire-polled by the listener
  // between accepts — the one flag read outside mu_ on the listener's
  // hot loop.
  std::atomic<bool> stopping_{false};
};

/// Wires the standard observability endpoints onto `server` (any time —
/// registration is safe before or after Start()):
///   /metrics       Prometheus text exposition of `registry`
///   /metrics.json  ExportJson of the same snapshot
///   /tracez        TraceRecorder::ToJson dump (404 when `trace` is null)
/// Service-specific liveness (`/healthz`) is the caller's to register —
/// see BitrussService::HealthJson.
void RegisterStandardEndpoints(AdminServer* server, MetricsRegistry* registry,
                               TraceRecorder* trace = nullptr);

}  // namespace bitruss::obs

#endif  // BITRUSS_OBS_ADMIN_SERVER_H_
