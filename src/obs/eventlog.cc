#include "obs/eventlog.h"

#include <unistd.h>

#include <cstdio>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace bitruss::obs {

namespace {

std::string RenderNumber(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

}  // namespace

EventField::EventField(std::string k, double value)
    : key(std::move(k)), json_value(RenderNumber(value)) {}

EventField::EventField(std::string k, std::uint64_t value)
    : key(std::move(k)), json_value(std::to_string(value)) {}

EventField::EventField(std::string k, std::int64_t value)
    : key(std::move(k)), json_value(std::to_string(value)) {}

EventField::EventField(std::string k, const char* value) : key(std::move(k)) {
  AppendJsonEscaped(value, &json_value);
}

EventField::EventField(std::string k, const std::string& value)
    : key(std::move(k)) {
  AppendJsonEscaped(value, &json_value);
}

EventLog::EventLog(std::FILE* sink, EventLogOptions options)
    : options_(options),
      sink_(sink),
      registry_emitted_(MetricsRegistry::Default().GetCounter(
          "bitruss_eventlog_emitted_total")),
      registry_dropped_(MetricsRegistry::Default().GetCounter(
          "bitruss_eventlog_dropped_total")),
      tokens_(options.burst > 0 ? options.burst : 1),
      last_refill_(std::chrono::steady_clock::now()) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  sink_thread_ = std::thread(&EventLog::SinkLoop, this);
}

EventLog::EventLog(const std::string& path, EventLogOptions options)
    : EventLog(std::fopen(path.c_str(), "w"), options) {
  owns_sink_ = sink_ != nullptr;
}

EventLog::~EventLog() { Stop(); }

void EventLog::Stop() {
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  queue_cv_.NotifyAll();
  // The sink loop drains the whole queue before honoring the stop, so
  // everything accepted before this call reaches the stream.
  MutexLock join_lock(join_mu_);
  if (sink_thread_.joinable()) sink_thread_.join();
  if (sink_ != nullptr && !closed_.load(std::memory_order_acquire)) {
    std::fflush(sink_);
    if (owns_sink_) {
      // Owned file: push it to disk before closing — the event log is a
      // post-mortem artifact, so it must survive the crash that follows
      // an orderly Stop() as well as the Stop() itself.
      ::fsync(fileno(sink_));
      closed_.store(true, std::memory_order_release);
      std::fclose(sink_);
    } else {
      closed_.store(true, std::memory_order_release);
    }
  }
}

void EventLog::Emit(const std::string& event,
                    std::initializer_list<EventField> fields) {
  if (sink_ == nullptr || closed_.load(std::memory_order_acquire)) {
    dropped_.fetch_add(1, std::memory_order_acq_rel);
    registry_dropped_->Inc();
    return;
  }
  // Format outside the lock: pure string work on the caller's thread.
  const double ts = std::chrono::duration<double>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
  std::string line = "{\"ts\":";
  char ts_buffer[64];
  std::snprintf(ts_buffer, sizeof(ts_buffer), "%.6f", ts);
  line += ts_buffer;
  line += ",\"event\":";
  AppendJsonEscaped(event, &line);
  for (const EventField& field : fields) {
    line += ',';
    AppendJsonEscaped(field.key, &line);
    line += ':';
    line += field.json_value;
  }
  line += "}\n";

  {
    MutexLock lock(mu_);
    if (options_.max_events_per_second > 0) {
      const auto now = std::chrono::steady_clock::now();
      tokens_ += std::chrono::duration<double>(now - last_refill_).count() *
                 options_.max_events_per_second;
      const double cap = options_.burst > 0 ? options_.burst : 1;
      if (tokens_ > cap) tokens_ = cap;
      last_refill_ = now;
      if (tokens_ < 1) {
        dropped_.fetch_add(1, std::memory_order_acq_rel);
        registry_dropped_->Inc();
        return;
      }
      tokens_ -= 1;
    }
    if (queue_.size() >= options_.queue_capacity || stopping_) {
      dropped_.fetch_add(1, std::memory_order_acq_rel);
      registry_dropped_->Inc();
      return;
    }
    queue_.push_back(std::move(line));
  }
  queue_cv_.NotifyOne();
}

void EventLog::Flush() {
  MutexLock lock(mu_);
  // Explicit predicate loop (not a wait-lambda) so the guarded reads are
  // checked against mu_ in this function's capability set.
  while (!(queue_.empty() && !sink_busy_)) flushed_cv_.Wait(lock);
  if (sink_ != nullptr && !closed_.load(std::memory_order_acquire)) {
    std::fflush(sink_);
  }
}

void EventLog::SinkLoop() {
  std::vector<std::string> batch;
  for (;;) {
    {
      MutexLock lock(mu_);
      while (!stopping_ && queue_.empty()) queue_cv_.Wait(lock);
      if (queue_.empty() && stopping_) return;
      batch.assign(std::make_move_iterator(queue_.begin()),
                   std::make_move_iterator(queue_.end()));
      queue_.clear();
      sink_busy_ = true;
    }
    for (const std::string& line : batch) {
      std::fwrite(line.data(), 1, line.size(), sink_);
      emitted_.fetch_add(1, std::memory_order_acq_rel);
      registry_emitted_->Inc();
    }
    std::fflush(sink_);
    batch.clear();
    {
      MutexLock lock(mu_);
      sink_busy_ = false;
    }
    flushed_cv_.NotifyAll();
  }
}

}  // namespace bitruss::obs
