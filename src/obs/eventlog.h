// Observability layer: structured lifecycle event log.
//
// Metrics answer "how much / how fast"; the event log answers "what
// happened, when, with what parameters" — one JSON object per line, e.g.
//
//   {"ts":1754650000.123456,"event":"publish","version":41,"covers":2624,
//    "publish_seconds":0.00031,"staleness_updates":64}
//
// The design constraint is the single-writer serving thread: emitting an
// event must NEVER block it on I/O or on a slow consumer.  Emit() formats
// the line on the calling thread (string work only), then takes a brief
// mutex to run a token-bucket rate limiter and push into a bounded queue;
// a dedicated sink thread drains the queue to the output stream.  When
// the rate limit or the queue bound is exceeded the event is DROPPED and
// counted (DroppedEvents(), also scrapeable as
// `bitruss_eventlog_dropped_total`) — loss is explicit, stalls are
// impossible.  Lifecycle events the serving layer emits: publish,
// compaction, fallback_recompute, backpressure_reject, slow_apply.
//
// Field values are pre-rendered by the EventField constructors (numbers
// as JSON numbers, strings escaped), so Emit's formatting cost is a few
// string appends.  Events from concurrent threads interleave whole-line
// (the queue is the serialization point); within one thread, order is
// preserved.

#ifndef BITRUSS_OBS_EVENTLOG_H_
#define BITRUSS_OBS_EVENTLOG_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <initializer_list>
#include <string>
#include <thread>

#include "util/sync.h"

namespace bitruss::obs {

class Counter;

/// One key/value pair of an event; the constructor renders the value to
/// its final JSON token so Emit never revisits it.
struct EventField {
  EventField(std::string k, double value);
  EventField(std::string k, std::uint64_t value);
  EventField(std::string k, std::int64_t value);
  EventField(std::string k, int value)
      : EventField(std::move(k), static_cast<std::int64_t>(value)) {}
  EventField(std::string k, const char* value);
  EventField(std::string k, const std::string& value);

  std::string key;
  std::string json_value;
};

struct EventLogOptions {
  /// Events buffered for the sink thread; Emit drops (and counts) when
  /// the queue is full rather than waiting for the sink.
  std::size_t queue_capacity = 1024;
  /// Token-bucket rate limit in events/second (0 = unlimited) with
  /// `burst` tokens of headroom; events beyond the rate are dropped and
  /// counted, which bounds both log volume and Emit's amortized cost
  /// under an event storm.
  double max_events_per_second = 2000;
  double burst = 256;
};

class EventLog {
 public:
  /// Writes to `sink` (NOT owned — stderr is a fine choice); a null sink
  /// drops everything (counted), so a disabled log needs no branching at
  /// call sites.
  explicit EventLog(std::FILE* sink, EventLogOptions options = {});
  /// Opens `path` for writing (truncates); on failure the log behaves as
  /// if constructed with a null sink.
  explicit EventLog(const std::string& path, EventLogOptions options = {});

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Equivalent to Stop().
  ~EventLog();

  /// Orderly shutdown: stops intake (later Emits drop, counted), drains
  /// everything already queued, joins the sink thread, then flushes and —
  /// for an owned file — fsyncs before closing, so every event accepted
  /// before the call survives even a crash right after it.  Idempotent
  /// and safe to race with the destructor (join_mu_ serializes them).
  void Stop();

  /// Enqueues `{"ts":...,"event":"<event>",<fields>}`; wall-clock ts with
  /// microsecond resolution.  Never blocks on I/O; thread-safe.
  void Emit(const std::string& event, std::initializer_list<EventField> fields);

  /// Blocks until everything queued before the call is written (tests and
  /// orderly shutdown; NOT for the serving thread).
  void Flush();

  std::uint64_t EmittedEvents() const {
    return emitted_.load(std::memory_order_acquire);
  }
  std::uint64_t DroppedEvents() const {
    return dropped_.load(std::memory_order_acquire);
  }

 private:
  void SinkLoop();

  // Set in the constructors before the sink thread starts, constant
  // afterwards — no guard needed (the thread creation publishes them).
  EventLogOptions options_;
  std::FILE* sink_;       // null: drop-only mode
  bool owns_sink_ = false;

  // Ordering: acq_rel increments paired with acquire loads in the
  // accessors, so a thread that observed an event's side effects also
  // observes it counted.
  std::atomic<std::uint64_t> emitted_{0};
  std::atomic<std::uint64_t> dropped_{0};
  // Process-wide mirrors in MetricsRegistry::Default()
  // (`bitruss_eventlog_{emitted,dropped}_total`): registry-owned, cached
  // once in the constructor, aggregated across every EventLog instance.
  Counter* registry_emitted_;
  Counter* registry_dropped_;
  // Ordering: release-stored by Stop() after the owned sink is closed,
  // acquire-loaded by Flush/Emit so neither touches a dead FILE*.
  std::atomic<bool> closed_{false};

  Mutex mu_;
  CondVar queue_cv_;    // sink waits for work/stop
  CondVar flushed_cv_;  // Flush waits for quiescence
  std::deque<std::string> queue_ GUARDED_BY(mu_);
  double tokens_ GUARDED_BY(mu_);
  std::chrono::steady_clock::time_point last_refill_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  bool sink_busy_ GUARDED_BY(mu_) = false;

  Mutex join_mu_;  // serializes the sink join + close across Stop races
  // Started last in the constructor (unguarded writes there are safe: the
  // object is not yet shared), joined by exactly one Stop() caller under
  // join_mu_.
  std::thread sink_thread_ GUARDED_BY(join_mu_);
};

}  // namespace bitruss::obs

#endif  // BITRUSS_OBS_EVENTLOG_H_
