#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>

#include "util/memory_tracker.h"

namespace bitruss::obs {

namespace {

// %g keeps bucket bounds like 1, 0.5, 1e+06 readable and round-trippable
// for the golden exposition tests; sums get enough digits to be useful
// without drowning the text format in noise.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

}  // namespace

void AppendJsonEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  // Value-initialized array: every bucket starts at 0 (std::atomic's
  // default constructor would leave them indeterminate before C++20).
  buckets_.reset(new std::atomic<std::uint64_t>[bounds_.size() + 1]());
}

void Histogram::Observe(double value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + value,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::MergeFrom(const Histogram& other) {
  if (other.Bounds() != bounds_) return;
  for (std::size_t i = 0; i < NumBuckets(); ++i) {
    buckets_[i].fetch_add(other.BucketCount(i), std::memory_order_relaxed);
  }
  count_.fetch_add(other.TotalCount(), std::memory_order_relaxed);
  const double add = other.Sum();
  double sum = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(sum, sum + add,
                                     std::memory_order_relaxed)) {
  }
}

HistogramSample Histogram::Sample(std::string name) const {
  HistogramSample sample;
  sample.name = std::move(name);
  sample.bounds = bounds_;
  sample.bucket_counts.reserve(NumBuckets());
  for (std::size_t i = 0; i < NumBuckets(); ++i) {
    sample.bucket_counts.push_back(BucketCount(i));
  }
  sample.count = TotalCount();
  sample.sum = Sum();
  return sample;
}

double HistogramSample::Quantile(double q) const {
  if (count == 0 || bucket_counts.empty()) return 0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  const double rank = q * static_cast<double>(count);
  double cumulative = 0;
  for (std::size_t i = 0; i < bucket_counts.size(); ++i) {
    const double in_bucket = static_cast<double>(bucket_counts[i]);
    if (cumulative + in_bucket < rank && i + 1 < bucket_counts.size()) {
      cumulative += in_bucket;
      continue;
    }
    if (i >= bounds.size()) {
      // Rank falls in the +Inf bucket: no upper bound to interpolate
      // against, so clamp to the largest finite bound (the best estimate
      // the bucket layout can give).
      return bounds.empty() ? 0 : bounds.back();
    }
    if (in_bucket == 0) return bounds[i];
    const double lower = i == 0 ? 0.0 : bounds[i - 1];
    const double fraction = (rank - cumulative) / in_bucket;
    return lower + (bounds[i] - lower) * fraction;
  }
  return bounds.empty() ? 0 : bounds.back();
}

HistogramSample SubtractHistogramSample(const HistogramSample& after,
                                        const HistogramSample& before) {
  if (after.bounds != before.bounds ||
      after.bucket_counts.size() != before.bucket_counts.size()) {
    return after;
  }
  HistogramSample delta = after;
  for (std::size_t i = 0; i < delta.bucket_counts.size(); ++i) {
    const std::uint64_t b = before.bucket_counts[i];
    delta.bucket_counts[i] =
        after.bucket_counts[i] > b ? after.bucket_counts[i] - b : 0;
  }
  delta.count = after.count > before.count ? after.count - before.count : 0;
  delta.sum = after.sum > before.sum ? after.sum - before.sum : 0;
  return delta;
}

std::vector<double> ExponentialBuckets(double start, double factor,
                                       std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  double bound = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(bound);
    bound *= factor;
  }
  return bounds;
}

std::vector<double> LinearBuckets(double start, double width,
                                  std::size_t count) {
  std::vector<double> bounds;
  bounds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(start + width * static_cast<double>(i));
  }
  return bounds;
}

const CounterSample* RegistrySnapshot::FindCounter(
    const std::string& name) const {
  for (const CounterSample& s : counters) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const GaugeSample* RegistrySnapshot::FindGauge(const std::string& name) const {
  for (const GaugeSample& s : gauges) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

const HistogramSample* RegistrySnapshot::FindHistogram(
    const std::string& name) const {
  for (const HistogramSample& s : histograms) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::Default() {
  // Leaked deliberately: instrument pointers cached by call sites must
  // outlive every static destructor that could still report into them.
  static MetricsRegistry* const instance = [] {
    auto* registry = new MetricsRegistry();
    registry->AddGaugeCallback("bitruss_process_rss_bytes", [] {
      return static_cast<std::int64_t>(CurrentRssBytes());
    });
    registry->AddGaugeCallback("bitruss_process_peak_rss_bytes", [] {
      return static_cast<std::int64_t>(PeakRssBytes());
    });
    return registry;
  }();
  return *instance;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  CounterFamily& family = counters_[name];
  if (!family.owned) family.owned = std::make_unique<Counter>();
  return family.owned.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  std::unique_ptr<Gauge>& gauge = gauges_[name];
  if (!gauge) gauge = std::make_unique<Gauge>();
  return gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::vector<double>& bounds) {
  MutexLock lock(mu_);
  HistogramFamily& family = histograms_[name];
  if (!family.owned) family.owned = std::make_unique<Histogram>(bounds);
  return family.owned.get();
}

void MetricsRegistry::RegisterCounter(const std::string& name,
                                      const Counter* counter) {
  MutexLock lock(mu_);
  counters_[name].external.push_back(counter);
}

void MetricsRegistry::UnregisterCounter(const std::string& name,
                                        const Counter* counter) {
  MutexLock lock(mu_);
  const auto it = counters_.find(name);
  if (it == counters_.end()) return;
  auto& external = it->second.external;
  const auto pos = std::remove(external.begin(), external.end(), counter);
  if (pos == external.end()) return;  // was not registered
  external.erase(pos, external.end());
  // Absorb the departing instrument so family totals stay process-lifetime.
  if (!it->second.owned) it->second.owned = std::make_unique<Counter>();
  it->second.owned->Inc(counter->Value());
}

void MetricsRegistry::RegisterHistogram(const std::string& name,
                                        const Histogram* histogram) {
  MutexLock lock(mu_);
  histograms_[name].external.push_back(histogram);
}

void MetricsRegistry::UnregisterHistogram(const std::string& name,
                                          const Histogram* histogram) {
  MutexLock lock(mu_);
  const auto it = histograms_.find(name);
  if (it == histograms_.end()) return;
  auto& external = it->second.external;
  const auto pos = std::remove(external.begin(), external.end(), histogram);
  if (pos == external.end()) return;  // was not registered
  external.erase(pos, external.end());
  if (!it->second.owned) {
    it->second.owned = std::make_unique<Histogram>(histogram->Bounds());
  }
  it->second.owned->MergeFrom(*histogram);
}

std::uint64_t MetricsRegistry::AddGaugeCallback(
    const std::string& name, std::function<std::int64_t()> fn) {
  MutexLock lock(mu_);
  const std::uint64_t handle = next_handle_++;
  callbacks_.push_back({handle, name, std::move(fn)});
  return handle;
}

void MetricsRegistry::RemoveGaugeCallback(std::uint64_t handle) {
  MutexLock lock(mu_);
  callbacks_.erase(std::remove_if(callbacks_.begin(), callbacks_.end(),
                                  [handle](const GaugeCallback& cb) {
                                    return cb.handle == handle;
                                  }),
                   callbacks_.end());
}

RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snapshot;
  MutexLock lock(mu_);

  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, family] : counters_) {
    CounterSample sample;
    sample.name = name;
    if (family.owned) sample.value = family.owned->Value();
    for (const Counter* c : family.external) sample.value += c->Value();
    snapshot.counters.push_back(std::move(sample));
  }

  // Gauges: owned instruments and callbacks sum into one family per name.
  std::map<std::string, std::int64_t> gauge_values;
  for (const auto& [name, gauge] : gauges_) {
    gauge_values[name] += gauge->Value();
  }
  for (const GaugeCallback& cb : callbacks_) {
    gauge_values[cb.name] += cb.fn();
  }
  snapshot.gauges.reserve(gauge_values.size());
  for (const auto& [name, value] : gauge_values) {
    snapshot.gauges.push_back({name, value});
  }

  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, family] : histograms_) {
    HistogramSample sample;
    sample.name = name;
    const Histogram* shape =
        family.owned ? family.owned.get()
                     : (family.external.empty() ? nullptr
                                                : family.external.front());
    if (shape == nullptr) continue;
    sample.bounds = shape->Bounds();
    sample.bucket_counts.assign(shape->NumBuckets(), 0);
    const auto merge = [&sample, shape](const Histogram* h) {
      // Instances registered under one name must share the family's bucket
      // layout; anything else is a naming bug and is skipped rather than
      // merged into the wrong buckets.
      if (h->Bounds() != shape->Bounds()) return;
      for (std::size_t i = 0; i < sample.bucket_counts.size(); ++i) {
        sample.bucket_counts[i] += h->BucketCount(i);
      }
      sample.count += h->TotalCount();
      sample.sum += h->Sum();
    };
    if (family.owned) merge(family.owned.get());
    for (const Histogram* h : family.external) merge(h);
    snapshot.histograms.push_back(std::move(sample));
  }
  return snapshot;
}

std::string ExportPrometheus(const RegistrySnapshot& snapshot) {
  std::string out;
  for (const CounterSample& s : snapshot.counters) {
    out += "# TYPE " + s.name + " counter\n";
    out += s.name + " " + std::to_string(s.value) + "\n";
  }
  for (const GaugeSample& s : snapshot.gauges) {
    out += "# TYPE " + s.name + " gauge\n";
    out += s.name + " " + std::to_string(s.value) + "\n";
  }
  for (const HistogramSample& s : snapshot.histograms) {
    out += "# TYPE " + s.name + " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
      cumulative += s.bucket_counts[i];
      const std::string le =
          i < s.bounds.size() ? FormatDouble(s.bounds[i]) : "+Inf";
      out += s.name + "_bucket{le=\"" + le + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += s.name + "_sum " + FormatDouble(s.sum) + "\n";
    out += s.name + "_count " + std::to_string(s.count) + "\n";
  }
  return out;
}

std::string ExportJson(const RegistrySnapshot& snapshot) {
  std::string out = "{";
  out += "\"counters\": {";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out += ", ";
    AppendJsonEscaped(snapshot.counters[i].name, &out);
    out += ": " + std::to_string(snapshot.counters[i].value);
  }
  out += "}, \"gauges\": {";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out += ", ";
    AppendJsonEscaped(snapshot.gauges[i].name, &out);
    out += ": " + std::to_string(snapshot.gauges[i].value);
  }
  out += "}, \"histograms\": {";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSample& s = snapshot.histograms[i];
    if (i > 0) out += ", ";
    AppendJsonEscaped(s.name, &out);
    out += ": {\"bounds\": [";
    for (std::size_t b = 0; b < s.bounds.size(); ++b) {
      if (b > 0) out += ", ";
      out += FormatDouble(s.bounds[b]);
    }
    out += "], \"counts\": [";
    for (std::size_t b = 0; b < s.bucket_counts.size(); ++b) {
      if (b > 0) out += ", ";
      out += std::to_string(s.bucket_counts[b]);
    }
    out += "], \"count\": " + std::to_string(s.count);
    out += ", \"sum\": " + FormatDouble(s.sum) + "}";
  }
  out += "}}";
  return out;
}

}  // namespace bitruss::obs
