// Observability layer: process-wide metrics registry.
//
// The system spans five layers (counting, BE-Index, peeling, incremental
// maintenance, concurrent serving); this header is the one uniform way any
// of them answers "what is the process doing right now".  Three instrument
// kinds, all lock-free on the update path:
//
//   Counter    monotonic uint64; Inc() is one relaxed fetch_add.
//   Gauge      int64 level; Set/Add/MaxWith are single atomic ops.
//   Histogram  fixed bucket boundaries chosen at creation; Observe() is
//              one relaxed fetch_add on the bucket plus a CAS on the sum.
//
// Call sites fetch an instrument pointer ONCE (function-local static or a
// cached member) and hit it directly afterwards — the registry map lookup
// never sits on a hot path.  Naming convention: `bitruss_<layer>_<name>`,
// with `_total` for counters, `_seconds`/`_bytes` unit suffixes, e.g.
// `bitruss_serve_applied_total`, `bitruss_dynamic_repair_frontier_edges`.
//
// Scope model.  Registry instruments are process-wide aggregates (what a
// scrape wants).  Objects that need per-instance numbers own their
// instruments and register them with `Register*` / `Unregister*`: the
// snapshot then reports the SUM across the owned family instrument and
// every registered instance (BitrussService does exactly this, so its
// stats are kept once, not twice).  Gauge callbacks cover values that are
// cheaper to read than to maintain (queue depths, process RSS): they are
// evaluated at snapshot time and summed into the named family.
//
// `Snapshot()` is consistent per instrument (each value is one atomic
// load), not across instruments: a counter incremented between two loads
// can make e.g. histogram count and a parallel counter disagree by the
// in-flight updates.  Exporters: `ExportPrometheus()` (text exposition,
// cumulative `_bucket{le=...}` semantics) and `ExportJson()`.

#ifndef BITRUSS_OBS_METRICS_H_
#define BITRUSS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.h"

namespace bitruss::obs {

/// Monotonic counter.  Inc() is the hot-path form (relaxed); IncOrdered()
/// is an acq_rel RMW for counters that double as publication watermarks
/// (their Value() then synchronizes-with the increment, e.g. the serving
/// layer's applied-updates count that readers compare snapshots against).
class Counter {
 public:
  void Inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void IncOrdered(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_acq_rel);
  }
  std::uint64_t Value() const {
    return value_.load(std::memory_order_acquire);
  }

 private:
  // Ordering: relaxed fetch_add on the hot path (Inc); IncOrdered uses
  // acq_rel so the acquire load in Value() synchronizes-with it.
  std::atomic<std::uint64_t> value_{0};
};

/// A level that can move both ways (queue depth, bytes held).  MaxWith()
/// keeps a running maximum — the idiom for peak gauges.
class Gauge {
 public:
  void Set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  void MaxWith(std::int64_t v) {
    std::int64_t cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t Value() const {
    return value_.load(std::memory_order_acquire);
  }

 private:
  // Ordering: relaxed stores/RMWs on the update path (levels carry no
  // publication semantics); acquire load in Value() for cross-thread reads.
  std::atomic<std::int64_t> value_{0};
};

struct HistogramSample;

/// Fixed-bucket histogram.  `bounds` are ascending inclusive upper bounds
/// (Prometheus `le` semantics: value v lands in the first bucket with
/// v <= bound); one implicit +Inf bucket catches the rest, so there are
/// bounds.size() + 1 buckets.  Concurrent Observe() calls lose nothing:
/// every count is a fetch_add and the sum is a CAS loop, so totals are
/// exact whatever the interleaving.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  /// Adds every bucket count, the total count, and the sum of `other`
  /// (which must share this histogram's bounds) into this instrument; used
  /// by the registry to fold a dying external instrument into the owned
  /// family instrument.  `other` must be quiescent during the merge.
  void MergeFrom(const Histogram& other);

  /// Point-in-time copy of this instrument as a snapshot sample (one
  /// atomic load per field — same consistency contract as
  /// MetricsRegistry::Snapshot), usable with HistogramSample::Quantile
  /// without going through a registry.
  HistogramSample Sample(std::string name = {}) const;

  const std::vector<double>& Bounds() const { return bounds_; }
  std::size_t NumBuckets() const { return bounds_.size() + 1; }
  /// Count in bucket i (i == bounds().size() is the +Inf bucket).
  std::uint64_t BucketCount(std::size_t i) const {
    return buckets_[i].load(std::memory_order_acquire);
  }
  std::uint64_t TotalCount() const {
    return count_.load(std::memory_order_acquire);
  }
  double Sum() const { return sum_.load(std::memory_order_acquire); }

 private:
  std::vector<double> bounds_;
  // Ordering: all updates relaxed (counts are independent tallies, not
  // publication flags); readers use acquire loads in the accessors.
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// `count` bounds starting at `start`, each `factor` times the previous
/// (factor > 1): the standard shape for latencies and work sizes.
std::vector<double> ExponentialBuckets(double start, double factor,
                                       std::size_t count);
/// `count` bounds start, start + width, ... (width > 0).
std::vector<double> LinearBuckets(double start, double width,
                                  std::size_t count);

// ---------------------------------------------------------------------------
// Snapshot & registry
// ---------------------------------------------------------------------------

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  std::vector<double> bounds;
  /// Per-bucket (non-cumulative) counts, size bounds.size() + 1; the last
  /// entry is the +Inf bucket.
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t count = 0;
  double sum = 0;

  /// Bucket-interpolated quantile estimate (Prometheus histogram_quantile
  /// semantics): the target rank q*count is located in the cumulative
  /// bucket counts and the answer interpolated linearly inside that
  /// bucket, assuming observations spread uniformly across it.  The first
  /// bucket interpolates from 0 (observations are assumed non-negative);
  /// a rank landing in the +Inf bucket is clamped to the highest finite
  /// bound.  This is an ESTIMATE whose error is bounded by the bucket
  /// width at the quantile, not an exact order statistic.  q outside
  /// [0, 1] is clamped; an empty histogram returns 0.
  double Quantile(double q) const;
};

/// `after - before` per bucket (and count/sum), saturating at 0: the
/// distribution of observations recorded between the two snapshots of one
/// family.  The samples must share bucket bounds (`after` is returned
/// unchanged otherwise) — the idiom for per-phase quantiles out of
/// process-lifetime histograms.
HistogramSample SubtractHistogramSample(const HistogramSample& after,
                                        const HistogramSample& before);

/// Point-in-time copy of every family, each vector sorted by name.
struct RegistrySnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  const CounterSample* FindCounter(const std::string& name) const;
  const GaugeSample* FindGauge(const std::string& name) const;
  const HistogramSample* FindHistogram(const std::string& name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-global registry every library call site reports into.  It
  /// additionally carries the process gauges (`bitruss_process_rss_bytes`,
  /// `bitruss_process_peak_rss_bytes`) as snapshot-time callbacks.  Tests
  /// construct their own registries for isolation.
  static MetricsRegistry& Default();

  /// Returns the owned instrument registered under `name`, creating it on
  /// first use.  The pointer is stable for the registry's lifetime — cache
  /// it at the call site.  GetHistogram's `bounds` only matter on the
  /// creating call; later calls return the existing instrument unchanged.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name,
                          const std::vector<double>& bounds);

  /// Attaches an externally-owned instrument to the named family; the
  /// snapshot sums it with the owned instrument and every other registered
  /// instance.  The caller must Unregister* before the instrument dies;
  /// unregistration folds the instrument's final value into the family's
  /// owned instrument, so registry totals cover the whole process
  /// lifetime, not just the instruments currently alive.
  void RegisterCounter(const std::string& name, const Counter* counter);
  void UnregisterCounter(const std::string& name, const Counter* counter);
  void RegisterHistogram(const std::string& name, const Histogram* histogram);
  void UnregisterHistogram(const std::string& name,
                           const Histogram* histogram);

  /// Snapshot-time gauge: `fn` runs under the registry lock during
  /// Snapshot() (it must not call back into the registry) and its value is
  /// summed into the named gauge family.  Returns a handle for removal.
  std::uint64_t AddGaugeCallback(const std::string& name,
                                 std::function<std::int64_t()> fn);
  void RemoveGaugeCallback(std::uint64_t handle);

  RegistrySnapshot Snapshot() const;

 private:
  struct CounterFamily {
    std::unique_ptr<Counter> owned;
    std::vector<const Counter*> external;
  };
  struct HistogramFamily {
    std::unique_ptr<Histogram> owned;
    std::vector<const Histogram*> external;
  };
  struct GaugeCallback {
    std::uint64_t handle = 0;
    std::string name;
    std::function<std::int64_t()> fn;
  };

  mutable Mutex mu_;
  std::map<std::string, CounterFamily> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, HistogramFamily> histograms_ GUARDED_BY(mu_);
  std::vector<GaugeCallback> callbacks_ GUARDED_BY(mu_);
  std::uint64_t next_handle_ GUARDED_BY(mu_) = 1;
};

/// Prometheus text exposition: `# TYPE` line per family, cumulative
/// `_bucket{le="..."}` rows plus `_sum`/`_count` for histograms.
std::string ExportPrometheus(const RegistrySnapshot& snapshot);

/// `{"counters": {...}, "gauges": {...}, "histograms": {name: {"bounds":
/// [...], "counts": [...], "count": n, "sum": s}}}` — `counts` are
/// per-bucket (non-cumulative), last entry +Inf.
std::string ExportJson(const RegistrySnapshot& snapshot);

/// Appends `s` as a double-quoted JSON string (quotes included) with
/// control characters escaped; shared by the obs exporters, the event log,
/// and the admin endpoints.
void AppendJsonEscaped(const std::string& s, std::string* out);

}  // namespace bitruss::obs

#endif  // BITRUSS_OBS_METRICS_H_
