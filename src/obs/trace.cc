#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace bitruss::obs {

namespace {

using Clock = std::chrono::steady_clock;

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), epoch_(Clock::now()) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

double TraceRecorder::NowSeconds() const {
  return std::chrono::duration<double>(Clock::now() - epoch_).count();
}

int TraceRecorder::BeginSpan() {
  MutexLock lock(mu_);
  return depth_++;
}

void TraceRecorder::EndSpan(SpanRecord record) {
  MutexLock lock(mu_);
  if (depth_ > 0) --depth_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    // Ring full: overwrite the oldest slot (recorded_ mod capacity walks
    // the ring in insertion order).
    ring_[recorded_ % capacity_] = std::move(record);
  }
  ++recorded_;
}

std::vector<SpanRecord> TraceRecorder::Events() const {
  MutexLock lock(mu_);
  if (recorded_ <= capacity_) return ring_;
  std::vector<SpanRecord> ordered;
  ordered.reserve(capacity_);
  const std::size_t oldest = recorded_ % capacity_;
  ordered.insert(ordered.end(), ring_.begin() + oldest, ring_.end());
  ordered.insert(ordered.end(), ring_.begin(), ring_.begin() + oldest);
  return ordered;
}

std::uint64_t TraceRecorder::RecordedSpans() const {
  MutexLock lock(mu_);
  return recorded_;
}

std::uint64_t TraceRecorder::DroppedSpans() const {
  MutexLock lock(mu_);
  return recorded_ > capacity_ ? recorded_ - capacity_ : 0;
}

void TraceRecorder::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  recorded_ = 0;
  depth_ = 0;
}

std::string TraceRecorder::ToJson() const {
  const std::vector<SpanRecord> events = Events();
  std::string out = "{\"dropped\": " + std::to_string(DroppedSpans());
  out += ", \"spans\": [";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SpanRecord& span = events[i];
    if (i > 0) out += ", ";
    out += "{\"name\": ";
    AppendJsonString(span.name, &out);
    out += ", \"depth\": " + std::to_string(span.depth);
    out += ", \"start_seconds\": " + FormatDouble(span.start_seconds);
    out += ", \"duration_seconds\": " + FormatDouble(span.duration_seconds);
    out += ", \"notes\": {";
    for (std::size_t n = 0; n < span.notes.size(); ++n) {
      if (n > 0) out += ", ";
      AppendJsonString(span.notes[n].first, &out);
      out += ": " + FormatDouble(span.notes[n].second);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string TraceRecorder::IndentedSummary() const {
  std::vector<SpanRecord> events = Events();
  // Spans land in the ring at END time; a flame view wants start order.
  // stable_sort keeps end-time order for identical starts, which puts a
  // parent after a zero-length child only in the degenerate tie case.
  std::stable_sort(events.begin(), events.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     return a.start_seconds != b.start_seconds
                                ? a.start_seconds < b.start_seconds
                                : a.depth < b.depth;
                   });
  std::string out = "trace: " + std::to_string(events.size()) + " spans (" +
                    std::to_string(DroppedSpans()) + " dropped)\n";
  for (const SpanRecord& span : events) {
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "  [%9.4fs] ", span.start_seconds);
    out += prefix;
    out.append(static_cast<std::size_t>(span.depth) * 2, ' ');
    out += span.name + " " + FormatDouble(span.duration_seconds) + "s";
    for (const auto& [key, value] : span.notes) {
      out += "  " + key + "=" + FormatDouble(value);
    }
    out += "\n";
  }
  return out;
}

ObsSpan::ObsSpan(TraceRecorder* recorder, std::string name)
    : recorder_(recorder), started_(std::chrono::steady_clock::now()) {
  if (recorder_ == nullptr) return;
  record_.name = std::move(name);
  record_.depth = recorder_->BeginSpan();
  record_.start_seconds = recorder_->NowSeconds();
}

void ObsSpan::Note(std::string key, double value) {
  if (recorder_ == nullptr) return;
  record_.notes.emplace_back(std::move(key), value);
}

double ObsSpan::Seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       started_)
      .count();
}

void ObsSpan::End() {
  if (recorder_ == nullptr) return;
  record_.duration_seconds = Seconds();
  recorder_->EndSpan(std::move(record_));
  recorder_ = nullptr;
}

}  // namespace bitruss::obs
