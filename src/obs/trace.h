// Observability layer: lightweight phase tracing.
//
// The paper's own evaluation is phase-structured (Fig. 5's BiT-BS
// counting/peeling breakdown, Fig. 8's PC theta-ladder trace); this header
// makes those phases first-class at runtime instead of per-bench timers.
// An `ObsSpan` is an RAII scope that records its name, wall time, and any
// numeric notes into a `TraceRecorder`'s bounded ring when it ends:
//
//     void RunPC(...) {
//       obs::ObsSpan round(options.trace, "pc/round");   // null trace: no-op
//       round.Note("theta", theta);
//       ... the round's work ...
//     }                                                  // recorded here
//
// Spans record at END time, so the ring is ordered by completion (a parent
// lands after its children); `IndentedSummary()` re-sorts by start time
// for a flame-style view.  The ring is bounded: once full, the oldest
// record is overwritten and `DroppedSpans()` counts the loss — tracing
// never grows without bound and never fails.
//
// Concurrency: Record/Events/dumps are mutex-guarded and safe from any
// thread, but the nesting DEPTH is a single recorder-wide counter — spans
// are meant to be opened by one orchestrating thread at a time (the
// decompose/peel drivers do exactly this; parallel worker chunks are
// covered by the enclosing phase span, not per-chunk spans).

#ifndef BITRUSS_OBS_TRACE_H_
#define BITRUSS_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/sync.h"

namespace bitruss::obs {

/// One completed span.
struct SpanRecord {
  std::string name;
  int depth = 0;               ///< nesting depth when the span opened
  double start_seconds = 0;    ///< relative to the recorder's construction
  double duration_seconds = 0;
  std::vector<std::pair<std::string, double>> notes;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t capacity = 1024);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  std::size_t Capacity() const { return capacity_; }
  /// Completed spans, oldest to newest (end-time order); at most
  /// Capacity() entries, the newest survive.
  std::vector<SpanRecord> Events() const;
  /// Spans ever recorded, including ones since overwritten.
  std::uint64_t RecordedSpans() const;
  /// Spans overwritten by ring wrap-around (RecordedSpans() - kept).
  std::uint64_t DroppedSpans() const;
  void Clear();

  /// {"dropped": n, "spans": [{"name", "depth", "start_seconds",
  /// "duration_seconds", "notes": {...}}, ...]}
  std::string ToJson() const;
  /// Flame-style text: one line per span in start order, indented by
  /// nesting depth, with duration and notes.
  std::string IndentedSummary() const;

  // -- ObsSpan plumbing ------------------------------------------------------
  double NowSeconds() const;
  int BeginSpan();
  void EndSpan(SpanRecord record);

 private:
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable Mutex mu_;
  std::vector<SpanRecord> ring_ GUARDED_BY(mu_);
  std::uint64_t recorded_ GUARDED_BY(mu_) = 0;
  int depth_ GUARDED_BY(mu_) = 0;
};

/// RAII phase scope.  A null recorder makes every operation a no-op, so
/// instrumented code paths cost nothing when tracing is off.
class ObsSpan {
 public:
  ObsSpan(TraceRecorder* recorder, std::string name);
  ~ObsSpan() { End(); }

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

  /// Attaches a numeric annotation (counters, sizes) to the record.
  void Note(std::string key, double value);
  /// Seconds since the span opened.
  double Seconds() const;
  /// Records the span now; later End()/destruction does nothing.
  void End();

 private:
  TraceRecorder* recorder_;  // null after End()
  SpanRecord record_;
  std::chrono::steady_clock::time_point started_;
};

}  // namespace bitruss::obs

#endif  // BITRUSS_OBS_TRACE_H_
