#include "persist/crc32c.h"

#include <array>

namespace bitruss::persist {

namespace {

std::array<std::uint32_t, 256> BuildTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint32_t Crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = BuildTable();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xFFu];
  }
  return ~crc;
}

}  // namespace bitruss::persist
