// CRC32C (Castagnoli) checksum for the persistence layer's on-disk
// integrity checks (WAL records, snapshot payloads).
//
// Software slice-by-one with a lazily built 256-entry table: a few hundred
// MB/s, plenty for record-sized inputs on the durability path where fsync
// dominates anyway.  Reflected polynomial 0x82F63B78, matching the
// standard CRC32C everyone else (RFC 3720, leveldb, kernel) computes, so
// files stay verifiable with external tooling.

#ifndef BITRUSS_PERSIST_CRC32C_H_
#define BITRUSS_PERSIST_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace bitruss::persist {

/// CRC32C of `size` bytes at `data`.  `seed` chains incremental computes:
/// Crc32c(b, nb, Crc32c(a, na)) == Crc32c(ab, na + nb).
std::uint32_t Crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

}  // namespace bitruss::persist

#endif  // BITRUSS_PERSIST_CRC32C_H_
