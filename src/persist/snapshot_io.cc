#include "persist/snapshot_io.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "persist/crc32c.h"
#include "persist/wal.h"  // StampedPath / ListStampedFiles
#include "util/fault_injection.h"

namespace bitruss::persist {

namespace {

constexpr char kSnapshotMagic[8] = {'B', 'T', 'S', 'N', 'A', 'P', '0', '1'};
constexpr std::uint32_t kFormatVersion = 1;
constexpr const char* kSnapshotPrefix = "snapshot-";
constexpr const char* kSnapshotSuffix = ".snap";
constexpr std::size_t kFileHeaderBytes = 8 + 4 + 8 + 4;

Status ErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

void AppendU32(std::vector<unsigned char>* out, std::uint32_t v) {
  out->push_back(static_cast<unsigned char>(v));
  out->push_back(static_cast<unsigned char>(v >> 8));
  out->push_back(static_cast<unsigned char>(v >> 16));
  out->push_back(static_cast<unsigned char>(v >> 24));
}

void AppendU64(std::vector<unsigned char>* out, std::uint64_t v) {
  AppendU32(out, static_cast<std::uint32_t>(v));
  AppendU32(out, static_cast<std::uint32_t>(v >> 32));
}

void AppendU32Array(std::vector<unsigned char>* out,
                    const std::vector<std::uint32_t>& values) {
  for (const std::uint32_t v : values) AppendU32(out, v);
}

std::uint32_t GetU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t GetU64(const unsigned char* p) {
  return static_cast<std::uint64_t>(GetU32(p)) |
         (static_cast<std::uint64_t>(GetU32(p + 4)) << 32);
}

/// Bounds-checked cursor over a parsed payload; Fail() poisons the reader
/// so a single ok() check at the end suffices.
class PayloadReader {
 public:
  PayloadReader(const unsigned char* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint32_t ReadU32() {
    if (!Need(4)) return 0;
    const std::uint32_t v = GetU32(data_ + off_);
    off_ += 4;
    return v;
  }

  std::uint64_t ReadU64() {
    if (!Need(8)) return 0;
    const std::uint64_t v = GetU64(data_ + off_);
    off_ += 8;
    return v;
  }

  bool ReadU32Array(std::size_t count, std::vector<std::uint32_t>* out) {
    if (!Need(count * 4)) return false;
    out->resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      (*out)[i] = GetU32(data_ + off_);
      off_ += 4;
    }
    return true;
  }

  bool ok() const { return ok_; }
  bool AtEnd() const { return ok_ && off_ == size_; }

 private:
  bool Need(std::size_t bytes) {
    if (!ok_ || size_ - off_ < bytes) {
      ok_ = false;
      return false;
    }
    return true;
  }

  const unsigned char* data_;
  std::size_t size_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

std::vector<unsigned char> EncodePayload(const StateSnapshot& snapshot) {
  std::vector<unsigned char> payload;
  payload.reserve(40 + 4 * (snapshot.upper.size() * 4 +
                            snapshot.free_slots.size()));
  AppendU64(&payload, snapshot.applied);
  AppendU32(&payload, snapshot.num_upper);
  AppendU32(&payload, snapshot.num_lower);
  AppendU64(&payload, snapshot.num_butterflies);
  AppendU32(&payload, static_cast<std::uint32_t>(snapshot.upper.size()));
  AppendU32Array(&payload, snapshot.upper);
  AppendU32Array(&payload, snapshot.lower);
  AppendU32Array(&payload, snapshot.support);
  AppendU32Array(&payload, snapshot.phi);
  AppendU32(&payload, static_cast<std::uint32_t>(snapshot.free_slots.size()));
  AppendU32Array(&payload, snapshot.free_slots);
  return payload;
}

Status DecodeFile(const std::vector<unsigned char>& buf,
                  StateSnapshot* out) {
  if (buf.size() < kFileHeaderBytes) {
    return DataLossError("snapshot file shorter than its header");
  }
  if (std::memcmp(buf.data(), kSnapshotMagic, sizeof kSnapshotMagic) != 0) {
    return DataLossError("snapshot magic mismatch");
  }
  if (GetU32(buf.data() + 8) != kFormatVersion) {
    return DataLossError("snapshot format version unsupported");
  }
  const std::uint64_t payload_len = GetU64(buf.data() + 12);
  if (payload_len != buf.size() - kFileHeaderBytes) {
    return DataLossError("snapshot payload length mismatch");
  }
  const unsigned char* payload = buf.data() + kFileHeaderBytes;
  if (Crc32c(payload, payload_len) != GetU32(buf.data() + 20)) {
    return DataLossError("snapshot payload checksum mismatch");
  }

  PayloadReader reader(payload, payload_len);
  out->applied = reader.ReadU64();
  out->num_upper = reader.ReadU32();
  out->num_lower = reader.ReadU32();
  out->num_butterflies = reader.ReadU64();
  const std::uint32_t num_slots = reader.ReadU32();
  bool shape_ok = reader.ReadU32Array(num_slots, &out->upper) &&
                  reader.ReadU32Array(num_slots, &out->lower) &&
                  reader.ReadU32Array(num_slots, &out->support) &&
                  reader.ReadU32Array(num_slots, &out->phi);
  if (shape_ok) {
    const std::uint32_t num_free = reader.ReadU32();
    shape_ok = reader.ReadU32Array(num_free, &out->free_slots);
  }
  if (!shape_ok || !reader.AtEnd()) {
    // CRC passed, so this is a malformed payload (writer bug or a
    // deliberate format attack), not bit rot — still unusable.
    return DataLossError("snapshot payload malformed despite valid checksum");
  }
  return OkStatus();
}

Status ReadWholeFile(const std::string& path,
                     std::vector<unsigned char>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoError("open " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const Status status = ErrnoError("fstat " + path);
    ::close(fd);
    return status;
  }
  out->resize(static_cast<std::size_t>(st.st_size));
  std::size_t done = 0;
  while (done < out->size()) {
    const ssize_t n = ::read(fd, out->data() + done, out->size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = ErrnoError("read " + path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;
    done += static_cast<std::size_t>(n);
  }
  out->resize(done);
  ::close(fd);
  return OkStatus();
}

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoError("open dir " + dir);
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved_errno;
    return ErrnoError("fsync dir " + dir);
  }
  return OkStatus();
}

Status WriteFully(int fd, const unsigned char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write");
    }
    if (n == 0) return InternalError("write: zero-byte progress");
    done += static_cast<std::size_t>(n);
  }
  return OkStatus();
}

}  // namespace

Status WriteSnapshotFile(const std::string& dir,
                         const StateSnapshot& snapshot) {
  const std::vector<unsigned char> payload = EncodePayload(snapshot);
  std::vector<unsigned char> file;
  file.reserve(kFileHeaderBytes + payload.size());
  file.insert(file.end(), kSnapshotMagic,
              kSnapshotMagic + sizeof kSnapshotMagic);
  AppendU32(&file, kFormatVersion);
  AppendU64(&file, payload.size());
  AppendU32(&file, Crc32c(payload.data(), payload.size()));
  file.insert(file.end(), payload.begin(), payload.end());

  const std::string path =
      StampedPath(dir, kSnapshotPrefix, snapshot.applied, kSnapshotSuffix);
  const std::string tmp_path = path + ".tmp";

  const int fd = ::open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return ErrnoError("open " + tmp_path);
  Status st = OkStatus();
  switch (BITRUSS_FAULT_POINT("snapshot.tmp_write")) {
    case fault::FaultAction::kNone:
      break;
    case fault::FaultAction::kError:
      st = InternalError("injected fault at snapshot.tmp_write");
      break;
    case fault::FaultAction::kEnospc:
      st = InternalError(
          "injected ENOSPC (No space left on device) at fault point "
          "snapshot.tmp_write");
      break;
    case fault::FaultAction::kTornWrite: {
      const std::size_t keep =
          fault::TornKeepBytes("snapshot.tmp_write", file.size());
      (void)WriteFully(fd, file.data(), keep);  // dying regardless
      (void)::fsync(fd);
      fault::KillNow();
    }
    case fault::FaultAction::kKill:
      break;  // Hit() raises SIGKILL itself; never returned
  }
  if (st.ok()) st = WriteFully(fd, file.data(), file.size());
  if (st.ok() && ::fsync(fd) != 0) st = ErrnoError("fsync " + tmp_path);
  ::close(fd);
  if (!st.ok()) {
    (void)::unlink(tmp_path.c_str());  // best effort; the tmp is garbage
    return st;
  }

  // The rename is the commit point: kill before it and only the invisible
  // .tmp exists; kill after it and the snapshot is fully durable.
  const fault::FaultAction pre_rename =
      BITRUSS_FAULT_POINT("snapshot.pre_rename");
  if (pre_rename != fault::FaultAction::kNone) {
    (void)::unlink(tmp_path.c_str());
    if (pre_rename == fault::FaultAction::kEnospc) {
      return InternalError(
          "injected ENOSPC (No space left on device) at fault point "
          "snapshot.pre_rename");
    }
    return InternalError("injected fault at snapshot.pre_rename");
  }
  if (::rename(tmp_path.c_str(), path.c_str()) != 0) {
    const Status rename_status = ErrnoError("rename " + tmp_path);
    (void)::unlink(tmp_path.c_str());
    return rename_status;
  }
  Status dir_status = FsyncDir(dir);
  if (!dir_status.ok()) return dir_status;
  BITRUSS_FAULT_POINT_STATUS("snapshot.post_rename");
  return OkStatus();
}

StatusOr<StateSnapshot> LoadNewestSnapshot(const std::string& dir,
                                           int* corrupt_skipped) {
  if (corrupt_skipped != nullptr) *corrupt_skipped = 0;
  std::vector<std::uint64_t> stamps =
      ListStampedFiles(dir, kSnapshotPrefix, kSnapshotSuffix);
  for (auto it = stamps.rbegin(); it != stamps.rend(); ++it) {
    const std::string path =
        StampedPath(dir, kSnapshotPrefix, *it, kSnapshotSuffix);
    std::vector<unsigned char> buf;
    StateSnapshot snapshot;
    Status st = ReadWholeFile(path, &buf);
    if (st.ok()) st = DecodeFile(buf, &snapshot);
    if (st.ok() && snapshot.applied != *it) {
      st = DataLossError("snapshot filename stamp disagrees with payload");
    }
    if (st.ok()) return snapshot;
    if (corrupt_skipped != nullptr) ++*corrupt_skipped;
  }
  return Status(StatusCode::kNotFound,
                "no intact snapshot under " + dir);
}

int RemoveOldSnapshots(const std::string& dir, int keep) {
  if (keep < 0) keep = 0;
  const std::vector<std::uint64_t> stamps =
      ListStampedFiles(dir, kSnapshotPrefix, kSnapshotSuffix);
  int removed = 0;
  const std::size_t total = stamps.size();
  for (std::size_t i = 0; i + static_cast<std::size_t>(keep) < total; ++i) {
    const std::string path =
        StampedPath(dir, kSnapshotPrefix, stamps[i], kSnapshotSuffix);
    if (::unlink(path.c_str()) == 0) ++removed;
  }
  return removed;
}

}  // namespace bitruss::persist
