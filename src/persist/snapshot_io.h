// Durable point-in-time snapshots of the dynamic bitruss state.
//
// A snapshot pairs with the WAL (wal.h): it captures the full in-memory
// state — graph slots, support, phi, and the free-slot stack — as of a
// WAL sequence (`applied`), so recovery loads the newest intact snapshot
// and replays only the WAL records after it.  Files:
//
//   <dir>/snapshot-%016llx.snap    (hex value = applied sequence)
//
//   file    = magic "BTSNAP01" | u32 format_version (=1)
//           | u64 payload_len | u32 crc32c(payload) | payload
//   payload = u64 applied | u32 num_upper | u32 num_lower
//           | u64 num_butterflies | u32 num_slots
//           | u32 upper[num_slots] | u32 lower[num_slots]
//           | u32 support[num_slots] | u32 phi[num_slots]
//           | u32 num_free | u32 free_slots[num_free]
//
// Integers are little-endian.  free_slots is serialized IN STACK ORDER:
// slot reuse after restore then assigns the same slots the original
// process would have, which keeps recovered state slot-for-slot
// comparable with an oracle replay.
//
// Writes are atomic: payload goes to a ".tmp" sibling, is fsynced, and is
// renamed into place (then the directory is fsynced) — a crash leaves
// either the old set of snapshots or the old set plus one complete new
// file, never a half-written visible snapshot.  Reads verify magic,
// version, length, and checksum; LoadNewestSnapshot skips damaged files
// and falls back to older ones.  Fault points: snapshot.tmp_write,
// snapshot.pre_rename, snapshot.post_rename.

#ifndef BITRUSS_PERSIST_SNAPSHOT_IO_H_
#define BITRUSS_PERSIST_SNAPSHOT_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace bitruss::persist {

/// On-disk image of the dynamic state.  Slot arrays are parallel; a free
/// slot carries the graph's invalid-vertex marker in upper[] and lower[].
struct StateSnapshot {
  std::uint64_t applied = 0;  ///< WAL sequence this state reflects
  std::uint32_t num_upper = 0;
  std::uint32_t num_lower = 0;
  std::uint64_t num_butterflies = 0;
  std::vector<std::uint32_t> upper;
  std::vector<std::uint32_t> lower;
  std::vector<std::uint32_t> support;
  std::vector<std::uint32_t> phi;
  /// Free-slot stack, bottom first (the original push order).
  std::vector<std::uint32_t> free_slots;
};

/// Atomically writes `snapshot` as <dir>/snapshot-<applied>.snap (see the
/// header comment for the protocol).  The directory must already exist.
[[nodiscard]] Status WriteSnapshotFile(const std::string& dir,
                                       const StateSnapshot& snapshot);

/// Loads the newest (highest-applied) intact snapshot under `dir`,
/// skipping corrupt or unreadable files in favor of older ones
/// (`corrupt_skipped`, when given, counts how many were passed over).
/// kNotFound when the directory has no intact snapshot at all.
[[nodiscard]] StatusOr<StateSnapshot> LoadNewestSnapshot(
    const std::string& dir, int* corrupt_skipped = nullptr);

/// Deletes all but the `keep` newest snapshot files (best effort: unlink
/// errors are swallowed — an extra old snapshot is harmless).  Returns
/// the number removed.
int RemoveOldSnapshots(const std::string& dir, int keep);

}  // namespace bitruss::persist

#endif  // BITRUSS_PERSIST_SNAPSHOT_IO_H_
