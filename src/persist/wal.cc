#include "persist/wal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "persist/crc32c.h"
#include "util/fault_injection.h"

namespace bitruss::persist {

namespace {

constexpr char kSegmentMagic[8] = {'B', 'T', 'W', 'A', 'L', '0', '0', '1'};
constexpr const char* kSegmentPrefix = "wal-";
constexpr const char* kSegmentSuffix = ".seg";

// Explicit little-endian byte shuffles so files are portable across hosts.
void PutU32(unsigned char* p, std::uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

void PutU64(unsigned char* p, std::uint64_t v) {
  PutU32(p, static_cast<std::uint32_t>(v));
  PutU32(p + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint32_t GetU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t GetU64(const unsigned char* p) {
  return static_cast<std::uint64_t>(GetU32(p)) |
         (static_cast<std::uint64_t>(GetU32(p + 4)) << 32);
}

Status ErrnoError(const std::string& what) {
  return InternalError(what + ": " + std::strerror(errno));
}

Status WriteFully(int fd, const unsigned char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return ErrnoError("write");
    }
    if (n == 0) return InternalError("write: zero-byte progress");
    done += static_cast<std::size_t>(n);
  }
  return OkStatus();
}

/// Encodes the 25-byte on-disk record: length, payload CRC, payload.
void EncodeRecord(const WalRecord& record,
                  unsigned char out[kWalRecordBytes]) {
  unsigned char* payload = out + 8;
  PutU64(payload, record.seq);
  payload[8] = record.kind;
  PutU32(payload + 9, record.upper_local);
  PutU32(payload + 13, record.lower_local);
  PutU32(out, static_cast<std::uint32_t>(kWalRecordPayloadBytes));
  PutU32(out + 4, Crc32c(payload, kWalRecordPayloadBytes));
}

Status FsyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return ErrnoError("open dir " + dir);
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    errno = saved_errno;
    return ErrnoError("fsync dir " + dir);
  }
  return OkStatus();
}

Status ReadWholeFile(const std::string& path,
                     std::vector<unsigned char>* out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return ErrnoError("open " + path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    const Status status = ErrnoError("fstat " + path);
    ::close(fd);
    return status;
  }
  out->resize(static_cast<std::size_t>(st.st_size));
  std::size_t done = 0;
  while (done < out->size()) {
    const ssize_t n = ::read(fd, out->data() + done, out->size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      const Status status = ErrnoError("read " + path);
      ::close(fd);
      return status;
    }
    if (n == 0) break;  // truncated under us; parse what we got
    done += static_cast<std::size_t>(n);
  }
  out->resize(done);
  ::close(fd);
  return OkStatus();
}

}  // namespace

std::string StampedPath(const std::string& dir, const std::string& prefix,
                        std::uint64_t value, const std::string& suffix) {
  char stamp[17];
  std::snprintf(stamp, sizeof stamp, "%016llx",
                static_cast<unsigned long long>(value));
  return dir + "/" + prefix + stamp + suffix;
}

std::vector<std::uint64_t> ListStampedFiles(const std::string& dir,
                                            const std::string& prefix,
                                            const std::string& suffix) {
  std::vector<std::uint64_t> values;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return values;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() != prefix.size() + 16 + suffix.size()) continue;
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    if (name.compare(prefix.size() + 16, suffix.size(), suffix) != 0) continue;
    std::uint64_t value = 0;
    bool all_hex = true;
    for (std::size_t i = prefix.size(); i < prefix.size() + 16; ++i) {
      const char c = name[i];
      std::uint64_t digit = 0;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint64_t>(c - 'a') + 10;
      } else {
        all_hex = false;
        break;
      }
      value = (value << 4) | digit;
    }
    if (all_hex) values.push_back(value);
  }
  ::closedir(d);
  std::sort(values.begin(), values.end());
  return values;
}

Status ReplayWal(const std::string& dir, std::uint64_t after_seq,
                 const std::function<Status(const WalRecord&)>& fn,
                 WalReplayStats* stats_out, bool repair_torn_tail) {
  WalReplayStats local_stats;
  WalReplayStats* stats = stats_out != nullptr ? stats_out : &local_stats;
  *stats = WalReplayStats{};

  const std::vector<std::uint64_t> segment_seqs =
      ListStampedFiles(dir, kSegmentPrefix, kSegmentSuffix);
  if (segment_seqs.empty()) return OkStatus();

  std::uint64_t expected = 0;  // next raw seq across segments; 0 = unset
  for (std::size_t i = 0; i < segment_seqs.size(); ++i) {
    const bool is_final = (i + 1 == segment_seqs.size());
    const std::string path =
        StampedPath(dir, kSegmentPrefix, segment_seqs[i], kSegmentSuffix);
    std::vector<unsigned char> buf;
    Status read_status = ReadWholeFile(path, &buf);
    if (!read_status.ok()) return read_status;
    ++stats->segments_read;

    const bool header_ok =
        buf.size() >= kWalSegmentHeaderBytes &&
        std::memcmp(buf.data(), kSegmentMagic, sizeof kSegmentMagic) == 0 &&
        GetU32(buf.data() + 16) == Crc32c(buf.data() + 8, 8) &&
        GetU64(buf.data() + 8) == segment_seqs[i];
    if (!header_ok) {
      if (!is_final) {
        return DataLossError("WAL segment " + path +
                             " has a corrupt header mid-log");
      }
      // A torn CREATION of the final segment: rotation died before the
      // header landed.  Nothing in it was ever acknowledged as durable.
      ++stats->torn_records_discarded;
      stats->truncated_bytes += buf.size();
      if (repair_torn_tail && ::unlink(path.c_str()) != 0) {
        return ErrnoError("unlink torn segment " + path);
      }
      break;
    }

    const std::uint64_t first_seq = segment_seqs[i];
    if (expected != 0 && first_seq != expected) {
      return DataLossError(
          "WAL sequence gap: segment " + path + " starts at seq " +
          std::to_string(first_seq) + ", expected " + std::to_string(expected));
    }
    if (expected == 0 && first_seq > after_seq + 1) {
      return DataLossError("WAL begins at seq " + std::to_string(first_seq) +
                           " but records after seq " +
                           std::to_string(after_seq) + " are needed");
    }

    std::size_t off = kWalSegmentHeaderBytes;
    std::uint64_t next = first_seq;
    bool torn = false;
    while (off < buf.size()) {
      const std::size_t remaining = buf.size() - off;
      bool valid = remaining >= 8;
      std::uint32_t len = 0;
      if (valid) {
        len = GetU32(buf.data() + off);
        valid = (len == kWalRecordPayloadBytes) && (remaining - 8 >= len);
      }
      if (valid) {
        valid = Crc32c(buf.data() + off + 8, len) == GetU32(buf.data() + off + 4);
      }
      if (!valid) {
        if (!is_final) {
          return DataLossError("WAL segment " + path +
                               " has a corrupt record mid-log at offset " +
                               std::to_string(off));
        }
        // Torn tail of the final segment: discard from the first bad byte.
        const std::size_t tail = remaining;
        stats->torn_records_discarded +=
            (tail + kWalRecordBytes - 1) / kWalRecordBytes;
        stats->truncated_bytes += tail;
        torn = true;
        break;
      }
      const unsigned char* payload = buf.data() + off + 8;
      WalRecord record;
      record.seq = GetU64(payload);
      record.kind = payload[8];
      record.upper_local = GetU32(payload + 9);
      record.lower_local = GetU32(payload + 13);
      // A CRC-valid record with the wrong sequence cannot be a torn write;
      // acknowledged records are missing from the log.
      if (record.seq != next) {
        return DataLossError("WAL sequence gap in " + path + ": record seq " +
                             std::to_string(record.seq) + ", expected " +
                             std::to_string(next));
      }
      ++next;
      off += 8 + len;
      stats->last_seq = record.seq;
      if (record.seq > after_seq) {
        Status st = fn(record);
        if (!st.ok()) return st;
        ++stats->records_replayed;
      }
    }
    expected = next;
    if (torn && repair_torn_tail) {
      if (::truncate(path.c_str(), static_cast<off_t>(off)) != 0) {
        return ErrnoError("truncate torn tail of " + path);
      }
    }
  }
  return OkStatus();
}

WalWriter::WalWriter(std::string dir, std::uint64_t next_seq,
                     WalOptions options)
    : dir_(std::move(dir)), options_(options), next_seq_(next_seq) {}

StatusOr<std::unique_ptr<WalWriter>> WalWriter::Open(const std::string& dir,
                                                     std::uint64_t next_seq,
                                                     WalOptions options) {
  if (next_seq == 0) {
    return InvalidArgumentError("WAL sequences start at 1");
  }
  if (::mkdir(dir.c_str(), 0777) != 0 && errno != EEXIST) {
    return ErrnoError("mkdir " + dir);
  }
  BITRUSS_FAULT_POINT_STATUS("wal.open");
  if (!ListStampedFiles(dir, kSegmentPrefix, kSegmentSuffix).empty()) {
    return FailedPreconditionError(
        "WAL directory " + dir +
        " already holds segments; recover and clear them before opening");
  }
  std::unique_ptr<WalWriter> writer(new WalWriter(dir, next_seq, options));
  {
    MutexLock lock(writer->mu_);
    Status st = writer->OpenFreshSegmentLocked(next_seq);
    if (!st.ok()) return st;
  }
  return writer;
}

WalWriter::~WalWriter() {
  MutexLock lock(mu_);
  if (fd_ >= 0) {
    if (!failed_ && options_.fsync_policy != FsyncPolicy::kOsBuffered) {
      (void)::fsync(fd_);  // best effort; shutdown paths Sync() explicitly
    }
    ::close(fd_);
    fd_ = -1;
  }
}

Status WalWriter::OpenFreshSegmentLocked(std::uint64_t first_seq) {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  const std::string path =
      StampedPath(dir_, kSegmentPrefix, first_seq, kSegmentSuffix);
  const int fd = ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return ErrnoError("open " + path);
  unsigned char header[kWalSegmentHeaderBytes];
  std::memcpy(header, kSegmentMagic, sizeof kSegmentMagic);
  PutU64(header + 8, first_seq);
  PutU32(header + 16, Crc32c(header + 8, 8));
  Status st = WriteFully(fd, header, sizeof header);
  if (st.ok() && ::fsync(fd) != 0) st = ErrnoError("fsync " + path);
  if (st.ok()) {
    ++fsyncs_;
    st = FsyncDir(dir_);
  }
  if (!st.ok()) {
    ::close(fd);
    return st;
  }
  fd_ = fd;
  segment_size_ = sizeof header;
  segment_first_seqs_.push_back(first_seq);
  return OkStatus();
}

Status WalWriter::Append(const WalRecord& record) {
  MutexLock lock(mu_);
  if (failed_) {
    return FailedPreconditionError(
        "WAL writer failed earlier; appends are fenced off");
  }
  if (record.seq != next_seq_) {
    return InvalidArgumentError("WAL append out of order: got seq " +
                                std::to_string(record.seq) + ", expected " +
                                std::to_string(next_seq_));
  }
  Status st = AppendLocked(record);
  // Latch on ANY failure: the file may hold a torn prefix, and a later
  // append landing after it would turn a benign torn tail into
  // unrecoverable mid-log corruption.
  if (!st.ok()) failed_ = true;
  return st;
}

Status WalWriter::AppendLocked(const WalRecord& record) {
  if (segment_size_ + kWalRecordBytes > options_.segment_bytes &&
      segment_size_ > kWalSegmentHeaderBytes) {
    if (::fsync(fd_) != 0) return ErrnoError("fsync before rotation");
    ++fsyncs_;
    BITRUSS_FAULT_POINT_STATUS("wal.rotate");
    Status st = OpenFreshSegmentLocked(record.seq);
    if (!st.ok()) return st;
  }
  unsigned char buf[kWalRecordBytes];
  EncodeRecord(record, buf);
  switch (BITRUSS_FAULT_POINT("wal.append")) {
    case fault::FaultAction::kNone:
      break;
    case fault::FaultAction::kError:
      return InternalError("injected fault at wal.append");
    case fault::FaultAction::kEnospc:
      return InternalError(
          "injected ENOSPC (No space left on device) at fault point "
          "wal.append");
    case fault::FaultAction::kTornWrite: {
      // The canonical torn-record crash: persist a strict prefix, die.
      const std::size_t keep = fault::TornKeepBytes("wal.append", sizeof buf);
      (void)WriteFully(fd_, buf, keep);  // dying regardless of the outcome
      (void)::fsync(fd_);                // make the torn prefix visible
      fault::KillNow();
    }
    case fault::FaultAction::kKill:
      break;  // Hit() raises SIGKILL itself; never returned
  }
  Status st = WriteFully(fd_, buf, sizeof buf);
  if (!st.ok()) return st;
  segment_size_ += sizeof buf;
  bytes_appended_ += sizeof buf;
  ++next_seq_;
  if (options_.fsync_policy == FsyncPolicy::kEveryRecord) {
    return SyncLocked();
  }
  return OkStatus();
}

Status WalWriter::Sync() {
  MutexLock lock(mu_);
  if (failed_) {
    return FailedPreconditionError(
        "WAL writer failed earlier; syncs are fenced off");
  }
  Status st = SyncLocked();
  if (!st.ok()) failed_ = true;
  return st;
}

Status WalWriter::SyncLocked() {
  BITRUSS_FAULT_POINT_STATUS("wal.pre_fsync");
  if (::fsync(fd_) != 0) return ErrnoError("fsync wal segment");
  ++fsyncs_;
  BITRUSS_FAULT_POINT_STATUS("wal.post_fsync");
  return OkStatus();
}

StatusOr<int> WalWriter::TruncateThrough(std::uint64_t seq_inclusive) {
  MutexLock lock(mu_);
  if (failed_) {
    return Status(StatusCode::kFailedPrecondition,
                  "WAL writer failed earlier; truncation is fenced off");
  }
  BITRUSS_FAULT_POINT_STATUS("wal.truncate");
  // A segment is removable when the NEXT one starts at or below
  // seq_inclusive + 1 (its own last record is then <= seq_inclusive); the
  // active segment always stays.  Failures here do NOT latch failed_ — an
  // unremoved segment is just replayed-and-skipped on the next recovery.
  int removed = 0;
  while (segment_first_seqs_.size() >= 2 &&
         segment_first_seqs_[1] <= seq_inclusive + 1) {
    const std::string path = StampedPath(dir_, kSegmentPrefix,
                                         segment_first_seqs_.front(),
                                         kSegmentSuffix);
    if (::unlink(path.c_str()) != 0) return ErrnoError("unlink " + path);
    segment_first_seqs_.erase(segment_first_seqs_.begin());
    ++removed;
  }
  if (removed > 0) {
    Status st = FsyncDir(dir_);
    if (!st.ok()) return st;
  }
  return removed;
}

std::uint64_t WalWriter::NextSeq() const {
  MutexLock lock(mu_);
  return next_seq_;
}

std::uint64_t WalWriter::BytesAppended() const {
  MutexLock lock(mu_);
  return bytes_appended_;
}

std::uint64_t WalWriter::Fsyncs() const {
  MutexLock lock(mu_);
  return fsyncs_;
}

}  // namespace bitruss::persist
