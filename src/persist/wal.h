// Write-ahead log of accepted edge updates.
//
// The serving layer appends one record per ACCEPTED Submit() — before the
// update is acknowledged to the caller — so a crash can lose at most the
// unacknowledged tail.  Records are length-prefixed and CRC32C-checksummed
// in segment files that rotate at a size bound:
//
//   <dir>/wal-%016llx.seg        (hex value = first sequence in the file)
//
//   segment  = header record*
//   header   = magic "BTWAL001" | u64 first_seq | u32 crc32c(first_seq)
//   record   = u32 payload_len | u32 crc32c(payload) | payload
//   payload  = u64 seq | u8 kind (0 insert, 1 delete) | u32 upper_local
//            | u32 lower_local                                (17 bytes)
//
// Sequence numbers are the service's submission ordinals, strictly +1
// across segment boundaries.  Integers are little-endian.
//
// Durability policy (FsyncPolicy): every-record fsyncs inside Append,
// every-publish leaves fsync to the caller's Sync() at its publication
// boundary, os-buffered never fsyncs (page cache only — survives process
// death but not power loss).
//
// Failure model: once any append or sync fails — including injected
// faults — the writer latches FAILED and every later call returns
// kFailedPrecondition without touching the file, so a torn partial write
// can never be buried under later appends (which would turn a benign torn
// tail into unrecoverable middle corruption).  The serving layer reacts by
// entering read-only degraded mode.
//
// Recovery (ReplayWal): replays records with seq > after_seq in order.  An
// unparsable tail of the FINAL segment — short header, short record,
// checksum mismatch — is a TORN WRITE: everything from the first bad byte
// on is discarded (and physically truncated with repair_torn_tail, so the
// next writer appends at a clean boundary).  The same damage anywhere
// else, or a sequence gap, is kDataLoss: acknowledged records are missing
// and replay refuses to fabricate state.  Fault points: wal.open,
// wal.append, wal.pre_fsync, wal.post_fsync, wal.rotate, wal.truncate.

#ifndef BITRUSS_PERSIST_WAL_H_
#define BITRUSS_PERSIST_WAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/sync.h"

namespace bitruss::persist {

enum class FsyncPolicy : std::uint8_t {
  kEveryRecord,   ///< fsync inside every Append (slowest, zero-loss)
  kEveryPublish,  ///< caller fsyncs at publication boundaries via Sync()
  kOsBuffered,    ///< never fsync (page cache durability only)
};

inline const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kEveryRecord:
      return "every-record";
    case FsyncPolicy::kEveryPublish:
      return "every-publish";
    case FsyncPolicy::kOsBuffered:
      return "os";
  }
  return "unknown";
}

struct WalOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kEveryPublish;
  /// Rotate to a fresh segment once the current one reaches this size.
  std::uint64_t segment_bytes = 4ull << 20;
};

struct WalRecord {
  std::uint64_t seq = 0;  ///< submission ordinal, strictly +1 per record
  std::uint8_t kind = 0;  ///< 0 insert, 1 delete
  std::uint32_t upper_local = 0;
  std::uint32_t lower_local = 0;
};

/// On-disk sizes (fixed in format v1); exposed for tests that build or
/// corrupt files at byte granularity.
inline constexpr std::size_t kWalSegmentHeaderBytes = 8 + 8 + 4;
inline constexpr std::size_t kWalRecordPayloadBytes = 8 + 1 + 4 + 4;
inline constexpr std::size_t kWalRecordBytes = 4 + 4 + kWalRecordPayloadBytes;

struct WalReplayStats {
  std::uint64_t records_replayed = 0;
  std::uint64_t segments_read = 0;
  /// Records discarded from the torn tail of the final segment (0 or the
  /// count of unparsable trailing byte-runs treated as one torn region).
  std::uint64_t torn_records_discarded = 0;
  /// Bytes truncated off the final segment by repair_torn_tail.
  std::uint64_t truncated_bytes = 0;
  /// Highest valid sequence PARSED — including records at or below
  /// after_seq that were validated but not handed to `fn` (0 if none).
  std::uint64_t last_seq = 0;
};

/// Replays every record with seq > after_seq under `dir`, in sequence
/// order, invoking `fn` per record (a non-OK return aborts the replay with
/// that status).  kDataLoss on mid-log corruption or sequence gaps; a torn
/// final tail is discarded silently (counted in stats) and, with
/// repair_torn_tail, physically truncated so a subsequent WalWriter::Open
/// appends at a clean record boundary.  An empty/absent directory replays
/// nothing and returns OK.
[[nodiscard]] Status ReplayWal(
    const std::string& dir, std::uint64_t after_seq,
    const std::function<Status(const WalRecord&)>& fn,
    WalReplayStats* stats = nullptr, bool repair_torn_tail = false);

class WalWriter {
 public:
  /// Opens `dir` (created if absent) for appending with `next_seq` as the
  /// sequence of the first future record, starting a fresh segment named
  /// by it.  The directory must hold NO segment files: a fresh service
  /// starts empty, and recovery replays the old log, writes a durable
  /// snapshot covering it, and deletes the old segments before reopening
  /// — so Open never has to splice onto an arbitrary tail.  Returns
  /// kFailedPrecondition if segments are present.
  static StatusOr<std::unique_ptr<WalWriter>> Open(const std::string& dir,
                                                   std::uint64_t next_seq,
                                                   WalOptions options);

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;
  ~WalWriter();

  /// Appends one record (record.seq must equal NextSeq()), rotating
  /// segments as needed; fsyncs when the policy is kEveryRecord.
  /// Thread-safe.  After any failure the writer is latched FAILED and
  /// every call returns kFailedPrecondition (see header comment).
  [[nodiscard]] Status Append(const WalRecord& record);

  /// fsyncs the active segment (publication boundary under
  /// kEveryPublish); a no-op stat under kOsBuffered is NOT applied — Sync
  /// always syncs when called.
  [[nodiscard]] Status Sync();

  /// Deletes whole segments every record of which has seq <=
  /// seq_inclusive (the active segment is never deleted).  Called after a
  /// durable snapshot covering those records.  Returns the number of
  /// segment files removed.
  [[nodiscard]] StatusOr<int> TruncateThrough(std::uint64_t seq_inclusive);

  /// Sequence the next Append must carry.
  std::uint64_t NextSeq() const;
  /// Total record bytes appended through this writer (headers excluded).
  std::uint64_t BytesAppended() const;
  /// fsync calls performed by this writer (Append-internal + Sync).
  std::uint64_t Fsyncs() const;

 private:
  WalWriter(std::string dir, std::uint64_t next_seq, WalOptions options);

  /// Opens (creating) the segment whose first record will be `first_seq`
  /// and makes it the append target; fsyncs the directory entry.
  [[nodiscard]] Status OpenFreshSegmentLocked(std::uint64_t first_seq)
      REQUIRES(mu_);
  [[nodiscard]] Status AppendLocked(const WalRecord& record) REQUIRES(mu_);
  [[nodiscard]] Status SyncLocked() REQUIRES(mu_);

  const std::string dir_;
  const WalOptions options_;

  mutable Mutex mu_;
  int fd_ GUARDED_BY(mu_) = -1;
  bool failed_ GUARDED_BY(mu_) = false;
  std::uint64_t next_seq_ GUARDED_BY(mu_);
  std::uint64_t segment_size_ GUARDED_BY(mu_) = 0;
  std::uint64_t bytes_appended_ GUARDED_BY(mu_) = 0;
  std::uint64_t fsyncs_ GUARDED_BY(mu_) = 0;
  /// Existing segment first-seqs, ascending; back() is the active one.
  std::vector<std::uint64_t> segment_first_seqs_ GUARDED_BY(mu_);
};

// Shared with snapshot_io.cc and tests: directory scan for files matching
// `prefix%016llx.suffix`, returning the embedded values ascending.
std::vector<std::uint64_t> ListStampedFiles(const std::string& dir,
                                            const std::string& prefix,
                                            const std::string& suffix);
/// `<dir>/<prefix>%016llx<suffix>` formatting used by the scan above.
std::string StampedPath(const std::string& dir, const std::string& prefix,
                        std::uint64_t value, const std::string& suffix);

}  // namespace bitruss::persist

#endif  // BITRUSS_PERSIST_WAL_H_
