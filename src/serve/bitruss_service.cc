#include "serve/bitruss_service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <map>

namespace bitruss {

namespace {
using Clock = std::chrono::steady_clock;
}  // namespace

std::vector<std::pair<EdgeId, SupportT>> PhiSnapshot::TopKPhi(
    std::size_t k) const {
  std::vector<std::pair<EdgeId, SupportT>> ranked;
  ranked.reserve(num_edges);
  for (EdgeId slot = 0; slot < num_slots; ++slot) {
    if (live[slot]) ranked.emplace_back(slot, phi[slot]);
  }
  const auto better = [](const std::pair<EdgeId, SupportT>& a,
                         const std::pair<EdgeId, SupportT>& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  };
  if (k < ranked.size()) {
    std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(),
                      better);
    ranked.resize(k);
  } else {
    std::sort(ranked.begin(), ranked.end(), better);
  }
  return ranked;
}

std::vector<std::pair<SupportT, std::uint64_t>> PhiSnapshot::PhiHistogram()
    const {
  std::map<SupportT, std::uint64_t> counts;
  for (EdgeId slot = 0; slot < num_slots; ++slot) {
    if (live[slot]) ++counts[phi[slot]];
  }
  return std::vector<std::pair<SupportT, std::uint64_t>>(counts.begin(),
                                                         counts.end());
}

BitrussService::BitrussService(const BipartiteGraph& seed,
                               BitrussServiceOptions options)
    : options_(std::move(options)),
      inc_(seed, options_.incremental),
      num_upper_(seed.NumUpper()),
      num_lower_(seed.NumLower()),
      publish_seconds_(obs::ExponentialBuckets(1e-5, 2.0, 16)),
      staleness_updates_(obs::ExponentialBuckets(1.0, 2.0, 12)),
      // Lifecycle latencies: applies can take microseconds (trivial
      // updates) to seconds (fallback recomputes); visibility adds the
      // publish cadence on top.  Reads are nanoseconds to milliseconds
      // (top-k scans).
      apply_seconds_(obs::ExponentialBuckets(1e-6, 2.0, 22)),
      visibility_seconds_(obs::ExponentialBuckets(1e-5, 2.0, 20)),
      read_phi_seconds_(obs::ExponentialBuckets(1e-7, 2.0, 18)),
      read_topk_seconds_(obs::ExponentialBuckets(1e-7, 2.0, 18)),
      read_histogram_seconds_(obs::ExponentialBuckets(1e-7, 2.0, 18)) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  RegisterMetrics();
  // Version 1 covers the seed (0 applied updates); readers never observe a
  // null snapshot.  Publishing before the writer starts needs no atomics
  // beyond the store itself: thread creation orders everything before it.
  PublishSnapshot();
  writer_ = std::thread(&BitrussService::WriterLoop, this);
}

BitrussService::~BitrussService() {
  Shutdown(/*drain=*/true);
  UnregisterMetrics();
}

void BitrussService::RegisterMetrics() {
  auto& registry = obs::MetricsRegistry::Default();
  registry.RegisterCounter("bitruss_serve_submitted_total", &submitted_);
  registry.RegisterCounter("bitruss_serve_applied_total", &applied_);
  registry.RegisterCounter("bitruss_serve_apply_failures_total",
                           &apply_failures_);
  registry.RegisterCounter("bitruss_serve_rejected_overflow_total",
                           &rejected_overflow_);
  registry.RegisterCounter("bitruss_serve_published_snapshots_total",
                           &published_snapshots_);
  registry.RegisterCounter("bitruss_serve_compactions_total", &compactions_);
  registry.RegisterCounter("bitruss_serve_reads_total", &snapshot_reads_);
  registry.RegisterHistogram("bitruss_serve_publish_seconds",
                             &publish_seconds_);
  registry.RegisterHistogram("bitruss_serve_staleness_updates",
                             &staleness_updates_);
  registry.RegisterHistogram("bitruss_serve_apply_seconds", &apply_seconds_);
  registry.RegisterHistogram("bitruss_serve_visibility_seconds",
                             &visibility_seconds_);
  registry.RegisterHistogram("bitruss_serve_read_phi_seconds",
                             &read_phi_seconds_);
  registry.RegisterHistogram("bitruss_serve_read_topk_seconds",
                             &read_topk_seconds_);
  registry.RegisterHistogram("bitruss_serve_read_histogram_seconds",
                             &read_histogram_seconds_);
  // The depth gauges are plain atomic reads, safe under the registry lock.
  gauge_callback_handles_.push_back(registry.AddGaugeCallback(
      "bitruss_serve_queue_depth", [this] { return queue_depth_.Value(); }));
  gauge_callback_handles_.push_back(
      registry.AddGaugeCallback("bitruss_serve_queue_depth_peak", [this] {
        return queue_depth_peak_.Value();
      }));
}

void BitrussService::UnregisterMetrics() {
  auto& registry = obs::MetricsRegistry::Default();
  registry.UnregisterCounter("bitruss_serve_submitted_total", &submitted_);
  registry.UnregisterCounter("bitruss_serve_applied_total", &applied_);
  registry.UnregisterCounter("bitruss_serve_apply_failures_total",
                             &apply_failures_);
  registry.UnregisterCounter("bitruss_serve_rejected_overflow_total",
                             &rejected_overflow_);
  registry.UnregisterCounter("bitruss_serve_published_snapshots_total",
                             &published_snapshots_);
  registry.UnregisterCounter("bitruss_serve_compactions_total", &compactions_);
  registry.UnregisterCounter("bitruss_serve_reads_total", &snapshot_reads_);
  registry.UnregisterHistogram("bitruss_serve_publish_seconds",
                               &publish_seconds_);
  registry.UnregisterHistogram("bitruss_serve_staleness_updates",
                               &staleness_updates_);
  registry.UnregisterHistogram("bitruss_serve_apply_seconds", &apply_seconds_);
  registry.UnregisterHistogram("bitruss_serve_visibility_seconds",
                               &visibility_seconds_);
  registry.UnregisterHistogram("bitruss_serve_read_phi_seconds",
                               &read_phi_seconds_);
  registry.UnregisterHistogram("bitruss_serve_read_topk_seconds",
                               &read_topk_seconds_);
  registry.UnregisterHistogram("bitruss_serve_read_histogram_seconds",
                               &read_histogram_seconds_);
  for (const std::uint64_t handle : gauge_callback_handles_) {
    registry.RemoveGaugeCallback(handle);
  }
  gauge_callback_handles_.clear();
  // Keep the high-water mark visible after this instance dies (the
  // instantaneous depth correctly reads 0 once the service is gone).
  registry.GetGauge("bitruss_serve_queue_depth_peak")
      ->MaxWith(queue_depth_peak_.Value());
}

Status BitrussService::Submit(const EdgeUpdate& update) {
  if (update.upper_local >= num_upper_ || update.lower_local >= num_lower_) {
    return InvalidArgumentError("endpoint out of range");
  }
  {
    MutexLock lock(mu_);
    if (stopping_) {
      return UnavailableError("BitrussService is shut down");
    }
    if (queue_.size() >= options_.queue_capacity) {
      rejected_overflow_.Inc();
      // Event emitted outside mu_ below; the log's own lock is a leaf.
    } else {
      queue_.push_back({update, Clock::now()});
      const auto depth = static_cast<std::int64_t>(queue_.size());
      queue_depth_.Set(depth);
      queue_depth_peak_.MaxWith(depth);
      submitted_.IncOrdered();
      queue_cv_.NotifyOne();
      return OkStatus();
    }
  }
  if (options_.event_log != nullptr) {
    options_.event_log->Emit(
        "backpressure_reject",
        {{"queue_capacity",
          static_cast<std::uint64_t>(options_.queue_capacity)},
         {"rejected_total", rejected_overflow_.Value()}});
  }
  return ResourceExhaustedError("ingest queue full");
}

Status BitrussService::Drain() {
  MutexLock lock(mu_);
  // Explicit predicate loop (not a wait-lambda) so the guarded reads are
  // checked against mu_ in this function's capability set.
  for (;;) {
    if (stopping_ && !drain_on_stop_) {
      return UnavailableError("shut down without draining");
    }
    const std::uint64_t applied = applied_.Value();
    if (queue_.empty() && applied == submitted_.Value() &&
        published_applied_.load(std::memory_order_acquire) == applied) {
      return OkStatus();
    }
    drained_cv_.Wait(lock);
  }
}

void BitrussService::Shutdown(bool drain) {
  {
    MutexLock lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      drain_on_stop_ = drain;
    }
  }
  queue_cv_.NotifyAll();
  {
    // Exactly one caller joins; Shutdown may race with itself and the
    // destructor.
    MutexLock join_lock(join_mu_);
    if (writer_.joinable()) writer_.join();
  }
  drained_cv_.NotifyAll();
}

std::shared_ptr<const PhiSnapshot> BitrussService::Snapshot() const {
  snapshot_reads_.Inc();
  return std::atomic_load_explicit(&snapshot_, std::memory_order_acquire);
}

SupportT BitrussService::Phi(EdgeId slot) const {
  const Clock::time_point start = Clock::now();
  const SupportT value = Snapshot()->Phi(slot);
  read_phi_seconds_.Observe(
      std::chrono::duration<double>(Clock::now() - start).count());
  return value;
}

SupportT BitrussService::SupportOf(EdgeId slot) const {
  const Clock::time_point start = Clock::now();
  const SupportT value = Snapshot()->SupportOf(slot);
  read_phi_seconds_.Observe(
      std::chrono::duration<double>(Clock::now() - start).count());
  return value;
}

std::vector<std::pair<EdgeId, SupportT>> BitrussService::TopKPhi(
    std::size_t k) const {
  const Clock::time_point start = Clock::now();
  auto result = Snapshot()->TopKPhi(k);
  read_topk_seconds_.Observe(
      std::chrono::duration<double>(Clock::now() - start).count());
  return result;
}

std::vector<std::pair<SupportT, std::uint64_t>> BitrussService::PhiHistogram()
    const {
  const Clock::time_point start = Clock::now();
  auto result = Snapshot()->PhiHistogram();
  read_histogram_seconds_.Observe(
      std::chrono::duration<double>(Clock::now() - start).count());
  return result;
}

std::uint64_t BitrussService::QueueDepth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

double BitrussService::SnapshotAgeSeconds() const {
  const std::int64_t stamp = last_publish_ns_.load(std::memory_order_acquire);
  const std::int64_t now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count();
  return stamp == 0 || now < stamp
             ? 0
             : static_cast<double>(now - stamp) * 1e-9;
}

std::string BitrussService::HealthJson() const {
  const std::shared_ptr<const PhiSnapshot> snap = Snapshot();
  char age[64];
  std::snprintf(age, sizeof(age), "%.6f", SnapshotAgeSeconds());
  std::string out = "{\"status\":\"ok\"";
  out += ",\"snapshot_version\":" + std::to_string(snap->version);
  out += ",\"snapshot_applied_updates\":" +
         std::to_string(snap->applied_updates);
  out += ",\"snapshot_age_seconds\":";
  out += age;
  out += ",\"queue_depth\":" + std::to_string(QueueDepth());
  out += ",\"queue_capacity\":" + std::to_string(options_.queue_capacity);
  out += ",\"submitted_updates\":" + std::to_string(submitted_.Value());
  out += ",\"applied_updates\":" + std::to_string(applied_.Value());
  out += ",\"staleness_updates\":" + std::to_string(StalenessUpdates());
  out += ",\"num_edges\":" + std::to_string(snap->num_edges);
  out += ",\"num_butterflies\":" + std::to_string(snap->num_butterflies);
  out += "}";
  return out;
}

std::uint64_t BitrussService::StalenessUpdates() const {
  // Loads can interleave with a publication; clamp instead of wrapping.
  const std::uint64_t applied = applied_.Value();
  const std::uint64_t seen = published_applied_.load(std::memory_order_acquire);
  return applied > seen ? applied - seen : 0;
}

BitrussServiceStats BitrussService::Stats() const {
  BitrussServiceStats stats;
  stats.submitted = submitted_.Value();
  stats.applied = applied_.Value();
  stats.apply_failures = apply_failures_.Value();
  stats.rejected_overflow = rejected_overflow_.Value();
  stats.published_snapshots = published_snapshots_.Value();
  stats.compactions = compactions_.Value();
  stats.snapshot_reads = snapshot_reads_.Value();
  return stats;
}

void BitrussService::Pause() {
  {
    MutexLock lock(mu_);
    paused_ = true;
  }
  queue_cv_.NotifyAll();
}

void BitrussService::Resume() {
  {
    MutexLock lock(mu_);
    paused_ = false;
  }
  queue_cv_.NotifyAll();
}

void BitrussService::ApplyUpdate(const QueuedUpdate& queued) {
  const EdgeUpdate& update = queued.update;
  const Clock::time_point apply_start = Clock::now();
  bool ok = false;
  if (update.kind == EdgeUpdate::Kind::kInsert) {
    ok = inc_.InsertEdge(update.upper_local, update.lower_local).ok();
  } else {
    const EdgeId slot = inc_.Graph().FindEdge(
        update.upper_local, num_upper_ + update.lower_local);
    ok = slot != kInvalidEdge && inc_.DeleteEdge(slot).ok();
  }
  if (!ok) apply_failures_.Inc();
  const Clock::time_point done = Clock::now();
  // Apply latency is submit -> applied: queue wait included, because that
  // is what a client experiences before its update can become visible.
  apply_seconds_.Observe(
      std::chrono::duration<double>(done - queued.submit_time).count());
  applied_.IncOrdered();

  if (options_.event_log != nullptr) {
    const IncrementalUpdateStats& last = inc_.LastUpdateStats();
    if (ok && last.fallback) {
      options_.event_log->Emit(
          "fallback_recompute",
          {{"enumerated_butterflies", last.enumerated_butterflies},
           {"frontier_edges", last.frontier_edges},
           {"phi_changes", last.phi_changes}});
    }
    const double work_seconds =
        std::chrono::duration<double>(done - apply_start).count();
    if (options_.slow_apply_seconds > 0 &&
        work_seconds > options_.slow_apply_seconds) {
      options_.event_log->Emit(
          "slow_apply",
          {{"seconds", work_seconds},
           {"kind", update.kind == EdgeUpdate::Kind::kInsert ? "insert"
                                                             : "delete"},
           {"fallback", static_cast<std::uint64_t>(last.fallback ? 1 : 0)}});
    }
  }
}

void BitrussService::PublishSnapshot() {
  const Clock::time_point publish_start = Clock::now();
  const DynamicBipartiteGraph& graph = inc_.Graph();
  auto snapshot = std::make_shared<PhiSnapshot>();
  const std::uint64_t version = published_snapshots_.Value() + 1;
  const std::uint64_t covers = applied_.Value();
  const std::uint64_t prev_covered =
      published_applied_.load(std::memory_order_relaxed);
  snapshot->version = version;
  snapshot->applied_updates = covers;
  snapshot->num_edges = graph.NumEdges();
  snapshot->num_slots = graph.NumSlots();
  snapshot->num_butterflies = graph.NumButterflies();
  snapshot->phi = inc_.PhiBySlot();
  snapshot->support.assign(graph.NumSlots(), 0);
  snapshot->live.assign(graph.NumSlots(), 0);
  for (EdgeId slot = 0; slot < graph.NumSlots(); ++slot) {
    if (graph.IsLive(slot)) {
      snapshot->live[slot] = 1;
      snapshot->support[slot] = graph.Support(slot);
    }
  }
  const EdgeId snapshot_num_edges = snapshot->num_edges;
  std::atomic_store_explicit(
      &snapshot_,
      std::shared_ptr<const PhiSnapshot>(std::move(snapshot)),
      std::memory_order_release);
  // Ordered after the snapshot store: once these counters say "covered",
  // Snapshot() already returns the covering version.  IncOrdered keeps the
  // release semantics the raw version store had.
  published_applied_.store(covers, std::memory_order_release);
  published_snapshots_.IncOrdered();
  applied_since_publish_ = 0;
  staleness_updates_.Observe(
      static_cast<double>(covers > prev_covered ? covers - prev_covered : 0));
  const Clock::time_point published_at = Clock::now();
  const double publish_cost =
      std::chrono::duration<double>(published_at - publish_start).count();
  publish_seconds_.Observe(publish_cost);
  last_publish_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          published_at.time_since_epoch())
          .count(),
      std::memory_order_release);
  // This publication is the first snapshot covering every update applied
  // since the previous one: their visibility latency ends exactly here.
  for (const Clock::time_point submit_time : pending_visibility_) {
    visibility_seconds_.Observe(
        std::chrono::duration<double>(published_at - submit_time).count());
  }
  pending_visibility_.clear();
  if (options_.event_log != nullptr) {
    options_.event_log->Emit(
        "publish",
        {{"version", version},
         {"covers", covers},
         {"publish_seconds", publish_cost},
         {"staleness_updates",
          covers > prev_covered ? covers - prev_covered : std::uint64_t{0}},
         {"num_edges", static_cast<std::uint64_t>(snapshot_num_edges)}});
  }
}

void BitrussService::WriterLoop() {
  const bool timed = options_.publish_interval_ms > 0;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(options_.publish_interval_ms));
  Clock::time_point last_publish = Clock::now();

  for (;;) {
    QueuedUpdate queued;
    bool have = false;
    bool stop = false;
    bool drain = true;
    {
      MutexLock lock(mu_);
      if (timed && applied_since_publish_ > 0) {
        // Unpublished work exists: wake by the publication deadline even
        // if no new update arrives.
        const Clock::time_point deadline = last_publish + interval;
        while (!(stopping_ || (!paused_ && !queue_.empty()))) {
          if (queue_cv_.WaitUntil(lock, deadline) == std::cv_status::timeout) {
            break;
          }
        }
      } else {
        while (!(stopping_ || (!paused_ && !queue_.empty()))) {
          queue_cv_.Wait(lock);
        }
      }
      stop = stopping_;
      drain = drain_on_stop_;
      if (stop && !drain) {
        queue_.clear();
        queue_depth_.Set(0);
      } else if ((!paused_ || stop) && !queue_.empty()) {
        queued = queue_.front();
        queue_.pop_front();
        queue_depth_.Set(static_cast<std::int64_t>(queue_.size()));
        have = true;
      }
    }

    if (have) {
      ApplyUpdate(queued);
      pending_visibility_.push_back(queued.submit_time);
      ++applied_since_publish_;
      if (options_.compact_every_updates != 0 &&
          ++applied_since_compact_ >= options_.compact_every_updates) {
        const EdgeId slots_before = inc_.Graph().NumSlots();
        inc_.CompactSlots();
        applied_since_compact_ = 0;
        compactions_.IncOrdered();
        if (options_.event_log != nullptr) {
          options_.event_log->Emit(
              "compaction",
              {{"slots_before", static_cast<std::uint64_t>(slots_before)},
               {"slots_after",
                static_cast<std::uint64_t>(inc_.Graph().NumSlots())}});
        }
      }
    }

    bool queue_empty;
    {
      MutexLock lock(mu_);
      queue_empty = queue_.empty();
    }
    if (applied_since_publish_ > 0) {
      const bool count_due =
          options_.publish_every_updates != 0 &&
          applied_since_publish_ >= options_.publish_every_updates;
      const bool time_due = timed && Clock::now() >= last_publish + interval;
      // An idle writer always publishes, so staleness converges to 0 the
      // moment the ingest queue drains.
      if (queue_empty || count_due || time_due) {
        PublishSnapshot();
        last_publish = Clock::now();
        drained_cv_.NotifyAll();
      }
    }

    if (stop && queue_empty) {
      if (applied_since_publish_ > 0) PublishSnapshot();
      drained_cv_.NotifyAll();
      return;
    }
  }
}

}  // namespace bitruss
