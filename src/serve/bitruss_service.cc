#include "serve/bitruss_service.h"

#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <optional>
#include <stdexcept>

namespace bitruss {

namespace {
using Clock = std::chrono::steady_clock;

Status EnsureDir(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0777) == 0 || errno == EEXIST) return OkStatus();
  return InternalError("mkdir(" + dir + "): " + std::strerror(errno));
}

bool HasPriorDurableState(const std::string& dir) {
  return !persist::ListStampedFiles(dir, "wal-", ".seg").empty() ||
         !persist::ListStampedFiles(dir, "snapshot-", ".snap").empty();
}
}  // namespace

std::vector<std::pair<EdgeId, SupportT>> PhiSnapshot::TopKPhi(
    std::size_t k) const {
  std::vector<std::pair<EdgeId, SupportT>> ranked;
  ranked.reserve(num_edges);
  for (EdgeId slot = 0; slot < num_slots; ++slot) {
    if (live[slot]) ranked.emplace_back(slot, phi[slot]);
  }
  const auto better = [](const std::pair<EdgeId, SupportT>& a,
                         const std::pair<EdgeId, SupportT>& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  };
  if (k < ranked.size()) {
    std::partial_sort(ranked.begin(), ranked.begin() + k, ranked.end(),
                      better);
    ranked.resize(k);
  } else {
    std::sort(ranked.begin(), ranked.end(), better);
  }
  return ranked;
}

std::vector<std::pair<SupportT, std::uint64_t>> PhiSnapshot::PhiHistogram()
    const {
  std::map<SupportT, std::uint64_t> counts;
  for (EdgeId slot = 0; slot < num_slots; ++slot) {
    if (live[slot]) ++counts[phi[slot]];
  }
  return std::vector<std::pair<SupportT, std::uint64_t>>(counts.begin(),
                                                         counts.end());
}

BitrussService::BitrussService(const BipartiteGraph& seed,
                               BitrussServiceOptions options)
    : options_(std::move(options)),
      inc_(seed, options_.incremental),
      num_upper_(seed.NumUpper()),
      num_lower_(seed.NumLower()),
      publish_seconds_(obs::ExponentialBuckets(1e-5, 2.0, 16)),
      staleness_updates_(obs::ExponentialBuckets(1.0, 2.0, 12)),
      // Lifecycle latencies: applies can take microseconds (trivial
      // updates) to seconds (fallback recomputes); visibility adds the
      // publish cadence on top.  Reads are nanoseconds to milliseconds
      // (top-k scans).
      apply_seconds_(obs::ExponentialBuckets(1e-6, 2.0, 22)),
      visibility_seconds_(obs::ExponentialBuckets(1e-5, 2.0, 20)),
      read_phi_seconds_(obs::ExponentialBuckets(1e-7, 2.0, 18)),
      read_topk_seconds_(obs::ExponentialBuckets(1e-7, 2.0, 18)),
      read_histogram_seconds_(obs::ExponentialBuckets(1e-7, 2.0, 18)) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (!options_.persist.dir.empty()) InitFreshPersistence();
  RegisterMetrics();
  // Version 1 covers the seed (0 applied updates); readers never observe a
  // null snapshot.  Publishing before the writer starts needs no atomics
  // beyond the store itself: thread creation orders everything before it.
  PublishSnapshot();
  writer_ = std::thread(&BitrussService::WriterLoop, this);
}

BitrussService::BitrussService(RestoredState state,
                               BitrussServiceOptions options)
    : options_(std::move(options)),
      inc_(std::move(state.inc)),
      num_upper_(inc_.Graph().NumUpper()),
      num_lower_(inc_.Graph().NumLower()),
      recovered_base_(state.applied),
      wal_(std::move(state.wal)),
      publish_seconds_(obs::ExponentialBuckets(1e-5, 2.0, 16)),
      staleness_updates_(obs::ExponentialBuckets(1.0, 2.0, 12)),
      // Same bucket layouts as the fresh constructor — the instruments feed
      // the same registry families either way.
      apply_seconds_(obs::ExponentialBuckets(1e-6, 2.0, 22)),
      visibility_seconds_(obs::ExponentialBuckets(1e-5, 2.0, 20)),
      read_phi_seconds_(obs::ExponentialBuckets(1e-7, 2.0, 18)),
      read_topk_seconds_(obs::ExponentialBuckets(1e-7, 2.0, 18)),
      read_histogram_seconds_(obs::ExponentialBuckets(1e-7, 2.0, 18)) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  bool newly_degraded = false;
  if (state.degraded) {
    MutexLock lock(mu_);
    newly_degraded = EnterDegradedLocked(state.degraded_reason);
  }
  if (newly_degraded) EmitDegradedEnterEvent(state.degraded_reason);
  RegisterMetrics();
  PublishSnapshot();
  writer_ = std::thread(&BitrussService::WriterLoop, this);
}

void BitrussService::InitFreshPersistence() {
  const std::string& dir = options_.persist.dir;
  // Construction failures here throw: unlike a mid-stream disk error there
  // is no accepted state worth serving read-only yet, and silently running
  // without the durability the caller configured would be worse.
  if (Status st = EnsureDir(dir); !st.ok()) {
    throw std::invalid_argument(st.message());
  }
  if (HasPriorDurableState(dir)) {
    throw std::invalid_argument(
        "persist dir '" + dir +
        "' holds prior WAL/snapshot state; use BitrussService::Recover");
  }
  persist::WalOptions wal_options;
  wal_options.fsync_policy = options_.persist.fsync_policy;
  wal_options.segment_bytes = options_.persist.segment_bytes;
  auto wal = persist::WalWriter::Open(dir, /*next_seq=*/1, wal_options);
  if (!wal.ok()) {
    throw std::runtime_error("opening WAL in '" + dir +
                             "': " + wal.status().message());
  }
  wal_ = std::move(wal).value();
  // Seed snapshot at applied=0: recovery always has a base image, so a
  // crash before the first cadence snapshot still replays WAL-only against
  // the right starting state.  Failure degrades rather than throws — the
  // WAL is up, and the writer retries snapshots anyway.
  if (Status st = persist::WriteSnapshotFile(dir, BuildState(inc_, 0));
      !st.ok()) {
    persist_snapshot_failures_.Inc();
    persist_failures_.Inc();
    EnterDegraded("initial durable snapshot failed: " + st.message());
  }
}

BitrussService::~BitrussService() {
  Shutdown(/*drain=*/true);
  UnregisterMetrics();
}

void BitrussService::RegisterMetrics() {
  auto& registry = obs::MetricsRegistry::Default();
  registry.RegisterCounter("bitruss_serve_submitted_total", &submitted_);
  registry.RegisterCounter("bitruss_serve_applied_total", &applied_);
  registry.RegisterCounter("bitruss_serve_apply_failures_total",
                           &apply_failures_);
  registry.RegisterCounter("bitruss_serve_rejected_overflow_total",
                           &rejected_overflow_);
  registry.RegisterCounter("bitruss_serve_published_snapshots_total",
                           &published_snapshots_);
  registry.RegisterCounter("bitruss_serve_compactions_total", &compactions_);
  registry.RegisterCounter("bitruss_serve_reads_total", &snapshot_reads_);
  registry.RegisterHistogram("bitruss_serve_publish_seconds",
                             &publish_seconds_);
  registry.RegisterHistogram("bitruss_serve_staleness_updates",
                             &staleness_updates_);
  registry.RegisterHistogram("bitruss_serve_apply_seconds", &apply_seconds_);
  registry.RegisterHistogram("bitruss_serve_visibility_seconds",
                             &visibility_seconds_);
  registry.RegisterHistogram("bitruss_serve_read_phi_seconds",
                             &read_phi_seconds_);
  registry.RegisterHistogram("bitruss_serve_read_topk_seconds",
                             &read_topk_seconds_);
  registry.RegisterHistogram("bitruss_serve_read_histogram_seconds",
                             &read_histogram_seconds_);
  // Durability family — always registered so the metrics surface is stable
  // whether or not persistence is configured (all-zero when off).
  registry.RegisterCounter("bitruss_persist_wal_records_total",
                           &persist_wal_records_);
  registry.RegisterCounter("bitruss_persist_wal_bytes_total",
                           &persist_wal_bytes_);
  registry.RegisterCounter("bitruss_persist_failures_total",
                           &persist_failures_);
  registry.RegisterCounter("bitruss_persist_snapshots_total",
                           &persist_snapshots_);
  registry.RegisterCounter("bitruss_persist_snapshot_failures_total",
                           &persist_snapshot_failures_);
  registry.RegisterCounter("bitruss_persist_wal_truncated_segments_total",
                           &persist_wal_truncated_segments_);
  // The depth gauges are plain atomic reads, safe under the registry lock.
  gauge_callback_handles_.push_back(registry.AddGaugeCallback(
      "bitruss_serve_queue_depth", [this] { return queue_depth_.Value(); }));
  gauge_callback_handles_.push_back(
      registry.AddGaugeCallback("bitruss_serve_queue_depth_peak", [this] {
        return queue_depth_peak_.Value();
      }));
  gauge_callback_handles_.push_back(
      registry.AddGaugeCallback("bitruss_persist_degraded", [this] {
        return std::int64_t{Degraded() ? 1 : 0};
      }));
  // WalWriter::Fsyncs takes the WAL's internal mutex — a leaf below the
  // registry lock, never held while calling back out.
  gauge_callback_handles_.push_back(
      registry.AddGaugeCallback("bitruss_persist_wal_fsyncs", [this] {
        return wal_ ? static_cast<std::int64_t>(wal_->Fsyncs())
                    : std::int64_t{0};
      }));
}

void BitrussService::UnregisterMetrics() {
  auto& registry = obs::MetricsRegistry::Default();
  registry.UnregisterCounter("bitruss_serve_submitted_total", &submitted_);
  registry.UnregisterCounter("bitruss_serve_applied_total", &applied_);
  registry.UnregisterCounter("bitruss_serve_apply_failures_total",
                             &apply_failures_);
  registry.UnregisterCounter("bitruss_serve_rejected_overflow_total",
                             &rejected_overflow_);
  registry.UnregisterCounter("bitruss_serve_published_snapshots_total",
                             &published_snapshots_);
  registry.UnregisterCounter("bitruss_serve_compactions_total", &compactions_);
  registry.UnregisterCounter("bitruss_serve_reads_total", &snapshot_reads_);
  registry.UnregisterHistogram("bitruss_serve_publish_seconds",
                               &publish_seconds_);
  registry.UnregisterHistogram("bitruss_serve_staleness_updates",
                               &staleness_updates_);
  registry.UnregisterHistogram("bitruss_serve_apply_seconds", &apply_seconds_);
  registry.UnregisterHistogram("bitruss_serve_visibility_seconds",
                               &visibility_seconds_);
  registry.UnregisterHistogram("bitruss_serve_read_phi_seconds",
                               &read_phi_seconds_);
  registry.UnregisterHistogram("bitruss_serve_read_topk_seconds",
                               &read_topk_seconds_);
  registry.UnregisterHistogram("bitruss_serve_read_histogram_seconds",
                               &read_histogram_seconds_);
  registry.UnregisterCounter("bitruss_persist_wal_records_total",
                             &persist_wal_records_);
  registry.UnregisterCounter("bitruss_persist_wal_bytes_total",
                             &persist_wal_bytes_);
  registry.UnregisterCounter("bitruss_persist_failures_total",
                             &persist_failures_);
  registry.UnregisterCounter("bitruss_persist_snapshots_total",
                             &persist_snapshots_);
  registry.UnregisterCounter("bitruss_persist_snapshot_failures_total",
                             &persist_snapshot_failures_);
  registry.UnregisterCounter("bitruss_persist_wal_truncated_segments_total",
                             &persist_wal_truncated_segments_);
  for (const std::uint64_t handle : gauge_callback_handles_) {
    registry.RemoveGaugeCallback(handle);
  }
  gauge_callback_handles_.clear();
  // Keep the high-water mark visible after this instance dies (the
  // instantaneous depth correctly reads 0 once the service is gone).
  registry.GetGauge("bitruss_serve_queue_depth_peak")
      ->MaxWith(queue_depth_peak_.Value());
}

Status BitrussService::Submit(const EdgeUpdate& update) {
  if (update.upper_local >= num_upper_ || update.lower_local >= num_lower_) {
    return InvalidArgumentError("endpoint out of range");
  }
  bool overflow = false;
  std::optional<std::string> degrade_event;
  std::optional<Status> wal_failure;
  {
    MutexLock lock(mu_);
    if (stopping_) {
      return UnavailableError("BitrussService is shut down");
    }
    if (degraded_.load(std::memory_order_acquire)) {
      return UnavailableError("service is read-only (degraded): " +
                              degraded_reason_);
    }
    if (queue_.size() >= options_.queue_capacity) {
      // Checked BEFORE the WAL append: a rejected update consumes no
      // sequence number, so the log holds exactly the accepted stream.
      rejected_overflow_.Inc();
      overflow = true;
      // Event emitted outside mu_ below; the log's own lock is a leaf.
    } else {
      if (wal_ != nullptr) {
        // Write-ahead: the record must be durable (to the configured
        // policy) before the OK that acknowledges the update.
        persist::WalRecord record;
        record.seq = recovered_base_ + submitted_.Value() + 1;
        record.kind = update.kind == EdgeUpdate::Kind::kInsert ? 0 : 1;
        record.upper_local = update.upper_local;
        record.lower_local = update.lower_local;
        if (Status st = wal_->Append(record); !st.ok()) {
          persist_failures_.Inc();
          const std::string reason = "WAL append failed: " + st.message();
          if (EnterDegradedLocked(reason)) degrade_event = reason;
          wal_failure = UnavailableError("service is read-only (degraded): " +
                                         reason);
        }
      }
      if (!wal_failure) {
        if (wal_ != nullptr) {
          persist_wal_records_.Inc();
          persist_wal_bytes_.Inc(persist::kWalRecordBytes);
        }
        // A logged record MUST be enqueued — skipping it would leave a gap
        // between the WAL and the applied stream.  Nothing below can fail.
        queue_.push_back({update, Clock::now()});
        const auto depth = static_cast<std::int64_t>(queue_.size());
        queue_depth_.Set(depth);
        queue_depth_peak_.MaxWith(depth);
        submitted_.IncOrdered();
        queue_cv_.NotifyOne();
        return OkStatus();
      }
    }
  }
  if (degrade_event) EmitDegradedEnterEvent(*degrade_event);
  if (wal_failure) return *wal_failure;
  if (overflow && options_.event_log != nullptr) {
    options_.event_log->Emit(
        "backpressure_reject",
        {{"queue_capacity",
          static_cast<std::uint64_t>(options_.queue_capacity)},
         {"rejected_total", rejected_overflow_.Value()}});
  }
  return ResourceExhaustedError("ingest queue full");
}

Status BitrussService::Drain() {
  MutexLock lock(mu_);
  // Explicit predicate loop (not a wait-lambda) so the guarded reads are
  // checked against mu_ in this function's capability set.
  for (;;) {
    if (stopping_ && !drain_on_stop_) {
      return UnavailableError("shut down without draining");
    }
    const std::uint64_t applied = applied_.Value();
    if (queue_.empty() && applied == submitted_.Value() &&
        published_applied_.load(std::memory_order_acquire) == applied) {
      return OkStatus();
    }
    drained_cv_.Wait(lock);
  }
}

void BitrussService::Shutdown(bool drain) {
  {
    MutexLock lock(mu_);
    if (!stopping_) {
      stopping_ = true;
      drain_on_stop_ = drain;
    }
  }
  queue_cv_.NotifyAll();
  {
    // Exactly one caller joins; Shutdown may race with itself and the
    // destructor.
    MutexLock join_lock(join_mu_);
    if (writer_.joinable()) writer_.join();
  }
  drained_cv_.NotifyAll();
}

std::shared_ptr<const PhiSnapshot> BitrussService::Snapshot() const {
  snapshot_reads_.Inc();
  return std::atomic_load_explicit(&snapshot_, std::memory_order_acquire);
}

SupportT BitrussService::Phi(EdgeId slot) const {
  const Clock::time_point start = Clock::now();
  const SupportT value = Snapshot()->Phi(slot);
  read_phi_seconds_.Observe(
      std::chrono::duration<double>(Clock::now() - start).count());
  return value;
}

SupportT BitrussService::SupportOf(EdgeId slot) const {
  const Clock::time_point start = Clock::now();
  const SupportT value = Snapshot()->SupportOf(slot);
  read_phi_seconds_.Observe(
      std::chrono::duration<double>(Clock::now() - start).count());
  return value;
}

std::vector<std::pair<EdgeId, SupportT>> BitrussService::TopKPhi(
    std::size_t k) const {
  const Clock::time_point start = Clock::now();
  auto result = Snapshot()->TopKPhi(k);
  read_topk_seconds_.Observe(
      std::chrono::duration<double>(Clock::now() - start).count());
  return result;
}

std::vector<std::pair<SupportT, std::uint64_t>> BitrussService::PhiHistogram()
    const {
  const Clock::time_point start = Clock::now();
  auto result = Snapshot()->PhiHistogram();
  read_histogram_seconds_.Observe(
      std::chrono::duration<double>(Clock::now() - start).count());
  return result;
}

std::uint64_t BitrussService::QueueDepth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

double BitrussService::SnapshotAgeSeconds() const {
  const std::int64_t stamp = last_publish_ns_.load(std::memory_order_acquire);
  const std::int64_t now =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          Clock::now().time_since_epoch())
          .count();
  return stamp == 0 || now < stamp
             ? 0
             : static_cast<double>(now - stamp) * 1e-9;
}

std::string BitrussService::DegradedReason() const {
  MutexLock lock(mu_);
  return degraded_reason_;
}

bool BitrussService::EnterDegradedLocked(const std::string& reason) {
  if (degraded_.load(std::memory_order_acquire)) return false;
  degraded_reason_ = reason;
  // Release AFTER the reason is in place: an acquire-load of true followed
  // by taking mu_ always observes the reason (see the member comment).
  degraded_.store(true, std::memory_order_release);
  return true;
}

void BitrussService::EnterDegraded(const std::string& reason) {
  bool newly = false;
  {
    MutexLock lock(mu_);
    newly = EnterDegradedLocked(reason);
  }
  if (newly) EmitDegradedEnterEvent(reason);
}

void BitrussService::EmitDegradedEnterEvent(const std::string& reason) {
  if (options_.event_log == nullptr) return;
  options_.event_log->Emit("degraded_enter",
                           {{"reason", reason},
                            {"submitted", submitted_.Value()},
                            {"applied", applied_.Value()}});
}

std::string BitrussService::HealthJson() const {
  const std::shared_ptr<const PhiSnapshot> snap = Snapshot();
  char age[64];
  std::snprintf(age, sizeof(age), "%.6f", SnapshotAgeSeconds());
  const bool degraded = Degraded();
  std::string out =
      degraded ? "{\"status\":\"degraded\"" : "{\"status\":\"ok\"";
  if (degraded) {
    out += ",\"degraded_reason\":\"";
    obs::AppendJsonEscaped(DegradedReason(), &out);
    out += "\"";
  }
  out += ",\"snapshot_version\":" + std::to_string(snap->version);
  out += ",\"snapshot_applied_updates\":" +
         std::to_string(snap->applied_updates);
  out += ",\"snapshot_age_seconds\":";
  out += age;
  out += ",\"queue_depth\":" + std::to_string(QueueDepth());
  out += ",\"queue_capacity\":" + std::to_string(options_.queue_capacity);
  out += ",\"submitted_updates\":" + std::to_string(submitted_.Value());
  out += ",\"applied_updates\":" + std::to_string(applied_.Value());
  out += ",\"staleness_updates\":" + std::to_string(StalenessUpdates());
  out += ",\"num_edges\":" + std::to_string(snap->num_edges);
  out += ",\"num_butterflies\":" + std::to_string(snap->num_butterflies);
  out += ",\"recovered_base\":" + std::to_string(recovered_base_);
  out += "}";
  return out;
}

std::uint64_t BitrussService::StalenessUpdates() const {
  // Loads can interleave with a publication; clamp instead of wrapping.
  const std::uint64_t applied = applied_.Value();
  const std::uint64_t seen = published_applied_.load(std::memory_order_acquire);
  return applied > seen ? applied - seen : 0;
}

BitrussServiceStats BitrussService::Stats() const {
  BitrussServiceStats stats;
  stats.submitted = submitted_.Value();
  stats.applied = applied_.Value();
  stats.apply_failures = apply_failures_.Value();
  stats.rejected_overflow = rejected_overflow_.Value();
  stats.published_snapshots = published_snapshots_.Value();
  stats.compactions = compactions_.Value();
  stats.snapshot_reads = snapshot_reads_.Value();
  return stats;
}

void BitrussService::Pause() {
  {
    MutexLock lock(mu_);
    paused_ = true;
  }
  queue_cv_.NotifyAll();
}

void BitrussService::Resume() {
  {
    MutexLock lock(mu_);
    paused_ = false;
  }
  queue_cv_.NotifyAll();
}

void BitrussService::ApplyUpdate(const QueuedUpdate& queued) {
  const EdgeUpdate& update = queued.update;
  const Clock::time_point apply_start = Clock::now();
  bool ok = false;
  if (update.kind == EdgeUpdate::Kind::kInsert) {
    ok = inc_.InsertEdge(update.upper_local, update.lower_local).ok();
  } else {
    const EdgeId slot = inc_.Graph().FindEdge(
        update.upper_local, num_upper_ + update.lower_local);
    ok = slot != kInvalidEdge && inc_.DeleteEdge(slot).ok();
  }
  if (!ok) apply_failures_.Inc();
  const Clock::time_point done = Clock::now();
  // Apply latency is submit -> applied: queue wait included, because that
  // is what a client experiences before its update can become visible.
  apply_seconds_.Observe(
      std::chrono::duration<double>(done - queued.submit_time).count());
  applied_.IncOrdered();

  if (options_.event_log != nullptr) {
    const IncrementalUpdateStats& last = inc_.LastUpdateStats();
    if (ok && last.fallback) {
      options_.event_log->Emit(
          "fallback_recompute",
          {{"enumerated_butterflies", last.enumerated_butterflies},
           {"frontier_edges", last.frontier_edges},
           {"phi_changes", last.phi_changes}});
    }
    const double work_seconds =
        std::chrono::duration<double>(done - apply_start).count();
    if (options_.slow_apply_seconds > 0 &&
        work_seconds > options_.slow_apply_seconds) {
      options_.event_log->Emit(
          "slow_apply",
          {{"seconds", work_seconds},
           {"kind", update.kind == EdgeUpdate::Kind::kInsert ? "insert"
                                                             : "delete"},
           {"fallback", static_cast<std::uint64_t>(last.fallback ? 1 : 0)}});
    }
  }
}

void BitrussService::PublishSnapshot() {
  const Clock::time_point publish_start = Clock::now();
  // Publication is the durability boundary under kEveryPublish: every WAL
  // record acknowledged so far reaches disk before the covering snapshot
  // becomes visible to readers.
  if (wal_ != nullptr &&
      options_.persist.fsync_policy == persist::FsyncPolicy::kEveryPublish &&
      !Degraded()) {
    if (Status st = wal_->Sync(); !st.ok()) {
      persist_failures_.Inc();
      EnterDegraded("WAL sync at publish failed: " + st.message());
    }
  }
  const DynamicBipartiteGraph& graph = inc_.Graph();
  auto snapshot = std::make_shared<PhiSnapshot>();
  const std::uint64_t version = published_snapshots_.Value() + 1;
  const std::uint64_t covers = applied_.Value();
  const std::uint64_t prev_covered =
      published_applied_.load(std::memory_order_relaxed);
  snapshot->version = version;
  // Readers see the ABSOLUTE update count (meaningful across restarts);
  // the Drain/staleness protocol below stays in process-local numbers.
  snapshot->applied_updates = recovered_base_ + covers;
  snapshot->num_edges = graph.NumEdges();
  snapshot->num_slots = graph.NumSlots();
  snapshot->num_butterflies = graph.NumButterflies();
  snapshot->phi = inc_.PhiBySlot();
  snapshot->support.assign(graph.NumSlots(), 0);
  snapshot->live.assign(graph.NumSlots(), 0);
  for (EdgeId slot = 0; slot < graph.NumSlots(); ++slot) {
    if (graph.IsLive(slot)) {
      snapshot->live[slot] = 1;
      snapshot->support[slot] = graph.Support(slot);
    }
  }
  const EdgeId snapshot_num_edges = snapshot->num_edges;
  std::atomic_store_explicit(
      &snapshot_,
      std::shared_ptr<const PhiSnapshot>(std::move(snapshot)),
      std::memory_order_release);
  // Ordered after the snapshot store: once these counters say "covered",
  // Snapshot() already returns the covering version.  IncOrdered keeps the
  // release semantics the raw version store had.
  published_applied_.store(covers, std::memory_order_release);
  published_snapshots_.IncOrdered();
  applied_since_publish_ = 0;
  staleness_updates_.Observe(
      static_cast<double>(covers > prev_covered ? covers - prev_covered : 0));
  const Clock::time_point published_at = Clock::now();
  const double publish_cost =
      std::chrono::duration<double>(published_at - publish_start).count();
  publish_seconds_.Observe(publish_cost);
  last_publish_ns_.store(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          published_at.time_since_epoch())
          .count(),
      std::memory_order_release);
  // This publication is the first snapshot covering every update applied
  // since the previous one: their visibility latency ends exactly here.
  for (const Clock::time_point submit_time : pending_visibility_) {
    visibility_seconds_.Observe(
        std::chrono::duration<double>(published_at - submit_time).count());
  }
  pending_visibility_.clear();
  if (options_.event_log != nullptr) {
    options_.event_log->Emit(
        "publish",
        {{"version", version},
         {"covers", covers},
         {"publish_seconds", publish_cost},
         {"staleness_updates",
          covers > prev_covered ? covers - prev_covered : std::uint64_t{0}},
         {"num_edges", static_cast<std::uint64_t>(snapshot_num_edges)}});
  }
}

void BitrussService::WriterLoop() {
  const bool timed = options_.publish_interval_ms > 0;
  const auto interval = std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double, std::milli>(options_.publish_interval_ms));
  Clock::time_point last_publish = Clock::now();

  for (;;) {
    QueuedUpdate queued;
    bool have = false;
    bool stop = false;
    bool drain = true;
    {
      MutexLock lock(mu_);
      if (timed && applied_since_publish_ > 0) {
        // Unpublished work exists: wake by the publication deadline even
        // if no new update arrives.
        const Clock::time_point deadline = last_publish + interval;
        while (!(stopping_ || (!paused_ && !queue_.empty()))) {
          if (queue_cv_.WaitUntil(lock, deadline) == std::cv_status::timeout) {
            break;
          }
        }
      } else {
        while (!(stopping_ || (!paused_ && !queue_.empty()))) {
          queue_cv_.Wait(lock);
        }
      }
      stop = stopping_;
      drain = drain_on_stop_;
      if (stop && !drain) {
        queue_.clear();
        queue_depth_.Set(0);
      } else if ((!paused_ || stop) && !queue_.empty()) {
        queued = queue_.front();
        queue_.pop_front();
        queue_depth_.Set(static_cast<std::int64_t>(queue_.size()));
        have = true;
      }
    }

    if (have) {
      ApplyUpdate(queued);
      pending_visibility_.push_back(queued.submit_time);
      ++applied_since_publish_;
      ++applied_since_durable_;
      if (options_.compact_every_updates != 0 &&
          ++applied_since_compact_ >= options_.compact_every_updates) {
        const EdgeId slots_before = inc_.Graph().NumSlots();
        inc_.CompactSlots();
        applied_since_compact_ = 0;
        compactions_.IncOrdered();
        if (options_.event_log != nullptr) {
          options_.event_log->Emit(
              "compaction",
              {{"slots_before", static_cast<std::uint64_t>(slots_before)},
               {"slots_after",
                static_cast<std::uint64_t>(inc_.Graph().NumSlots())}});
        }
      }
      // Durable-snapshot cadence runs AFTER a possible compaction so the
      // persisted image reflects the numbering later snapshots serve.
      if (wal_ != nullptr && !Degraded() &&
          options_.persist.snapshot_every_updates != 0 &&
          applied_since_durable_ >= options_.persist.snapshot_every_updates) {
        WriteDurableSnapshot();
      }
    }

    bool queue_empty;
    {
      MutexLock lock(mu_);
      queue_empty = queue_.empty();
    }
    if (applied_since_publish_ > 0) {
      const bool count_due =
          options_.publish_every_updates != 0 &&
          applied_since_publish_ >= options_.publish_every_updates;
      const bool time_due = timed && Clock::now() >= last_publish + interval;
      // An idle writer always publishes, so staleness converges to 0 the
      // moment the ingest queue drains.
      if (queue_empty || count_due || time_due) {
        PublishSnapshot();
        last_publish = Clock::now();
        drained_cv_.NotifyAll();
      }
    }

    if (stop && queue_empty) {
      if (applied_since_publish_ > 0) PublishSnapshot();
      if (wal_ != nullptr && !Degraded()) {
        if (drain) {
          // A drained shutdown ends with a snapshot covering everything
          // applied, so the next start replays zero WAL records.
          WriteDurableSnapshot();
        } else if (Status st = wal_->Sync(); !st.ok()) {
          // Discarded-queue shutdown: those updates were still
          // acknowledged, so seal the WAL tail — recovery replays them.
          persist_failures_.Inc();
          EnterDegraded("WAL sync at shutdown failed: " + st.message());
        }
      }
      drained_cv_.NotifyAll();
      return;
    }
  }
}

persist::StateSnapshot BitrussService::BuildState(
    const IncrementalBitruss& inc, std::uint64_t applied) {
  DynamicGraphState graph = inc.Graph().ExportState();
  persist::StateSnapshot state;
  state.applied = applied;
  state.num_upper = graph.num_upper;
  state.num_lower = graph.num_lower;
  state.num_butterflies = graph.num_butterflies;
  state.upper = std::move(graph.upper);
  state.lower = std::move(graph.lower);
  state.support = std::move(graph.support);
  state.phi = inc.PhiBySlot();
  state.free_slots = std::move(graph.free_slots);
  return state;
}

void BitrussService::WriteDurableSnapshot() {
  const std::uint64_t applied = recovered_base_ + applied_.Value();
  if (Status st = persist::WriteSnapshotFile(options_.persist.dir,
                                             BuildState(inc_, applied));
      !st.ok()) {
    persist_snapshot_failures_.Inc();
    persist_failures_.Inc();
    EnterDegraded("durable snapshot failed: " + st.message());
    return;
  }
  persist_snapshots_.Inc();
  applied_since_durable_ = 0;
  // The snapshot covers every record through `applied`; whole segments
  // behind it are dead weight for recovery.
  const StatusOr<int> removed = wal_->TruncateThrough(applied);
  if (!removed.ok()) {
    persist_failures_.Inc();
    EnterDegraded("WAL truncation failed: " + removed.status().message());
    return;
  }
  if (removed.value() > 0) {
    persist_wal_truncated_segments_.Inc(
        static_cast<std::uint64_t>(removed.value()));
  }
  const int pruned = persist::RemoveOldSnapshots(
      options_.persist.dir, options_.persist.keep_snapshots);
  if (options_.event_log != nullptr) {
    options_.event_log->Emit("durable_snapshot",
                             {{"applied", applied},
                              {"wal_segments_removed", removed.value()},
                              {"snapshots_pruned", pruned}});
  }
}

StatusOr<std::unique_ptr<BitrussService>> BitrussService::Recover(
    const BipartiteGraph& seed, BitrussServiceOptions options,
    RecoveryStats* stats) {
  const Clock::time_point start = Clock::now();
  const std::string& dir = options.persist.dir;
  if (dir.empty()) {
    return InvalidArgumentError("Recover requires options.persist.dir");
  }
  if (Status st = EnsureDir(dir); !st.ok()) return st;
  RecoveryStats local;
  RecoveryStats& out = stats != nullptr ? *stats : local;
  out = RecoveryStats{};

  // 1. Newest intact durable snapshot — or the seed when none survives.
  std::optional<IncrementalBitruss> inc;
  std::uint64_t base = 0;
  {
    StatusOr<persist::StateSnapshot> loaded =
        persist::LoadNewestSnapshot(dir, &out.corrupt_snapshots_skipped);
    if (loaded.ok()) {
      persist::StateSnapshot& snap = loaded.value();
      if (snap.num_upper != seed.NumUpper() ||
          snap.num_lower != seed.NumLower()) {
        return DataLossError(
            "durable snapshot vertex universe (" +
            std::to_string(snap.num_upper) + "x" +
            std::to_string(snap.num_lower) +
            ") does not match the seed graph (" +
            std::to_string(seed.NumUpper()) + "x" +
            std::to_string(seed.NumLower()) + ")");
      }
      DynamicGraphState graph_state;
      graph_state.num_upper = snap.num_upper;
      graph_state.num_lower = snap.num_lower;
      graph_state.num_butterflies = snap.num_butterflies;
      graph_state.upper = std::move(snap.upper);
      graph_state.lower = std::move(snap.lower);
      graph_state.support = std::move(snap.support);
      graph_state.free_slots = std::move(snap.free_slots);
      StatusOr<DynamicBipartiteGraph> graph =
          DynamicBipartiteGraph::FromState(graph_state);
      if (!graph.ok()) return graph.status();
      inc.emplace(std::move(graph).value(), std::move(snap.phi),
                  options.incremental);
      base = snap.applied;
      out.snapshot_applied = base;
    } else if (loaded.status().code() == StatusCode::kNotFound) {
      // No usable snapshot: rebuild from the seed (full Decompose) and
      // lean entirely on WAL replay.
      inc.emplace(seed, options.incremental);
      out.from_seed = true;
    } else {
      return loaded.status();
    }
  }

  // 2. Replay the WAL suffix, repairing (physically truncating) a torn
  // final tail.  Mid-log corruption or sequence gaps surface as kDataLoss.
  persist::WalReplayStats replay;
  Status replay_status = persist::ReplayWal(
      dir, /*after_seq=*/base,
      [&inc](const persist::WalRecord& record) {
        // Mirrors ApplyUpdate: a record that no longer applies (duplicate
        // insert, vanished delete target) is a stream-level no-op, not a
        // replay failure — the original writer counted it the same way.
        if (record.kind == 0) {
          (void)inc->InsertEdge(record.upper_local, record.lower_local);
        } else {
          const EdgeId slot = inc->Graph().FindEdge(
              record.upper_local,
              inc->Graph().NumUpper() + record.lower_local);
          if (slot != kInvalidEdge) {
            (void)inc->DeleteEdge(slot);
          }
        }
        return OkStatus();
      },
      &replay, /*repair_torn_tail=*/true);
  if (!replay_status.ok()) return replay_status;
  out.wal_replayed = replay.records_replayed;
  out.torn_records_discarded = replay.torn_records_discarded;
  const std::uint64_t base_final = base + replay.records_replayed;

  // 3. Re-arm durability: persist a snapshot covering everything
  // recovered, drop the now-covered WAL segments, and reopen the WAL
  // fresh at the next sequence.  Failures here degrade instead of
  // aborting — the recovered state is intact and worth serving read-only.
  bool degraded = false;
  std::string degraded_reason;
  std::unique_ptr<persist::WalWriter> wal;
  Status persist_status =
      persist::WriteSnapshotFile(dir, BuildState(*inc, base_final));
  if (persist_status.ok()) {
    // Every old record has seq <= base_final (the snapshot's coverage, by
    // construction), so ALL segments are disposable — including a stale
    // tail below an os-buffered-era snapshot.
    for (const std::uint64_t first_seq :
         persist::ListStampedFiles(dir, "wal-", ".seg")) {
      const std::string path =
          persist::StampedPath(dir, "wal-", first_seq, ".seg");
      if (::unlink(path.c_str()) != 0) {
        persist_status =
            InternalError("unlink(" + path + "): " + std::strerror(errno));
        break;
      }
    }
  }
  if (persist_status.ok()) {
    persist::RemoveOldSnapshots(dir, options.persist.keep_snapshots);
    persist::WalOptions wal_options;
    wal_options.fsync_policy = options.persist.fsync_policy;
    wal_options.segment_bytes = options.persist.segment_bytes;
    StatusOr<std::unique_ptr<persist::WalWriter>> opened =
        persist::WalWriter::Open(dir, base_final + 1, wal_options);
    if (opened.ok()) {
      wal = std::move(opened).value();
    } else {
      persist_status = opened.status();
    }
  }
  if (!persist_status.ok()) {
    degraded = true;
    degraded_reason =
        "re-arming durability after recovery failed: " +
        persist_status.message();
  }

  out.seconds = std::chrono::duration<double>(Clock::now() - start).count();
  auto& registry = obs::MetricsRegistry::Default();
  registry.GetCounter("bitruss_recovery_replayed_total")
      ->Inc(replay.records_replayed);
  registry.GetCounter("bitruss_recovery_torn_records_total")
      ->Inc(replay.torn_records_discarded);
  registry
      .GetHistogram("bitruss_recovery_seconds",
                    obs::ExponentialBuckets(1e-4, 2.0, 20))
      ->Observe(out.seconds);

  RestoredState state{std::move(*inc), base_final, std::move(wal), degraded,
                      std::move(degraded_reason)};
  return std::unique_ptr<BitrussService>(
      new BitrussService(std::move(state), std::move(options)));
}

}  // namespace bitruss
