// Concurrent bitruss serving layer: many snapshot readers, one writer.
//
// `BitrussService` is the thread-safe facade the ROADMAP's serving
// north-star asks for.  It decouples mutation from read service the way
// RECEIPT decouples coarse from fine parallel work: a single writer thread
// owns the `IncrementalBitruss` state and applies queued edge updates one
// at a time, periodically freezing the maintained phi into an immutable
// `PhiSnapshot` that is published through an atomic shared_ptr.  Readers
// never touch the mutable state — every query (point phi/support, top-k,
// histogram) runs against the snapshot current at its start:
//
//     Submit()  ->  [bounded ingest queue]  ->  writer thread
//                                                |  applies updates to
//                                                |  IncrementalBitruss
//                                                v
//                              publishes PhiSnapshot (version v)
//                                                |
//        Snapshot()/Phi()/TopKPhi()  <--  atomic_load(shared_ptr)
//
// Concurrency contract.
//   * Readers are wait-free with respect to the writer: acquiring the
//     current snapshot is one atomic shared_ptr load (no service mutex is
//     taken on the read path), and a held snapshot stays valid and
//     immutable for as long as the caller keeps the shared_ptr, across any
//     number of later publications, compactions, or service shutdown.
//   * Reads are *bounded-stale*, not linearizable: a snapshot lags the
//     writer by at most the publication cadence (`publish_every_updates`
//     updates / `publish_interval_ms` ms, and the writer always publishes
//     when its queue drains, so an idle service converges to staleness 0).
//   * Backpressure instead of unbounded buffering: `Submit` never blocks;
//     once `queue_capacity` updates are waiting it returns
//     kResourceExhausted and the caller retries (or sheds load).
//   * Shutdown is explicit and drains by default: `Shutdown(true)` stops
//     intake, applies everything already queued, publishes a final
//     snapshot covering all of it, and joins the writer.
//   * Durability is opt-in (PersistOptions): accepted updates are
//     write-ahead logged BEFORE Submit acknowledges them, full state
//     snapshots bound the replay, and `Recover()` rebuilds the exact phi
//     after a crash.  A failed durability write flips the service to
//     read-only "degraded" mode rather than lying about persistence.
//
// Slot ids are the DynamicBipartiteGraph slot ids and are only meaningful
// relative to a snapshot: when the writer compacts the slot table
// (`compact_every_updates`), later snapshots use the new numbering (their
// `num_slots` shrinks).  Out-of-range reads against any snapshot are
// answered with 0, never out-of-bounds — see IncrementalBitruss::Phi.

#ifndef BITRUSS_SERVE_BITRUSS_SERVICE_H_
#define BITRUSS_SERVE_BITRUSS_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dynamic/incremental_bitruss.h"
#include "graph/bipartite_graph.h"
#include "graph/types.h"
#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "persist/snapshot_io.h"
#include "persist/wal.h"
#include "util/status.h"
#include "util/sync.h"

namespace bitruss {

/// One queued mutation.  Both kinds address the edge by its endpoint pair
/// (side-local ids, like the DynamicBipartiteGraph mutation APIs): slot
/// ids are writer-internal and a client cannot hold a stable one across
/// compactions, but the pair always names the same edge.
struct EdgeUpdate {
  enum class Kind : std::uint8_t { kInsert, kDelete };
  Kind kind = Kind::kInsert;
  VertexId upper_local = 0;
  VertexId lower_local = 0;
};

/// An immutable, versioned freeze of the maintained bitruss state.  All
/// vectors are indexed by slot id in [0, num_slots); free slots read phi
/// and support 0 with live == 0.  Query helpers are const and safe to call
/// from any number of threads concurrently.
struct PhiSnapshot {
  /// Publication sequence number, strictly increasing from 1 (the initial
  /// snapshot of the seed graph).
  std::uint64_t version = 0;
  /// Updates the writer had consumed when this snapshot was taken; the
  /// snapshot is exactly the state after the first `applied_updates`
  /// submitted updates.  Staleness of a read = writer's current applied
  /// count minus this.
  std::uint64_t applied_updates = 0;
  EdgeId num_edges = 0;
  EdgeId num_slots = 0;
  std::uint64_t num_butterflies = 0;
  std::vector<SupportT> phi;
  std::vector<SupportT> support;
  std::vector<std::uint8_t> live;

  /// Bitruss number of a slot; 0 for free slots and any id >= num_slots
  /// (a stale id from before a compaction reads 0, never out of bounds).
  SupportT Phi(EdgeId slot) const { return slot < phi.size() ? phi[slot] : 0; }
  /// Butterfly support of a slot, same bounds contract as Phi.
  SupportT SupportOf(EdgeId slot) const {
    return slot < support.size() ? support[slot] : 0;
  }
  bool IsLive(EdgeId slot) const {
    return slot < live.size() && live[slot] != 0;
  }

  /// The k live edges with the largest phi, sorted by (phi desc, slot
  /// asc) — deterministic for a given snapshot.  Returns fewer than k
  /// pairs when fewer live edges exist.
  std::vector<std::pair<EdgeId, SupportT>> TopKPhi(std::size_t k) const;

  /// (phi value, live-edge count) pairs sorted by phi ascending; counts
  /// sum to num_edges.
  std::vector<std::pair<SupportT, std::uint64_t>> PhiHistogram() const;
};

/// Crash-tolerance knobs.  With a non-empty `dir` the service WRITE-AHEAD
/// LOGS every accepted update before acknowledging it and periodically
/// persists full state snapshots, so a kill -9 (or power cut, under the
/// every-record fsync policy) loses at most the unacknowledged tail —
/// BitrussService::Recover rebuilds the exact maintained phi from the
/// newest snapshot plus the WAL suffix.  When any durability write fails
/// the service DEGRADES to read-only instead of crashing or silently
/// dropping its guarantee: reads keep serving the in-memory state, Submit
/// returns kUnavailable with the reason, /healthz reports "degraded".
struct PersistOptions {
  /// Durability directory; empty disables persistence entirely.  A fresh
  /// service requires it to hold no prior WAL/snapshot state (use
  /// Recover() for that); recovery requires it to be readable.
  std::string dir;
  /// When WAL records reach disk: every-record survives power loss,
  /// every-publish (default) fsyncs at snapshot publications, os-buffered
  /// survives process death only.
  persist::FsyncPolicy fsync_policy = persist::FsyncPolicy::kEveryPublish;
  /// WAL segment rotation threshold (persist::WalOptions::segment_bytes).
  std::uint64_t segment_bytes = 4ull << 20;
  /// Write a durable state snapshot (and truncate the WAL behind it)
  /// every N applied updates; 0 means only at drain-shutdown.
  std::uint64_t snapshot_every_updates = 4096;
  /// Durable snapshots retained on disk (older ones are pruned).
  int keep_snapshots = 2;
};

/// What BitrussService::Recover had to do; for logs, tests, and the
/// `bitruss_recovery_*` metric family.
struct RecoveryStats {
  /// WAL sequence the loaded snapshot covered (0 when starting from the
  /// seed graph because no intact snapshot existed).
  std::uint64_t snapshot_applied = 0;
  std::uint64_t wal_replayed = 0;           ///< records applied from the WAL
  std::uint64_t torn_records_discarded = 0; ///< torn-tail records dropped
  int corrupt_snapshots_skipped = 0;  ///< damaged snapshots passed over
  bool from_seed = false;  ///< no snapshot found; state rebuilt from seed
  double seconds = 0;      ///< wall time of the whole recovery
};

struct BitrussServiceOptions {
  /// Bound on updates waiting in the ingest queue; Submit returns
  /// kResourceExhausted once it is reached (backpressure, never blocking).
  std::size_t queue_capacity = 4096;
  /// Publish a fresh snapshot every N consumed updates (0 disables the
  /// count trigger).  Independent of either knob, the writer publishes
  /// whenever its queue drains while unpublished updates exist.
  std::uint64_t publish_every_updates = 64;
  /// Publish at least every T milliseconds while updates keep arriving
  /// (0 disables the time trigger).
  double publish_interval_ms = 10.0;
  /// Compact the slot table every N consumed updates (0 = never).  Under
  /// sustained churn the slot table otherwise grows monotonically; see
  /// DynamicBipartiteGraph::CompactSlots.  Snapshots published after a
  /// compaction use the new slot numbering.
  std::uint64_t compact_every_updates = 0;
  /// Knobs for the owned IncrementalBitruss (cascade budget, fallback
  /// decompose algorithm).
  IncrementalBitrussOptions incremental;
  /// Structured lifecycle event sink (publish, compaction,
  /// fallback_recompute, backpressure_reject, slow_apply); not owned, must
  /// outlive the service.  Null disables event emission entirely.
  obs::EventLog* event_log = nullptr;
  /// An apply whose own work (dequeue to done, queue wait excluded) takes
  /// longer than this emits a `slow_apply` event; 0 disables.
  double slow_apply_seconds = 0.05;
  /// WAL + snapshot durability; see PersistOptions.  Disabled by default.
  PersistOptions persist;
};

/// Monotonic service counters, readable from any thread at any time.
/// Backed by the service's obs::Counter instruments, which are also
/// registered with obs::MetricsRegistry::Default() under
/// `bitruss_serve_*` — one set of counters serves both views.
struct BitrussServiceStats {
  std::uint64_t submitted = 0;   ///< accepted into the queue
  std::uint64_t applied = 0;     ///< consumed by the writer (incl. no-ops)
  std::uint64_t apply_failures = 0;  ///< duplicate inserts, missing deletes
  std::uint64_t rejected_overflow = 0;  ///< Submit calls bounced by backpressure
  std::uint64_t published_snapshots = 0;
  std::uint64_t compactions = 0;
  std::uint64_t snapshot_reads = 0;  ///< Snapshot() acquisitions served
};

class BitrussService {
 public:
  /// Builds the initial phi state from `seed` (one full Decompose) on the
  /// calling thread, publishes it as snapshot version 1, then starts the
  /// writer thread.
  explicit BitrussService(const BipartiteGraph& seed,
                          BitrussServiceOptions options = {});

  /// Rebuilds a service from the durable state under options.persist.dir
  /// (which must be set): loads the newest intact snapshot (falling back
  /// to older ones past corrupt files, and to a fresh Decompose of `seed`
  /// when none exists), replays the WAL records after it — a torn final
  /// record is discarded, any other damage or sequence gap returns
  /// kDataLoss — writes a fresh durable snapshot covering everything
  /// recovered, clears the old WAL, and starts serving.  The recovered
  /// phi is bit-identical to replaying the same accepted updates against
  /// a fresh service.  If re-establishing durability fails (disk full at
  /// the recovery snapshot, WAL reopen error) the service still starts,
  /// DEGRADED to read-only, so the recovered state remains queryable.
  [[nodiscard]] static StatusOr<std::unique_ptr<BitrussService>> Recover(
      const BipartiteGraph& seed, BitrussServiceOptions options,
      RecoveryStats* stats = nullptr);

  BitrussService(const BitrussService&) = delete;
  BitrussService& operator=(const BitrussService&) = delete;

  /// Equivalent to Shutdown(/*drain=*/true).
  ~BitrussService();

  // -- Ingest side (any thread) --------------------------------------------

  /// Enqueues one update without blocking.  kResourceExhausted when the
  /// queue is full (retry later), kUnavailable after Shutdown,
  /// kInvalidArgument for out-of-range endpoints (checked here so the
  /// producer learns immediately, not via a counter).
  [[nodiscard]] Status Submit(const EdgeUpdate& update);
  [[nodiscard]] Status SubmitInsert(VertexId upper_local,
                                    VertexId lower_local) {
    return Submit({EdgeUpdate::Kind::kInsert, upper_local, lower_local});
  }
  [[nodiscard]] Status SubmitDelete(VertexId upper_local,
                                    VertexId lower_local) {
    return Submit({EdgeUpdate::Kind::kDelete, upper_local, lower_local});
  }

  /// Blocks until every update submitted before the call has been applied
  /// AND a snapshot covering all of them is published.  kUnavailable if
  /// the service was shut down without draining first.
  [[nodiscard]] Status Drain();

  /// Stops intake (Submit fails with kUnavailable from now on); with
  /// `drain` applies + publishes everything queued, otherwise discards the
  /// queue after the in-flight update.  Joins the writer.  Idempotent; the
  /// first call's drain choice wins.
  void Shutdown(bool drain = true);

  // -- Read side (any thread, never blocked by the writer) -----------------

  /// The most recently published snapshot (never null).
  std::shared_ptr<const PhiSnapshot> Snapshot() const;

  /// Point reads off the current snapshot.  These service-level wrappers
  /// are additionally TIMED (acquisition + query) into the
  /// `bitruss_serve_read_{phi,topk,histogram}_seconds` histograms —
  /// callers that hold a Snapshot() and query it directly skip the
  /// clock overhead and the instruments.
  SupportT Phi(EdgeId slot) const;
  SupportT SupportOf(EdgeId slot) const;
  std::vector<std::pair<EdgeId, SupportT>> TopKPhi(std::size_t k) const;
  std::vector<std::pair<SupportT, std::uint64_t>> PhiHistogram() const;

  std::uint64_t SubmittedUpdates() const { return submitted_.Value(); }
  std::uint64_t AppliedUpdates() const { return applied_.Value(); }
  std::uint64_t PublishedVersion() const {
    return published_snapshots_.Value();
  }
  /// Applied updates not yet visible to readers (the writer's lead over
  /// the published snapshot, in updates).
  std::uint64_t StalenessUpdates() const;

  /// Updates currently waiting in the ingest queue.
  std::uint64_t QueueDepth() const;
  /// Seconds since the last snapshot publication (how old the visible
  /// state is in wall time; complements StalenessUpdates' update count).
  double SnapshotAgeSeconds() const;

  /// One-line JSON liveness document for an admin `/healthz` endpoint:
  /// status ("ok", or "degraded" with a degraded_reason field), snapshot
  /// version + covered updates + age, queue depth / capacity,
  /// applied/submitted counters, staleness, edge + butterfly counts.
  /// Safe from any thread; values are individually atomic (same
  /// consistency contract as Stats()).
  std::string HealthJson() const;

  /// True once a durability write has failed and the service is serving
  /// reads only (Submit returns kUnavailable).  Latched for the life of
  /// the process — re-arming durability safely needs a restart through
  /// Recover().
  bool Degraded() const {
    return degraded_.load(std::memory_order_acquire);
  }
  /// Human-readable cause of the degradation ("" while healthy).
  std::string DegradedReason() const;

  /// Submitted/applied counts offset by the updates this process
  /// recovered at startup (0 for a fresh service): the WAL sequence space
  /// and durable snapshot stamps live in this absolute numbering, while
  /// Stats() counters cover only this process's own work.
  std::uint64_t RecoveredBase() const { return recovered_base_; }

  BitrussServiceStats Stats() const;

  // -- Test hooks ----------------------------------------------------------

  /// Suspends/resumes the writer between updates.  While paused the queue
  /// fills and Submit exercises real backpressure deterministically; used
  /// by tests, not part of the serving API proper.
  void Pause();
  void Resume();

 private:
  /// A queued update plus its submit timestamp: the lifecycle clock that
  /// apply latency (submit -> applied) and visibility latency (submit ->
  /// covering snapshot published) are measured against.
  struct QueuedUpdate {
    EdgeUpdate update;
    std::chrono::steady_clock::time_point submit_time;
  };

  /// Everything Recover() rebuilds before the service object exists; the
  /// private constructor adopts it instead of decomposing a seed.
  struct RestoredState {
    IncrementalBitruss inc;
    std::uint64_t applied = 0;  ///< absolute update count the state reflects
    std::unique_ptr<persist::WalWriter> wal;  ///< null when degraded
    bool degraded = false;
    std::string degraded_reason;
  };
  BitrussService(RestoredState state, BitrussServiceOptions options);

  void WriterLoop();
  /// Applies one update to the owned IncrementalBitruss (writer thread
  /// only) and maintains the applied/failure counters plus the
  /// apply-latency histogram and slow-apply/fallback events.
  void ApplyUpdate(const QueuedUpdate& queued);
  /// Freezes the current state into a snapshot and publishes it (writer
  /// thread, or the constructor before the writer starts).
  void PublishSnapshot();
  /// Attach/detach the owned instruments to the default MetricsRegistry
  /// under their `bitruss_serve_*` family names.
  void RegisterMetrics();
  void UnregisterMetrics();

  /// Latches read-only degraded mode with `reason`; true when this call
  /// was the transition (the caller then emits the degraded_enter event
  /// OUTSIDE mu_ — the event log's lock stays a leaf).
  bool EnterDegradedLocked(const std::string& reason) REQUIRES(mu_);
  /// Lock-taking wrapper for writer-thread call sites; emits the event.
  void EnterDegraded(const std::string& reason);
  void EmitDegradedEnterEvent(const std::string& reason);

  /// Fresh-constructor persistence setup: opens the WAL at sequence 1 and
  /// writes the initial applied-0 snapshot.  Requires a state-free
  /// directory (throws std::invalid_argument otherwise — prior durable
  /// state must go through Recover()); a failed WAL open throws
  /// std::runtime_error, a failed initial snapshot only degrades.
  void InitFreshPersistence();

  /// Full state image at absolute update count `applied` (shared between
  /// the writer's cadence snapshots and Recover's post-replay snapshot).
  static persist::StateSnapshot BuildState(const IncrementalBitruss& inc,
                                           std::uint64_t applied);
  /// Writer thread: persists a durable snapshot, truncates the WAL behind
  /// it, prunes old snapshots; any failure degrades the service.
  void WriteDurableSnapshot();

  BitrussServiceOptions options_;
  IncrementalBitruss inc_;  // writer thread only (constructor excepted)
  // Vertex-set bounds are fixed at seeding; cached so Submit can validate
  // endpoints without touching the writer-owned graph.
  const VertexId num_upper_;
  const VertexId num_lower_;
  /// Updates already reflected in the recovered state at startup (0 for a
  /// fresh service).  Process-local counters stay zero-based; this offset
  /// is added wherever a number must be meaningful ACROSS restarts: WAL
  /// sequences, durable snapshot stamps, published applied_updates.
  const std::uint64_t recovered_base_ = 0;

  /// Write-ahead log, or null when persistence is off (and after a failed
  /// recovery re-arm).  The pointer is set once in the constructor and
  /// never reassigned; WalWriter itself is internally synchronized, so
  /// Submit (under mu_) and the writer thread (Sync/TruncateThrough) may
  /// call into it concurrently.
  std::unique_ptr<persist::WalWriter> wal_;
  /// Ordering: release store under mu_ (after degraded_reason_ is
  /// written), acquire loads elsewhere — a reader that observes true and
  /// then takes mu_ sees the reason.  Latched, never cleared.
  std::atomic<bool> degraded_{false};
  std::string degraded_reason_ GUARDED_BY(mu_);

  // Published state.  snapshot_ is accessed exclusively through
  // std::atomic_load / std::atomic_store (acquire/release): C++17's
  // spelling of atomic<shared_ptr>.
  std::shared_ptr<const PhiSnapshot> snapshot_;
  /// Updates covered by the published snapshot; release-stored after the
  /// snapshot store, acquire-loaded by Drain/StalenessUpdates so seeing
  /// the count implies seeing the covering snapshot.
  std::atomic<std::uint64_t> published_applied_{0};

  // Counters (see BitrussServiceStats), doubling as the service's
  // registry-visible instruments.  submitted_/applied_ and the publication
  // pair keep their original release/acquire protocol via IncOrdered():
  // Drain()'s predicate and readers' staleness math still synchronize-with
  // the writer exactly as before the registry re-backing.
  obs::Counter submitted_;
  obs::Counter applied_;
  obs::Counter apply_failures_;
  obs::Counter rejected_overflow_;
  obs::Counter published_snapshots_;
  obs::Counter compactions_;
  mutable obs::Counter snapshot_reads_;
  obs::Gauge queue_depth_;       ///< instantaneous, set under mu_
  obs::Gauge queue_depth_peak_;  ///< high-water mark across the run
  obs::Histogram publish_seconds_;
  obs::Histogram staleness_updates_;
  // Request-lifecycle latency instruments (PR 8): exact per-update
  // submit->applied and submit->first-visible-snapshot walls, plus the
  // timed read-path wrappers.
  obs::Histogram apply_seconds_;
  obs::Histogram visibility_seconds_;
  mutable obs::Histogram read_phi_seconds_;
  mutable obs::Histogram read_topk_seconds_;
  mutable obs::Histogram read_histogram_seconds_;
  // Durability instruments (PR 10), registered as `bitruss_persist_*`.
  obs::Counter persist_wal_records_;
  obs::Counter persist_wal_bytes_;
  obs::Counter persist_failures_;
  obs::Counter persist_snapshots_;
  obs::Counter persist_snapshot_failures_;
  obs::Counter persist_wal_truncated_segments_;
  std::vector<std::uint64_t> gauge_callback_handles_;
  /// Steady-clock nanosecond stamp of the last publication, for
  /// SnapshotAgeSeconds: release-stored by the writer at publication,
  /// acquire-loaded by any reader thread.
  std::atomic<std::int64_t> last_publish_ns_{0};

  // Ingest queue + writer control.
  mutable Mutex mu_;
  CondVar queue_cv_;    // writer waits for work/stop
  CondVar drained_cv_;  // Drain() waits for quiescence
  std::deque<QueuedUpdate> queue_ GUARDED_BY(mu_);
  bool stopping_ GUARDED_BY(mu_) = false;
  bool drain_on_stop_ GUARDED_BY(mu_) = true;
  bool paused_ GUARDED_BY(mu_) = false;

  // Writer-thread-local publication bookkeeping (no locking needed).
  std::uint64_t applied_since_publish_ = 0;
  std::uint64_t applied_since_compact_ = 0;
  std::uint64_t applied_since_durable_ = 0;
  /// Submit timestamps of applied-but-not-yet-published updates; drained
  /// into visibility_seconds_ at each publication (bounded by the publish
  /// cadence: the writer publishes at the latest when its queue drains).
  std::vector<std::chrono::steady_clock::time_point> pending_visibility_;

  Mutex join_mu_;  // serializes the writer join across Shutdown races
  /// Started last in the constructor (unguarded there: the object is not
  /// yet shared), joined by exactly one Shutdown caller under join_mu_.
  std::thread writer_ GUARDED_BY(join_mu_);
};

}  // namespace bitruss

#endif  // BITRUSS_SERVE_BITRUSS_SERVICE_H_
