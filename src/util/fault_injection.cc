#include "util/fault_injection.h"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <map>

#include "util/sync.h"

namespace bitruss::fault {

namespace {

struct PointState {
  ArmSpec spec;
  std::uint64_t hits = 0;
  bool fired = false;  // one_shot bookkeeping
};

struct Table {
  Mutex mu;
  std::map<std::string, PointState> points GUARDED_BY(mu);
};

Table& GetTable() {
  static Table* table = new Table();  // leaked: outlives every fault point
  return *table;
}

// Ordering: relaxed — the armed count is a pure fast-path hint; the table
// mutex below is the real synchronization for every armed access.
std::atomic<std::uint64_t> g_armed{0};

std::uint64_t Mix64(std::uint64_t x) {
  // splitmix64 finalizer: cheap, well-distributed, dependency-free.
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void Arm(const std::string& point, const ArmSpec& spec) {
  Table& table = GetTable();
  MutexLock lock(table.mu);
  auto [it, inserted] = table.points.insert_or_assign(point, PointState{spec});
  (void)it;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void Disarm(const std::string& point) {
  Table& table = GetTable();
  MutexLock lock(table.mu);
  if (table.points.erase(point) != 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
}

void ResetAll() {
  Table& table = GetTable();
  MutexLock lock(table.mu);
  g_armed.fetch_sub(table.points.size(), std::memory_order_relaxed);
  table.points.clear();
}

std::uint64_t HitCount(const std::string& point) {
  Table& table = GetTable();
  MutexLock lock(table.mu);
  const auto it = table.points.find(point);
  return it == table.points.end() ? 0 : it->second.hits;
}

FaultAction Hit(const char* point) {
  if (g_armed.load(std::memory_order_relaxed) == 0) return FaultAction::kNone;
  Table& table = GetTable();
  MutexLock lock(table.mu);
  const auto it = table.points.find(point);
  if (it == table.points.end()) return FaultAction::kNone;
  PointState& state = it->second;
  ++state.hits;
  if (state.hits <= state.spec.skip_first) return FaultAction::kNone;
  if (state.spec.one_shot && state.fired) return FaultAction::kNone;
  state.fired = true;
  if (state.spec.action == FaultAction::kKill) KillNow();
  return state.spec.action;
}

std::size_t TornKeepBytes(const char* point, std::size_t full_size) {
  if (full_size <= 1) return 0;
  std::uint64_t seed = 1;
  std::uint64_t hits = 0;
  {
    Table& table = GetTable();
    MutexLock lock(table.mu);
    const auto it = table.points.find(point);
    if (it != table.points.end()) {
      seed = it->second.spec.seed;
      hits = it->second.hits;
    }
  }
  // A strict prefix in [0, full_size - 1]: at least one byte is missing,
  // so the record can never round-trip whole.
  return static_cast<std::size_t>(Mix64(seed ^ (hits * 0x51ull)) % full_size);
}

void KillNow() {
  ::kill(::getpid(), SIGKILL);
  std::abort();  // unreachable unless SIGKILL delivery itself failed
}

Status InjectedStatus(const char* point) {
  switch (Hit(point)) {
    case FaultAction::kNone:
      return OkStatus();
    case FaultAction::kEnospc:
      return InternalError(std::string("injected ENOSPC (No space left on "
                                       "device) at fault point ") +
                           point);
    case FaultAction::kError:
    case FaultAction::kTornWrite:
      return InternalError(std::string("injected fault at ") + point);
    case FaultAction::kKill:
      break;  // Hit() never returns kKill
  }
  return InternalError(std::string("injected fault at ") + point);
}

}  // namespace bitruss::fault
