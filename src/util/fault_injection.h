// Deterministic fault injection for crash-tolerance testing.
//
// A FAULT POINT is a named location in production code (all current points
// live in the persistence layer: "wal.append", "snapshot.pre_rename", ...)
// where a test can arm a failure.  Untouched, a point is one relaxed
// atomic load; armed, it can
//
//   kError      make the call site return an injected error Status
//   kEnospc     same, with an ENOSPC-flavored message (disk-full drills)
//   kTornWrite  make the call site persist only a seeded prefix of the
//               bytes it was about to write, then die by SIGKILL — the
//               canonical torn-record crash
//   kKill       raise SIGKILL at the point, before any side effect
//
// Everything is deterministic: a point fires on exactly the
// (skip_first+1)-th hit, and torn-write prefix lengths derive from the
// armed seed plus the hit index, so a failing crash test replays
// identically.  kKill/kTornWrite are for FORKED children (the test forks,
// the child arms and dies, the parent recovers the on-disk state).
//
// Call sites use the macros, which compile to constant no-ops when the
// build disables BITRUSS_FAULT_INJECTION_ENABLED (CMake option
// BITRUSS_FAULT_INJECTION, default ON so the tier-1 crash suite runs; the
// crash-recovery CI job build-checks the OFF configuration):
//
//   switch (BITRUSS_FAULT_POINT("wal.append")) { ... }   // want the action
//   BITRUSS_FAULT_POINT_STATUS("wal.pre_fsync");         // error-or-nothing
//
// tools/lint.py additionally requires every point name declared in src/ to
// appear in tests/, so no point can exist without crash coverage.

#ifndef BITRUSS_UTIL_FAULT_INJECTION_H_
#define BITRUSS_UTIL_FAULT_INJECTION_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace bitruss::fault {

enum class FaultAction : std::uint8_t {
  kNone = 0,
  kError,
  kEnospc,
  kTornWrite,
  kKill,
};

struct ArmSpec {
  FaultAction action = FaultAction::kNone;
  /// The point fires on hit skip_first + 1 (and on every later hit unless
  /// one_shot); earlier hits pass through untouched.
  std::uint64_t skip_first = 0;
  /// Fire once, then behave as if disarmed (hits keep being counted).
  bool one_shot = false;
  /// Seed for torn-write prefix derivation; same seed + same hit index =>
  /// same prefix length.
  std::uint64_t seed = 1;
};

/// Arms `point` (replacing any previous spec and resetting its hit count).
void Arm(const std::string& point, const ArmSpec& spec);
void Disarm(const std::string& point);
/// Disarms everything and clears all hit counts.
void ResetAll();
/// Hits recorded for `point` since it was last armed (0 when never armed;
/// counting only happens while the point is armed — the disarmed fast path
/// is a single relaxed load and touches no table).
std::uint64_t HitCount(const std::string& point);

/// The runtime entry the macros call.  Returns the armed action when the
/// point fires, kNone otherwise.  kKill never returns: it raises SIGKILL
/// here so every call site gets crash coverage without handling it.
FaultAction Hit(const char* point);

/// For a call site that got kTornWrite from Hit(): how many of `full_size`
/// bytes to persist before dying (a strict prefix, >= 1 byte short when
/// full_size > 0).  Deterministic in (armed seed, hit index).
std::size_t TornKeepBytes(const char* point, std::size_t full_size);

/// Raises SIGKILL (abort() as a last resort).  Call sites use this after
/// persisting a torn prefix.
[[noreturn]] void KillNow();

/// Status-flavored point for call sites with nothing torn to write:
/// kError/kEnospc/kTornWrite map to a non-OK Status naming the point
/// (kTornWrite degenerates to kError here), kKill dies, kNone returns OK.
[[nodiscard]] Status InjectedStatus(const char* point);

}  // namespace bitruss::fault

#if defined(BITRUSS_FAULT_INJECTION_ENABLED)
#define BITRUSS_FAULT_POINT(name) (::bitruss::fault::Hit(name))
#define BITRUSS_FAULT_POINT_STATUS(name)                         \
  do {                                                           \
    ::bitruss::Status fault_status_ =                            \
        ::bitruss::fault::InjectedStatus(name);                  \
    if (!fault_status_.ok()) return fault_status_;               \
  } while (0)
#else
#define BITRUSS_FAULT_POINT(name) (::bitruss::fault::FaultAction::kNone)
#define BITRUSS_FAULT_POINT_STATUS(name) \
  do {                                   \
  } while (0)
#endif

#endif  // BITRUSS_UTIL_FAULT_INJECTION_H_
