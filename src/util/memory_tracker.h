// Lightweight memory accounting helpers.  Index structures report their own
// footprint via `MemoryBytes()`; this header only hosts the shared unit
// conversions and a best-effort process-level probe for benches.

#ifndef BITRUSS_UTIL_MEMORY_TRACKER_H_
#define BITRUSS_UTIL_MEMORY_TRACKER_H_

#include <cstdint>
#include <cstdio>
#include <cstring>

namespace bitruss {

inline double BytesToMiB(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

inline double BytesToMB(std::uint64_t bytes) {
  return static_cast<double>(bytes) / 1e6;
}

/// Current resident set size in bytes, or 0 where /proc is unavailable.
/// Best-effort: used only for bench reporting, never for decisions.
inline std::uint64_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long pages_total = 0, pages_resident = 0;
  const int got = std::fscanf(f, "%llu %llu", &pages_total, &pages_resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::uint64_t>(pages_resident) * 4096ull;
}

}  // namespace bitruss

#endif  // BITRUSS_UTIL_MEMORY_TRACKER_H_
