// Lightweight memory accounting helpers.  Index structures report their own
// footprint via `MemoryBytes()`; this header only hosts the shared unit
// conversions and best-effort process-level probes for benches and the
// observability layer's process gauges.

#ifndef BITRUSS_UTIL_MEMORY_TRACKER_H_
#define BITRUSS_UTIL_MEMORY_TRACKER_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace bitruss {

inline double BytesToMiB(std::uint64_t bytes) {
  return static_cast<double>(bytes) / (1024.0 * 1024.0);
}

inline double BytesToMB(std::uint64_t bytes) {
  return static_cast<double>(bytes) / 1e6;
}

/// System page size in bytes; 4096 where sysconf is unavailable or fails.
inline std::uint64_t PageSizeBytes() {
  static const std::uint64_t page_size = [] {
#if defined(_SC_PAGESIZE)
    const long size = ::sysconf(_SC_PAGESIZE);
    if (size > 0) return static_cast<std::uint64_t>(size);
#endif
    return static_cast<std::uint64_t>(4096);
  }();
  return page_size;
}

/// Current resident set size in bytes, or 0 where /proc is unavailable.
/// Best-effort: used only for bench reporting and the process RSS gauge,
/// never for decisions.
inline std::uint64_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) return 0;
  unsigned long long pages_total = 0, pages_resident = 0;
  const int got = std::fscanf(f, "%llu %llu", &pages_total, &pages_resident);
  std::fclose(f);
  if (got != 2) return 0;
  return static_cast<std::uint64_t>(pages_resident) * PageSizeBytes();
}

/// Peak resident set size (`VmHWM` from /proc/self/status) in bytes, or 0
/// where unavailable.  The kernel reports the high-water mark in kB.
inline std::uint64_t PeakRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t peak = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      peak = std::strtoull(line + 6, nullptr, 10) * 1024ull;
      break;
    }
  }
  std::fclose(f);
  return peak;
}

}  // namespace bitruss

#endif  // BITRUSS_UTIL_MEMORY_TRACKER_H_
