// Deterministic, seedable PRNG used by all synthetic generators.
//
// std::mt19937 + distributions are not guaranteed to produce identical
// streams across standard libraries; the generators promise bit-identical
// datasets for a fixed seed, so we ship our own splitmix64/xoshiro-style
// mixer instead.

#ifndef BITRUSS_UTIL_RANDOM_H_
#define BITRUSS_UTIL_RANDOM_H_

#include <cstdint>

namespace bitruss {

/// splitmix64 (Steele et al.): tiny, fast, and passes BigCrush when used as
/// a stream; fully reproducible across platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t Next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, n); returns 0 when n == 0.  Uses 64-bit multiply-shift
  /// (Lemire) — bias is negligible for the n values used here.
  std::uint64_t Below(std::uint64_t n) {
    if (n == 0) return 0;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(Next()) * n) >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// True with probability p (p <= 0 never, p >= 1 always).
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  std::uint64_t state_;
};

/// Stable 64-bit string hash (FNV-1a) for deriving per-dataset seeds.
inline std::uint64_t HashString64(const char* s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (; *s; ++s) {
    h ^= static_cast<unsigned char>(*s);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace bitruss

#endif  // BITRUSS_UTIL_RANDOM_H_
