// Minimal absl-style Status / StatusOr<T> for fallible library operations.
//
// The static pipeline throws std::invalid_argument on construction errors
// (a build-time contract violation), but the dynamic subsystem's mutation
// APIs fail routinely at runtime — duplicate inserts, deletes of unknown
// edges — and callers must branch on the outcome, so those return values
// instead of exceptions.  Header-only; just the codes this library needs.

#ifndef BITRUSS_UTIL_STATUS_H_
#define BITRUSS_UTIL_STATUS_H_

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

namespace bitruss {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kResourceExhausted,
  kUnavailable,
  kInternal,
  kDataLoss,
};

inline const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

/// [[nodiscard]] at class scope: EVERY function returning a Status warns
/// when the result is dropped (compiled with -Werror in CI).  A call site
/// that truly cannot fail or whose failure is intentionally ignored says
/// so with an explicit `(void)` cast plus a comment.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }
  friend bool operator!=(const Status& a, const Status& b) { return !(a == b); }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status(); }
inline Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}
inline Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}
inline Status AlreadyExistsError(std::string message) {
  return Status(StatusCode::kAlreadyExists, std::move(message));
}
inline Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}
/// Backpressure: a bounded queue or budget is full; retry later.
inline Status ResourceExhaustedError(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}
/// The target is shutting down (or not yet started) and cannot accept work.
inline Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}
/// An environment/OS-level operation failed (socket, file); the message
/// carries the underlying errno text.
inline Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}
/// Unrecoverable corruption of persisted state (checksum mismatch, sequence
/// gap in a WAL middle): retrying cannot help and the data is gone.  A torn
/// FINAL record is NOT data loss — it was never acknowledged as durable.
inline Status DataLossError(std::string message) {
  return Status(StatusCode::kDataLoss, std::move(message));
}

/// Either a value or a non-ok Status.  Accessing value() without checking
/// ok() on an error throws std::logic_error — a caller bug, not a data
/// error, matching the library's exceptions-for-contract-violations rule.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      throw std::logic_error("StatusOr: constructed from OK status w/o value");
    }
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    EnsureOk();
    return *value_;
  }
  T& value() & {
    EnsureOk();
    return *value_;
  }
  T&& value() && {
    EnsureOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }

 private:
  void EnsureOk() const {
    if (!ok()) {
      throw std::logic_error("StatusOr: value() on error status: " +
                             status_.ToString());
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace bitruss

#endif  // BITRUSS_UTIL_STATUS_H_
