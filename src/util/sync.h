// Annotated synchronization primitives: the ONE place this repo touches
// std::mutex / std::condition_variable directly (tools/lint.py enforces
// this).  Everything else locks through these wrappers so Clang's
// -Wthread-safety analysis can prove the repo's locking discipline at
// compile time: which mutex guards which field (GUARDED_BY), which
// methods demand a held lock (REQUIRES), and which calls acquire/release
// (ACQUIRE/RELEASE).  Off Clang the macros expand to nothing and the
// wrappers are zero-cost veneers over the std primitives, so GCC builds
// are unchanged and the annotations cost nothing at runtime anywhere.
//
// Annotation conventions used across the repo:
//
//   * Every field whose access is serialized by a mutex carries
//     GUARDED_BY(mu_) at its declaration — the declaration is the
//     documentation.  Fields owned by exactly one thread (e.g. the
//     serving writer's publication bookkeeping) are NOT guarded; they
//     carry a comment naming the owning thread instead, because a lock
//     annotation would misstate the design.
//   * Condition-variable predicates are written as explicit
//     `while (!cond) cv.Wait(lock)` loops, never as predicate lambdas:
//     the analysis checks the enclosing function's capability set, so
//     the guarded reads in `cond` are verified in place.  (A lambda body
//     is analyzed as a separate function that holds nothing.)
//   * NO_THREAD_SAFETY_ANALYSIS is an escape hatch of last resort; any
//     use must carry an adjacent comment justifying why the analysis
//     cannot see the invariant (the static-analysis CI job greps for
//     naked uses).
//   * Lock() / Unlock() exist for the rare non-scoped pattern; prefer
//     MutexLock so the RELEASE is tied to scope exit.

#ifndef BITRUSS_UTIL_SYNC_H_
#define BITRUSS_UTIL_SYNC_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

// -- Clang thread-safety annotation macros ----------------------------------
// GNU-style spelling (not [[clang::...]]) so one macro works on every
// declaration position Clang accepts; empty on other compilers.
#if defined(__clang__)
#define BITRUSS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define BITRUSS_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a lockable capability ("mutex").
#define CAPABILITY(x) BITRUSS_THREAD_ANNOTATION(capability(x))
/// Marks an RAII type whose lifetime equals a critical section.
#define SCOPED_CAPABILITY BITRUSS_THREAD_ANNOTATION(scoped_lockable)
/// Field is only read/written with the named mutex held.
#define GUARDED_BY(x) BITRUSS_THREAD_ANNOTATION(guarded_by(x))
/// Pointee (not the pointer) is guarded by the named mutex.
#define PT_GUARDED_BY(x) BITRUSS_THREAD_ANNOTATION(pt_guarded_by(x))
/// Caller must hold the named mutex(es) to call this function.
#define REQUIRES(...) \
  BITRUSS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the named mutex(es) and does not release them.
#define ACQUIRE(...) \
  BITRUSS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the named mutex(es).
#define RELEASE(...) \
  BITRUSS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the mutex iff it returns the given value.
#define TRY_ACQUIRE(...) \
  BITRUSS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Caller must NOT hold the named mutex(es) (deadlock prevention).
#define EXCLUDES(...) BITRUSS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Return value is a reference to the named capability.
#define RETURN_CAPABILITY(x) BITRUSS_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch: function body is not analyzed.  Every use needs an
/// adjacent justification comment (enforced by CI).
#define NO_THREAD_SAFETY_ANALYSIS \
  BITRUSS_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace bitruss {

class CondVar;

/// std::mutex with the `capability` annotation, so fields can be declared
/// GUARDED_BY(mu_) and methods REQUIRES(mu_).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

/// RAII critical section over a Mutex (the annotated std::lock_guard /
/// std::unique_lock).  CondVar waits through the held MutexLock; the lock
/// is released for the duration of the wait and reacquired before Wait
/// returns, exactly like std::condition_variable with std::unique_lock.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  // Explicit body: the RELEASE annotation cannot sit on a defaulted
  // destructor; the member unique_lock does the actual unlock.
  ~MutexLock() RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable over MutexLock.  Spurious wakeups happen, as
/// with the std primitive: always wait in a `while (!cond)` loop (written
/// out inline — see the header comment — or via Await/AwaitUntil when the
/// predicate touches no guarded state).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  /// Atomically releases `lock`, blocks until notified (or spuriously
  /// woken), and reacquires `lock` before returning.
  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  /// Wait bounded by an absolute deadline; std::cv_status::timeout when
  /// the deadline passed before a notification.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.lock_, deadline);
  }

  /// Blocks until pred() is true; pred runs with the lock held.  NOTE:
  /// the analysis checks a lambda body with an EMPTY capability set, so
  /// predicates over GUARDED_BY fields belong in an explicit
  /// `while (!cond) Wait(lock)` loop at the call site, not here.
  template <typename Predicate>
  void Await(MutexLock& lock, Predicate pred) {
    while (!pred()) Wait(lock);
  }

  /// Await bounded by an absolute deadline; returns pred()'s value at
  /// exit (false = timed out with the predicate still unsatisfied).
  template <typename Predicate, typename Clock, typename Duration>
  bool AwaitUntil(MutexLock& lock,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Predicate pred) {
    while (!pred()) {
      if (WaitUntil(lock, deadline) == std::cv_status::timeout) return pred();
    }
    return true;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace bitruss

#endif  // BITRUSS_UTIL_SYNC_H_
