// Fixed-size thread pool and deterministic parallel-for, the execution
// substrate of the parallel counting / index-construction / peeling layer.
//
// Design constraints (and why this is NOT a work-stealing scheduler):
//
//   * Determinism.  Callers produce per-thread or per-chunk partial results
//     and merge them in thread/chunk-index order.  Chunk boundaries depend
//     only on (range, chunk count), never on timing, so a given input and
//     thread count always yields the same partition.  Dynamic chunk
//     *assignment* (a shared atomic cursor) is allowed — which thread runs
//     a chunk is timing-dependent, but results keyed by chunk index or
//     summed per edge are order-independent, so outputs stay bit-identical
//     run to run.
//   * A 1-thread pool executes everything inline on the calling thread —
//     no workers are spawned, no synchronization happens — so the 1-thread
//     path is byte-identical in behavior to the sequential code it
//     replaced.
//
// Thread-count resolution: explicit ParallelOptions::num_threads wins,
// else the BITRUSS_NUM_THREADS environment variable, else 1 (parallelism
// is opt-in; the default pipeline behaves exactly as before).

#ifndef BITRUSS_UTIL_THREAD_POOL_H_
#define BITRUSS_UTIL_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace bitruss {

/// Thread-count knob shared by every parallel entry point.
struct ParallelOptions {
  /// 0 resolves from BITRUSS_NUM_THREADS (default 1 when unset).
  unsigned num_threads = 0;
};

/// Resolved thread count: options > environment > 1.  Values are clamped
/// to [1, 256]; the environment variable is re-read on every call so tests
/// can toggle it.
inline unsigned ResolveNumThreads(const ParallelOptions& options = {}) {
  constexpr unsigned kMaxThreads = 256;
  unsigned n = options.num_threads;
  if (n == 0) {
    if (const char* env = std::getenv("BITRUSS_NUM_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) n = static_cast<unsigned>(parsed);
    }
  }
  if (n == 0) n = 1;
  return n < kMaxThreads ? n : kMaxThreads;
}

/// Fixed pool of num_threads workers (the calling thread counts as worker
/// 0; num_threads - 1 are spawned).  One parallel region runs at a time;
/// the pool itself is not re-entrant and must outlive its regions.
class ThreadPool {
 public:
  explicit ThreadPool(unsigned num_threads)
      : num_threads_(num_threads == 0 ? 1 : num_threads) {
    workers_.reserve(num_threads_ - 1);
    for (unsigned t = 1; t < num_threads_; ++t) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      MutexLock lock(mu_);
      shutdown_ = true;
    }
    work_cv_.NotifyAll();
    for (std::thread& worker : workers_) worker.join();
  }

  unsigned NumThreads() const { return num_threads_; }

  /// Splits [begin, end) into `num_chunks` near-equal contiguous chunks
  /// (chunk boundaries are a pure function of the range and chunk count)
  /// and runs fn(chunk_begin, chunk_end, chunk_index, thread_index) for
  /// each, pulling chunks from a shared cursor.  thread_index < NumThreads()
  /// identifies the executing worker for per-thread scratch; chunk_index <
  /// num_chunks keys order-sensitive partial results.  Blocks until every
  /// chunk completes.  Empty chunks are skipped.
  template <typename Fn>
  void ParallelForChunks(std::uint64_t begin, std::uint64_t end,
                         unsigned num_chunks, Fn&& fn) {
    if (begin >= end) return;
    const std::uint64_t n = end - begin;
    if (num_chunks == 0) num_chunks = 1;
    if (num_chunks > n) num_chunks = static_cast<unsigned>(n);

    const auto chunk_bounds = [=](unsigned c) {
      // Chunk c covers [begin + c*n/k, begin + (c+1)*n/k): deterministic,
      // sizes differ by at most one.
      const std::uint64_t k = num_chunks;
      return std::pair<std::uint64_t, std::uint64_t>(
          begin + c * n / k, begin + (c + 1) * n / k);
    };

    if (num_threads_ == 1 || num_chunks == 1) {
      for (unsigned c = 0; c < num_chunks; ++c) {
        const auto [b, e] = chunk_bounds(c);
        if (b < e) fn(b, e, c, 0u);
      }
      return;
    }

    std::atomic<unsigned> cursor{0};
    const auto run = [&](unsigned thread_index) {
      for (unsigned c = cursor.fetch_add(1, std::memory_order_relaxed);
           c < num_chunks;
           c = cursor.fetch_add(1, std::memory_order_relaxed)) {
        const auto [b, e] = chunk_bounds(c);
        if (b < e) fn(b, e, c, thread_index);
      }
    };
    Dispatch(run);
  }

  /// One contiguous chunk per thread: fn(chunk_begin, chunk_end,
  /// thread_index).  The static partition is a pure function of the range
  /// and pool size.
  template <typename Fn>
  void ParallelFor(std::uint64_t begin, std::uint64_t end, Fn&& fn) {
    ParallelForChunks(begin, end, num_threads_,
                      [&fn](std::uint64_t b, std::uint64_t e, unsigned chunk,
                            unsigned) { fn(b, e, chunk); });
  }

 private:
  // Runs job(thread_index) on every pool thread (workers get 1..N-1, the
  // caller runs 0) and waits for all of them.
  void Dispatch(const std::function<void(unsigned)>& job) {
    {
      MutexLock lock(mu_);
      job_ = &job;
      ++generation_;
      pending_ = static_cast<unsigned>(workers_.size());
    }
    work_cv_.NotifyAll();
    job(0);
    MutexLock lock(mu_);
    while (pending_ != 0) done_cv_.Wait(lock);
    job_ = nullptr;
  }

  void WorkerLoop() {
    unsigned thread_index = 0;
    {
      MutexLock lock(mu_);
      thread_index = ++spawned_;
    }
    std::uint64_t seen_generation = 0;
    for (;;) {
      const std::function<void(unsigned)>* job = nullptr;
      {
        MutexLock lock(mu_);
        while (!shutdown_ && generation_ == seen_generation) {
          work_cv_.Wait(lock);
        }
        if (shutdown_) return;
        seen_generation = generation_;
        job = job_;
      }
      (*job)(thread_index);
      {
        MutexLock lock(mu_);
        if (--pending_ == 0) done_cv_.NotifyAll();
      }
    }
  }

  const unsigned num_threads_;
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar work_cv_;
  CondVar done_cv_;
  const std::function<void(unsigned)>* job_ GUARDED_BY(mu_) = nullptr;
  std::uint64_t generation_ GUARDED_BY(mu_) = 0;
  unsigned pending_ GUARDED_BY(mu_) = 0;
  unsigned spawned_ GUARDED_BY(mu_) = 0;
  bool shutdown_ GUARDED_BY(mu_) = false;
};

}  // namespace bitruss

#endif  // BITRUSS_UTIL_THREAD_POOL_H_
