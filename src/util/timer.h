// Wall-clock timing helpers shared by the library, tests and benches.

#ifndef BITRUSS_UTIL_TIMER_H_
#define BITRUSS_UTIL_TIMER_H_

#include <chrono>

namespace bitruss {

/// Monotonic stopwatch started at construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A point in time after which long-running work should abort.  The
/// default-constructed deadline never expires; `Deadline::After(s)` expires
/// `s` seconds from now.  Decomposition code polls `Expired()` at coarse
/// granularity, so expiry is detected within a bounded amount of extra work.
class Deadline {
 public:
  Deadline() = default;

  static Deadline After(double seconds) {
    Deadline d;
    d.finite_ = true;
    d.when_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(seconds));
    return d;
  }

  bool IsFinite() const { return finite_; }

  bool Expired() const { return finite_ && Clock::now() >= when_; }

 private:
  using Clock = std::chrono::steady_clock;
  bool finite_ = false;
  Clock::time_point when_{};
};

}  // namespace bitruss

#endif  // BITRUSS_UTIL_TIMER_H_
