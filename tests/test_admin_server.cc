// Tests for the embedded HTTP admin endpoint (obs/admin_server.h), driven
// through a real loopback socket like an operator's curl would: the
// /metrics body must be byte-identical to ExportPrometheus of the same
// registry, /metrics.json must be well-formed JSON, routing must answer
// 404/405/400 without wedging the listener, and concurrent scrapes must
// all be served.  The JSON checks use a tiny recursive-descent validator
// (no parser dependency) — well-formedness is the contract, not schema.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/admin_server.h"

namespace bitruss::obs {
namespace {

struct HttpReply {
  bool ok = false;  // connected, sent, and got a status line back
  int status = 0;
  std::string headers;  // raw header block (status line included)
  std::string body;
};

// Minimal HTTP/1.0 client: one request, read to EOF (the server closes).
HttpReply Fetch(int port, const std::string& request_line) {
  HttpReply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return reply;
  }
  const std::string request = request_line + "\r\nHost: 127.0.0.1\r\n\r\n";
  if (::send(fd, request.data(), request.size(), 0) !=
      static_cast<ssize_t>(request.size())) {
    ::close(fd);
    return reply;
  }
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return reply;
  reply.headers = response.substr(0, header_end);
  reply.body = response.substr(header_end + 4);
  if (std::sscanf(response.c_str(), "HTTP/1.0 %d", &reply.status) != 1) {
    return reply;
  }
  reply.ok = true;
  return reply;
}

HttpReply Get(int port, const std::string& path) {
  return Fetch(port, "GET " + path + " HTTP/1.0");
}

// ---------------------------------------------------------------------------
// Tiny JSON well-formedness validator.
// ---------------------------------------------------------------------------

struct JsonCursor {
  const std::string& text;
  std::size_t pos = 0;

  void SkipSpace() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(
                                    text[pos]))) {
      ++pos;
    }
  }
  bool Eat(char c) {
    SkipSpace();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
};

bool ValidValue(JsonCursor* cursor);

bool ValidString(JsonCursor* cursor) {
  if (!cursor->Eat('"')) return false;
  while (cursor->pos < cursor->text.size()) {
    const char c = cursor->text[cursor->pos++];
    if (c == '"') return true;
    if (c == '\\') {
      if (cursor->pos >= cursor->text.size()) return false;
      ++cursor->pos;  // escaped char (u-escapes validate loosely)
    }
  }
  return false;
}

bool ValidNumber(JsonCursor* cursor) {
  const std::size_t start = cursor->pos;
  const std::string& t = cursor->text;
  auto at = [&](char c) {
    return cursor->pos < t.size() && t[cursor->pos] == c;
  };
  if (at('-')) ++cursor->pos;
  while (cursor->pos < t.size() &&
         (std::isdigit(static_cast<unsigned char>(t[cursor->pos])) ||
          t[cursor->pos] == '.' || t[cursor->pos] == 'e' ||
          t[cursor->pos] == 'E' || t[cursor->pos] == '+' ||
          t[cursor->pos] == '-')) {
    ++cursor->pos;
  }
  return cursor->pos > start;
}

bool ValidValue(JsonCursor* cursor) {
  cursor->SkipSpace();
  if (cursor->pos >= cursor->text.size()) return false;
  const char c = cursor->text[cursor->pos];
  if (c == '{') {
    ++cursor->pos;
    if (cursor->Eat('}')) return true;
    do {
      if (!ValidString(cursor)) return false;
      if (!cursor->Eat(':')) return false;
      if (!ValidValue(cursor)) return false;
    } while (cursor->Eat(','));
    return cursor->Eat('}');
  }
  if (c == '[') {
    ++cursor->pos;
    if (cursor->Eat(']')) return true;
    do {
      if (!ValidValue(cursor)) return false;
    } while (cursor->Eat(','));
    return cursor->Eat(']');
  }
  if (c == '"') return ValidString(cursor);
  for (const char* literal : {"true", "false", "null"}) {
    const std::size_t len = std::strlen(literal);
    if (cursor->text.compare(cursor->pos, len, literal) == 0) {
      cursor->pos += len;
      return true;
    }
  }
  return ValidNumber(cursor);
}

bool IsValidJson(const std::string& text) {
  JsonCursor cursor{text};
  if (!ValidValue(&cursor)) return false;
  cursor.SkipSpace();
  return cursor.pos == text.size();
}

TEST(AdminServerJsonValidator, AcceptsAndRejectsTheRightThings) {
  EXPECT_TRUE(IsValidJson("{}"));
  EXPECT_TRUE(IsValidJson("{\"a\": [1, -2.5e3, \"x\\\"y\"], \"b\": null}"));
  EXPECT_FALSE(IsValidJson("{\"a\": }"));
  EXPECT_FALSE(IsValidJson("{\"a\": 1} trailing"));
  EXPECT_FALSE(IsValidJson("[1, 2"));
}

// ---------------------------------------------------------------------------
// Server behavior.
// ---------------------------------------------------------------------------

// An isolated registry (no process gauges, no concurrent writers) makes
// the exposition deterministic: the endpoint body must be byte-identical
// to calling the exporter directly.
TEST(AdminServer, MetricsBodyMatchesExportPrometheusExactly) {
  MetricsRegistry registry;
  registry.GetCounter("bitruss_test_requests_total")->Inc(7);
  registry.GetGauge("bitruss_test_depth")->Set(-3);
  Histogram* h = registry.GetHistogram("bitruss_test_latency", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  h->Observe(10.0);

  AdminServer server;
  RegisterStandardEndpoints(&server, &registry);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.Port(), 0);

  const HttpReply reply = Get(server.Port(), "/metrics");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.body, ExportPrometheus(registry.Snapshot()));
  EXPECT_NE(reply.headers.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);
  const std::string length_header =
      "Content-Length: " + std::to_string(reply.body.size());
  EXPECT_NE(reply.headers.find(length_header), std::string::npos);
  server.Stop();
}

TEST(AdminServer, JsonEndpointsAreWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("bitruss_test_total")->Inc();
  registry.GetHistogram("bitruss_test_seconds", {1.0})->Observe(0.5);
  TraceRecorder trace;

  AdminServer server;
  RegisterStandardEndpoints(&server, &registry, &trace);
  ASSERT_TRUE(server.Start().ok());

  const HttpReply metrics = Get(server.Port(), "/metrics.json");
  ASSERT_TRUE(metrics.ok);
  EXPECT_EQ(metrics.status, 200);
  EXPECT_TRUE(IsValidJson(metrics.body)) << metrics.body;
  EXPECT_NE(metrics.headers.find("Content-Type: application/json"),
            std::string::npos);

  const HttpReply tracez = Get(server.Port(), "/tracez");
  ASSERT_TRUE(tracez.ok);
  EXPECT_EQ(tracez.status, 200);
  EXPECT_TRUE(IsValidJson(tracez.body)) << tracez.body;
  server.Stop();
}

TEST(AdminServer, RoutingAnswers404And405And400) {
  MetricsRegistry registry;
  AdminServer server;
  RegisterStandardEndpoints(&server, &registry);
  ASSERT_TRUE(server.Start().ok());

  const HttpReply missing = Get(server.Port(), "/nope");
  ASSERT_TRUE(missing.ok);
  EXPECT_EQ(missing.status, 404);

  const HttpReply post = Fetch(server.Port(), "POST /metrics HTTP/1.0");
  ASSERT_TRUE(post.ok);
  EXPECT_EQ(post.status, 405);

  const HttpReply malformed = Fetch(server.Port(), "GARBAGE");
  ASSERT_TRUE(malformed.ok);
  EXPECT_EQ(malformed.status, 400);

  // A bad request must not take the listener down.
  const HttpReply after = Get(server.Port(), "/metrics");
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.status, 200);
  EXPECT_GE(server.RequestsServed(), 4u);
  server.Stop();
}

TEST(AdminServer, QueryStringsAreStrippedBeforeRouting) {
  MetricsRegistry registry;
  AdminServer server;
  RegisterStandardEndpoints(&server, &registry);
  ASSERT_TRUE(server.Start().ok());
  const HttpReply reply = Get(server.Port(), "/metrics?format=prometheus");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 200);
  server.Stop();
}

TEST(AdminServer, CustomHandlerAndConcurrentScrapes) {
  AdminServer server;
  server.Handle("/healthz", [] {
    return AdminResponse{200, "application/json", "{\"status\": \"ok\"}\n"};
  });
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 8;
  std::vector<std::thread> clients;
  std::vector<int> statuses(kThreads, 0);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      const HttpReply reply = Get(server.Port(), "/healthz");
      statuses[t] = reply.ok ? reply.status : -1;
    });
  }
  for (std::thread& c : clients) c.join();
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(statuses[t], 200) << t;
  EXPECT_GE(server.RequestsServed(), static_cast<std::uint64_t>(kThreads));
  server.Stop();
}

TEST(AdminServer, LifecycleIsStrictAboutStartAndIdempotentAboutStop) {
  AdminServer server;
  ASSERT_TRUE(server.Start().ok());
  const Status again = server.Start();
  EXPECT_EQ(again.code(), StatusCode::kFailedPrecondition);
  server.Stop();
  server.Stop();  // idempotent
  EXPECT_EQ(server.Port(), 0);

  // Start() after Stop() binds a fresh (possibly different) port.
  ASSERT_TRUE(server.Start().ok());
  EXPECT_GT(server.Port(), 0);
  server.Stop();
}

// Raw exchange that does NOT complete the request: connect, send exactly
// `payload`, then read the server's verdict to EOF.  Fetch() always sends a
// terminated request, so the abuse paths (431/408) need this lower-level
// client.
HttpReply SendRawAndRead(int port, const std::string& payload) {
  HttpReply reply;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    ::close(fd);
    return reply;
  }
  if (!payload.empty() &&
      ::send(fd, payload.data(), payload.size(), 0) !=
          static_cast<ssize_t>(payload.size())) {
    ::close(fd);
    return reply;
  }
  std::string response;
  char buffer[4096];
  ssize_t n;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const std::size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) return reply;
  reply.headers = response.substr(0, header_end);
  reply.body = response.substr(header_end + 4);
  if (std::sscanf(response.c_str(), "HTTP/1.0 %d", &reply.status) != 1) {
    return reply;
  }
  reply.ok = true;
  return reply;
}

// A header block that blows past max_request_bytes is answered 431 without
// reading further, and the listener survives to serve the next request.
TEST(AdminServer, OversizedHeadersAnswer431) {
  AdminServerOptions options;
  options.max_request_bytes = 256;
  AdminServer server(options);
  server.Handle("/ping", [] { return AdminResponse{200, "text/plain", "pong"}; });
  ASSERT_TRUE(server.Start().ok());

  const std::string huge = "GET /ping HTTP/1.0\r\nX-Filler: " +
                           std::string(1024, 'a');  // never terminated
  const HttpReply reply = SendRawAndRead(server.Port(), huge);
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 431);
  EXPECT_NE(reply.body.find("256"), std::string::npos) << reply.body;

  const HttpReply after = Get(server.Port(), "/ping");
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.status, 200);
  server.Stop();
}

// A client that connects and stalls mid-request is answered 408 when the
// whole-request deadline expires — the single listener thread is not
// wedged, and normal requests are served afterwards.
TEST(AdminServer, StalledRequestAnswers408) {
  AdminServerOptions options;
  options.request_deadline_seconds = 0.2;
  AdminServer server(options);
  server.Handle("/ping", [] { return AdminResponse{200, "text/plain", "pong"}; });
  ASSERT_TRUE(server.Start().ok());

  // Send only a fragment, then just wait for the server's verdict.
  const HttpReply reply = SendRawAndRead(server.Port(), "GET /ping HT");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 408);

  const HttpReply after = Get(server.Port(), "/ping");
  ASSERT_TRUE(after.ok);
  EXPECT_EQ(after.status, 200);
  EXPECT_EQ(after.body, "pong");
  server.Stop();
}

// Registrations after Start() are safe (the listener copies the handler
// under the lock per request) and take effect immediately.
TEST(AdminServer, LateHandlerRegistrationServesImmediately) {
  AdminServer server;
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(Get(server.Port(), "/late").status, 404);
  server.Handle("/late", [] { return AdminResponse{200, "text/plain", "x"}; });
  const HttpReply reply = Get(server.Port(), "/late");
  ASSERT_TRUE(reply.ok);
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.body, "x");
  server.Stop();
}

}  // namespace
}  // namespace bitruss::obs
