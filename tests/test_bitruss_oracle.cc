// Oracle test: a brute-force peeler that re-counts butterflies from
// scratch after every single removal (definition-level, shares no code
// with the library's counting or index machinery) must agree with all five
// Algorithm variants on random small graphs across seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "core/decompose.h"
#include "core/verify.h"
#include "gen/chung_lu.h"
#include "gen/random_bipartite.h"
#include "graph/bipartite_graph.h"

namespace bitruss {
namespace {

// Supports of every alive edge, recounted from scratch by set intersection.
std::vector<SupportT> BruteForceSupports(
    const BipartiteGraph& g, const std::vector<bool>& alive) {
  const VertexId n = g.NumVertices();
  std::vector<std::set<VertexId>> neighbors(n);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (!alive[e]) continue;
    neighbors[g.EdgeUpper(e)].insert(g.EdgeLower(e));
    neighbors[g.EdgeLower(e)].insert(g.EdgeUpper(e));
  }
  std::vector<SupportT> sup(g.NumEdges(), 0);
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (!alive[e]) continue;
    const VertexId u = g.EdgeUpper(e);
    const VertexId v = g.EdgeLower(e);
    SupportT s = 0;
    for (const VertexId w : neighbors[v]) {
      if (w == u) continue;
      // Common neighbors of u and w other than v complete a butterfly.
      for (const VertexId y : neighbors[u]) {
        if (y != v && neighbors[w].count(y)) ++s;
      }
    }
    sup[e] = s;
  }
  return sup;
}

std::uint64_t BruteForceTotalButterflies(const BipartiteGraph& g) {
  std::vector<bool> alive(g.NumEdges(), true);
  std::uint64_t sum = 0;
  for (const SupportT s : BruteForceSupports(g, alive)) sum += s;
  return sum / 4;
}

// Definition-level peeling: one edge per step, full recount per step.
std::vector<SupportT> OracleBitruss(const BipartiteGraph& g) {
  const EdgeId m = g.NumEdges();
  std::vector<bool> alive(m, true);
  std::vector<SupportT> phi(m, 0);
  SupportT level = 0;
  for (EdgeId step = 0; step < m; ++step) {
    const std::vector<SupportT> sup = BruteForceSupports(g, alive);
    EdgeId argmin = kInvalidEdge;
    for (EdgeId e = 0; e < m; ++e) {
      if (alive[e] && (argmin == kInvalidEdge || sup[e] < sup[argmin])) {
        argmin = e;
      }
    }
    level = std::max(level, sup[argmin]);
    phi[argmin] = level;
    alive[argmin] = false;
  }
  return phi;
}

struct Case {
  std::string name;
  BipartiteGraph graph;
};

std::vector<Case> OracleCases() {
  std::vector<Case> cases;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const VertexId nu = 4 + static_cast<VertexId>(seed % 7);
    const VertexId nl = 3 + static_cast<VertexId>((3 * seed) % 8);
    const EdgeId m = static_cast<EdgeId>(20 + 15 * (seed % 9));
    cases.push_back({"uniform_seed" + std::to_string(seed),
                     GenerateUniformBipartite(nu, nl, m, seed)});
  }
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    ChungLuParams params;
    params.num_upper = 6 + static_cast<VertexId>(seed % 5);
    params.num_lower = 5 + static_cast<VertexId>((2 * seed) % 6);
    params.num_edges = static_cast<EdgeId>(40 + 16 * (seed % 10));
    params.upper_exponent = 0.6 + 0.03 * static_cast<double>(seed % 5);
    params.lower_exponent = 0.8;
    params.seed = 1000 + seed;
    cases.push_back(
        {"chunglu_seed" + std::to_string(seed), GenerateChungLu(params)});
  }
  return cases;
}

TEST(BitrussOracle, AllAlgorithmsMatchBruteForceAcrossSeeds) {
  const std::vector<Case> cases = OracleCases();
  ASSERT_GE(cases.size(), 20u);

  const struct {
    Algorithm algorithm;
    double tau;
    const char* label;
  } variants[] = {
      {Algorithm::kBS, 0.02, "BS"},          {Algorithm::kBU, 0.02, "BU"},
      {Algorithm::kBUPlus, 0.02, "BU+"},     {Algorithm::kBUPlusPlus, 0.02, "BU++"},
      {Algorithm::kPC, 0.02, "PC tau=0.02"}, {Algorithm::kPC, 0.3, "PC tau=0.3"},
      {Algorithm::kPC, 1.0, "PC tau=1"},
  };

  for (const Case& test_case : cases) {
    ASSERT_LE(test_case.graph.NumEdges(), 200u) << test_case.name;
    const std::vector<SupportT> oracle = OracleBitruss(test_case.graph);
    const std::uint64_t butterflies =
        BruteForceTotalButterflies(test_case.graph);
    for (const auto& variant : variants) {
      DecomposeOptions options;
      options.algorithm = variant.algorithm;
      options.tau = variant.tau;
      const BitrussResult result = Decompose(test_case.graph, options);
      EXPECT_FALSE(result.timed_out);
      EXPECT_EQ(result.total_butterflies, butterflies)
          << test_case.name << " " << variant.label;
      EXPECT_EQ(result.phi, oracle) << test_case.name << " " << variant.label;
    }
  }
}

TEST(BitrussOracle, InitialSupportsMatchBruteForce) {
  for (std::uint64_t seed = 50; seed < 56; ++seed) {
    const BipartiteGraph g = GenerateUniformBipartite(8, 7, 35, seed);
    const std::vector<bool> alive(g.NumEdges(), true);
    DecomposeOptions options;
    const BitrussResult result = Decompose(g, options);
    EXPECT_EQ(result.original_support, BruteForceSupports(g, alive))
        << "seed " << seed;
  }
}

TEST(BitrussOracle, VerifyBitrussNumbersAgreesWithDecomposition) {
  for (std::uint64_t seed = 70; seed < 74; ++seed) {
    const BipartiteGraph g = GenerateUniformBipartite(9, 8, 60, seed);
    const BitrussResult result = Decompose(g);
    std::string error;
    EXPECT_TRUE(VerifyBitrussNumbers(g, result.phi, &error))
        << "seed " << seed << ": " << error;
    if (g.NumEdges() > 0 && result.MaxPhi() > 0) {
      std::vector<SupportT> corrupted = result.phi;
      corrupted[0] = corrupted[0] > 0 ? corrupted[0] - 1 : 1;
      EXPECT_FALSE(VerifyBitrussNumbers(g, corrupted)) << "seed " << seed;
    }
  }
}

TEST(BitrussOracle, CountersBehaveAsThePaperPredicts) {
  // BU++ batching can only reduce update operations vs BU, and PC's
  // compression can only reduce them further on hub-heavy graphs; all on
  // identical phi (checked above).  This is Figure 10's qualitative claim.
  ChungLuParams params;
  params.num_upper = 300;
  params.num_lower = 20;
  params.num_edges = 2500;
  params.upper_exponent = 0.5;
  params.lower_exponent = 0.9;
  params.seed = 2026;
  const BipartiteGraph g = GenerateChungLu(params);

  DecomposeOptions options;
  options.algorithm = Algorithm::kBU;
  options.track_per_edge_updates = true;
  const BitrussResult bu = Decompose(g, options);
  options.algorithm = Algorithm::kBUPlusPlus;
  const BitrussResult bupp = Decompose(g, options);
  options.algorithm = Algorithm::kPC;
  options.tau = 0.05;
  const BitrussResult pc = Decompose(g, options);

  EXPECT_EQ(bu.phi, bupp.phi);
  EXPECT_EQ(bu.phi, pc.phi);
  EXPECT_GT(bu.counters.support_updates, 0u);
  EXPECT_LE(bupp.counters.support_updates, bu.counters.support_updates);
  EXPECT_LT(pc.counters.support_updates, bu.counters.support_updates);
  EXPECT_FALSE(pc.pc_trace.empty());
  EXPECT_GT(pc.counters.peak_index_bytes, 0u);
  EXPECT_LT(pc.counters.peak_index_bytes, bu.counters.peak_index_bytes);

  // Per-edge update tracking is consistent with the aggregate counter.
  std::uint64_t per_edge_sum = 0;
  for (const std::uint64_t u : bu.counters.per_edge_updates) per_edge_sum += u;
  EXPECT_EQ(per_edge_sum, bu.counters.support_updates);
}

TEST(BitrussOracle, DeadlineProducesPartialTimedOutResult) {
  ChungLuParams params;
  params.num_upper = 400;
  params.num_lower = 80;
  params.num_edges = 6000;
  params.seed = 31;
  const BipartiteGraph g = GenerateChungLu(params);
  DecomposeOptions options;
  options.algorithm = Algorithm::kBS;
  options.deadline = Deadline::After(0.0);
  const BitrussResult result = Decompose(g, options);
  EXPECT_TRUE(result.timed_out);
  EXPECT_EQ(result.phi.size(), g.NumEdges());
}

}  // namespace
}  // namespace bitruss
