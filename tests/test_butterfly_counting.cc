// Golden tests for butterfly counting on hand-computed graphs, plus the
// BE-Index support identity (Lemma 4) and VerifyBitrussNumbers itself.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "butterfly/butterfly_counting.h"
#include "core/be_index_builder.h"
#include "core/verify.h"
#include "gen/chung_lu.h"
#include "gen/random_bipartite.h"
#include "graph/bipartite_graph.h"
#include "graph/vertex_priority.h"

namespace bitruss {
namespace {

BipartiteGraph CompleteBipartite(VertexId a, VertexId b) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < a; ++u) {
    for (VertexId l = 0; l < b; ++l) edges.emplace_back(u, l);
  }
  return BipartiteGraph(a, b, std::move(edges));
}

TEST(ButterflyCounting, CompleteBipartiteK33) {
  // K(3,3): C(3,2)^2 = 9 butterflies; each edge (u,v) is in
  // (d(u)-1)*(d(v)-1) = 4 of them.
  const BipartiteGraph g = CompleteBipartite(3, 3);
  EXPECT_EQ(CountTotalButterflies(g), 9u);
  const std::vector<SupportT> sup = CountEdgeSupports(g);
  ASSERT_EQ(sup.size(), 9u);
  for (const SupportT s : sup) EXPECT_EQ(s, 4u);
}

TEST(ButterflyCounting, CompleteBipartiteK22) {
  const BipartiteGraph g = CompleteBipartite(2, 2);
  EXPECT_EQ(CountTotalButterflies(g), 1u);
  for (const SupportT s : CountEdgeSupports(g)) EXPECT_EQ(s, 1u);
}

TEST(ButterflyCounting, PathHasNoButterflies) {
  // u0 - l0 - u1 - l1: three edges, no (2,2)-biclique.
  const BipartiteGraph g(2, 2, {{0, 0}, {1, 0}, {1, 1}});
  EXPECT_EQ(CountTotalButterflies(g), 0u);
  for (const SupportT s : CountEdgeSupports(g)) EXPECT_EQ(s, 0u);
}

TEST(ButterflyCounting, StarHasNoButterflies) {
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId l = 0; l < 6; ++l) edges.emplace_back(0, l);
  const BipartiteGraph g(1, 6, std::move(edges));
  EXPECT_EQ(CountTotalButterflies(g), 0u);
  for (const SupportT s : CountEdgeSupports(g)) EXPECT_EQ(s, 0u);
}

TEST(ButterflyCounting, EmptyGraph) {
  const BipartiteGraph g(0, 0, {});
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(CountTotalButterflies(g), 0u);
  EXPECT_TRUE(CountEdgeSupports(g).empty());
}

TEST(ButterflyCounting, TwoButterfliesSharingAnEdge) {
  // K(3,2) has C(3,2) = 3 butterflies and every edge is in exactly 2.
  const BipartiteGraph g = CompleteBipartite(3, 2);
  EXPECT_EQ(CountTotalButterflies(g), 3u);
  for (const SupportT s : CountEdgeSupports(g)) EXPECT_EQ(s, 2u);
}

TEST(ButterflyCounting, PriorityRuleDoesNotChangeCounts) {
  const BipartiteGraph g = GenerateUniformBipartite(30, 25, 180, 7);
  const VertexPriority by_degree =
      VertexPriority::Compute(g, PriorityRule::kDegreeThenId);
  const VertexPriority by_id = VertexPriority::Compute(g, PriorityRule::kIdOnly);
  const PriorityAdjacency adj_degree(g, by_degree);
  const PriorityAdjacency adj_id(g, by_id);
  EXPECT_EQ(CountEdgeSupports(g, adj_degree), CountEdgeSupports(g, adj_id));
  EXPECT_EQ(CountTotalButterflies(g, adj_degree),
            CountTotalButterflies(g, adj_id));
}

TEST(ButterflyCounting, SupportSumIsFourTimesTotal) {
  ChungLuParams params;
  params.num_upper = 60;
  params.num_lower = 40;
  params.num_edges = 500;
  params.seed = 99;
  const BipartiteGraph g = GenerateChungLu(params);
  std::uint64_t sum = 0;
  for (const SupportT s : CountEdgeSupports(g)) sum += s;
  EXPECT_EQ(sum, 4 * CountTotalButterflies(g));
}

TEST(BEIndex, SupportIdentityMatchesDirectCounting) {
  // Lemma 4: sup(e) == sum over blooms containing e of (k(B) - 1).
  ChungLuParams params;
  params.num_upper = 50;
  params.num_lower = 35;
  params.num_edges = 400;
  params.seed = 1234;
  const BipartiteGraph g = GenerateChungLu(params);
  const VertexPriority priority = VertexPriority::Compute(g);
  const PriorityAdjacency adj(g, priority);
  const BEIndex index = BEIndexBuilder::Build(g, adj);
  EXPECT_EQ(index.ComputeSupports(), CountEdgeSupports(g, adj));
  EXPECT_GT(index.MemoryBytes(), 0u);
}

TEST(BEIndex, EdgeLiveCountSumsTwoPerWedge) {
  const BipartiteGraph g = CompleteBipartite(3, 3);
  const VertexPriority priority = VertexPriority::Compute(g);
  const PriorityAdjacency adj(g, priority);
  const BEIndex index = BEIndexBuilder::Build(g, adj);
  std::uint64_t incidences = 0;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    incidences += index.EdgeLiveCount(e);
  }
  EXPECT_EQ(incidences, 2 * index.wedge_e1.size());
}

TEST(Verify, AcceptsCorrectAndRejectsWrongNumbers) {
  const BipartiteGraph g = CompleteBipartite(3, 3);
  // K(3,3) is its own 4-bitruss and there is no 5-bitruss: phi(e) = 4.
  std::vector<SupportT> phi(g.NumEdges(), 4);
  std::string error;
  EXPECT_TRUE(VerifyBitrussNumbers(g, phi, &error)) << error;

  std::vector<SupportT> too_high(g.NumEdges(), 5);
  EXPECT_FALSE(VerifyBitrussNumbers(g, too_high, &error));
  EXPECT_FALSE(error.empty());

  std::vector<SupportT> uneven = phi;
  uneven[0] = 3;
  EXPECT_FALSE(VerifyBitrussNumbers(g, uneven));

  EXPECT_FALSE(VerifyBitrussNumbers(g, std::vector<SupportT>(3, 4)));
}

TEST(Verify, PathIsZeroBitruss) {
  const BipartiteGraph g(2, 2, {{0, 0}, {1, 0}, {1, 1}});
  EXPECT_TRUE(VerifyBitrussNumbers(g, std::vector<SupportT>(3, 0)));
  EXPECT_FALSE(VerifyBitrussNumbers(g, std::vector<SupportT>(3, 1)));
}

}  // namespace
}  // namespace bitruss
