// Cohesion subsystem tests: brute-force (alpha,beta)-core and tip-number
// oracles (definition-level, sharing no code with the library's peelers)
// against the bucket/min-first implementations, phi equality of the plain
// and core-pruned decompositions, and the PruneToABCore status contracts.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "cohesion/ab_core.h"
#include "cohesion/tip_decomposition.h"
#include "core/decompose.h"
#include "gen/chung_lu.h"
#include "gen/random_bipartite.h"
#include "graph/bipartite_graph.h"

namespace bitruss {
namespace {

// Iterated delete-below-threshold to fixpoint, recomputing degrees from
// scratch each sweep.
std::vector<std::uint8_t> OracleABCore(const BipartiteGraph& g, VertexId alpha,
                                       VertexId beta) {
  const VertexId n = g.NumVertices();
  std::vector<std::uint8_t> alive(n, 1);
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<VertexId> deg(n, 0);
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      if (alive[g.EdgeUpper(e)] && alive[g.EdgeLower(e)]) {
        ++deg[g.EdgeUpper(e)];
        ++deg[g.EdgeLower(e)];
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      if (alive[v] && deg[v] < (g.IsUpper(v) ? alpha : beta)) {
        alive[v] = 0;
        changed = true;
      }
    }
  }
  return alive;
}

// Butterflies containing side vertex u among the alive side vertices: each
// surviving co-vertex w with c common neighbors contributes C(c, 2).
std::uint64_t OracleVertexButterflies(const BipartiteGraph& g, VertexId u,
                                      const std::vector<std::uint8_t>& alive,
                                      VertexId num_upper, bool peel_upper) {
  std::set<VertexId> mine;
  for (const auto& entry : g.Neighbors(u)) mine.insert(entry.neighbor);
  std::set<VertexId> seen;
  std::uint64_t total = 0;
  for (const auto& mid : g.Neighbors(u)) {
    for (const auto& far : g.Neighbors(mid.neighbor)) {
      const VertexId w = far.neighbor;
      if (w == u || !alive[peel_upper ? w : w - num_upper]) continue;
      if (!seen.insert(w).second) continue;
      std::uint64_t common = 0;
      for (const auto& other : g.Neighbors(w)) common += mine.count(other.neighbor);
      total += common * (common - 1) / 2;
    }
  }
  return total;
}

// Definition-level tip peel: full butterfly recount per round, remove the
// minimum (lowest id on ties; theta is canonical, so ties do not matter).
std::vector<std::uint64_t> OracleTip(const BipartiteGraph& g, bool peel_upper) {
  const VertexId num_upper = g.NumUpper();
  const VertexId num_side = peel_upper ? num_upper : g.NumLower();
  std::vector<std::uint8_t> alive(num_side, 1);
  std::vector<std::uint64_t> theta(num_side, 0);
  std::uint64_t level = 0;
  for (VertexId round = 0; round < num_side; ++round) {
    VertexId argmin = kInvalidVertex;
    std::uint64_t best = 0;
    for (VertexId i = 0; i < num_side; ++i) {
      if (!alive[i]) continue;
      const std::uint64_t c = OracleVertexButterflies(
          g, peel_upper ? i : num_upper + i, alive, num_upper, peel_upper);
      if (argmin == kInvalidVertex || c < best) {
        argmin = i;
        best = c;
      }
    }
    level = std::max(level, best);
    theta[argmin] = level;
    alive[argmin] = 0;
  }
  return theta;
}

struct Case {
  std::string name;
  BipartiteGraph graph;
};

std::vector<Case> CohesionCases() {
  std::vector<Case> cases;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const VertexId nu = 4 + static_cast<VertexId>(seed % 6);
    const VertexId nl = 3 + static_cast<VertexId>((3 * seed) % 7);
    const EdgeId m = static_cast<EdgeId>(18 + 12 * (seed % 8));
    cases.push_back({"uniform_seed" + std::to_string(seed),
                     GenerateUniformBipartite(nu, nl, m, seed)});
  }
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    ChungLuParams params;
    params.num_upper = 6 + static_cast<VertexId>(seed % 5);
    params.num_lower = 5 + static_cast<VertexId>((2 * seed) % 6);
    params.num_edges = static_cast<EdgeId>(30 + 14 * (seed % 7));
    params.upper_exponent = 0.6 + 0.04 * static_cast<double>(seed % 4);
    params.lower_exponent = 0.8;
    params.seed = 900 + seed;
    cases.push_back(
        {"chunglu_seed" + std::to_string(seed), GenerateChungLu(params)});
  }
  return cases;
}

TEST(ABCore, MembershipMatchesFixpointOracleAcrossThresholds) {
  for (const Case& test_case : CohesionCases()) {
    for (VertexId alpha = 1; alpha <= 5; ++alpha) {
      for (VertexId beta = 1; beta <= 5; ++beta) {
        EXPECT_EQ(ComputeABCore(test_case.graph, alpha, beta),
                  OracleABCore(test_case.graph, alpha, beta))
            << test_case.name << " alpha=" << alpha << " beta=" << beta;
      }
    }
  }
}

TEST(ABCore, ZeroThresholdsAreVacuous) {
  const BipartiteGraph g = GenerateUniformBipartite(6, 5, 12, 7);
  const std::vector<std::uint8_t> all(g.NumVertices(), 1);
  EXPECT_EQ(ComputeABCore(g, 0, 0), all);
}

TEST(ABCore, DecompositionSkylineAgreesWithDirectMembership) {
  for (const Case& test_case : CohesionCases()) {
    const BipartiteGraph& g = test_case.graph;
    const ABCoreResult result = ABCoreDecomposition(g);
    ASSERT_EQ(result.skyline.size(), g.NumVertices()) << test_case.name;
    // One past the maxima on both axes to cover the empty-core boundary.
    for (VertexId alpha = 1; alpha <= result.max_alpha + 1; ++alpha) {
      for (VertexId beta = 1; beta <= result.max_beta + 1; ++beta) {
        const std::vector<std::uint8_t> oracle = OracleABCore(g, alpha, beta);
        for (VertexId v = 0; v < g.NumVertices(); ++v) {
          EXPECT_EQ(InABCore(result, v, alpha, beta), oracle[v] != 0)
              << test_case.name << " v=" << v << " alpha=" << alpha
              << " beta=" << beta;
        }
      }
    }
    // Skyline shape contract: alpha strictly increasing, beta strictly
    // decreasing.
    for (const auto& skyline : result.skyline) {
      for (std::size_t i = 1; i < skyline.size(); ++i) {
        EXPECT_GT(skyline[i].alpha, skyline[i - 1].alpha) << test_case.name;
        EXPECT_LT(skyline[i].beta, skyline[i - 1].beta) << test_case.name;
      }
    }
  }
}

TEST(ABCore, CompleteBipartiteGraphIsItsOwnDeepCore) {
  // K(2,3): every vertex is in the (alpha, beta)-core iff alpha <= 2 on the
  // constraint side sense — the whole graph survives up to (3, 2).
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 2; ++u) {
    for (VertexId l = 0; l < 3; ++l) edges.emplace_back(u, l);
  }
  const BipartiteGraph g(2, 3, edges);
  const ABCoreResult result = ABCoreDecomposition(g);
  EXPECT_EQ(result.max_alpha, 3u);
  EXPECT_EQ(result.max_beta, 2u);
  for (VertexId v = 0; v < g.NumVertices(); ++v) {
    ASSERT_EQ(result.skyline[v].size(), 1u);
    EXPECT_EQ(result.skyline[v][0].alpha, 3u);
    EXPECT_EQ(result.skyline[v][0].beta, 2u);
  }
}

TEST(TipDecomposition, MatchesRecountOracleOnBothSides) {
  for (const Case& test_case : CohesionCases()) {
    for (const bool peel_upper : {true, false}) {
      const TipResult result = TipDecomposition(test_case.graph, peel_upper);
      const std::vector<std::uint64_t> oracle =
          OracleTip(test_case.graph, peel_upper);
      EXPECT_EQ(result.theta, oracle)
          << test_case.name << " peel_upper=" << peel_upper;
      const std::uint64_t expected_max =
          oracle.empty() ? 0 : *std::max_element(oracle.begin(), oracle.end());
      EXPECT_EQ(result.max_tip, expected_max) << test_case.name;
    }
  }
}

TEST(TipDecomposition, CompleteBipartiteGraphTipNumbers) {
  // K(2,3): 3 butterflies total; each upper is in all 3, each lower in 2.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 2; ++u) {
    for (VertexId l = 0; l < 3; ++l) edges.emplace_back(u, l);
  }
  const BipartiteGraph g(2, 3, edges);
  const TipResult upper = TipDecomposition(g, /*peel_upper=*/true);
  EXPECT_EQ(upper.theta, (std::vector<std::uint64_t>{3, 3}));
  EXPECT_EQ(upper.max_tip, 3u);
  const TipResult lower = TipDecomposition(g, /*peel_upper=*/false);
  EXPECT_EQ(lower.theta, (std::vector<std::uint64_t>{2, 2, 2}));
  EXPECT_EQ(lower.max_tip, 2u);
  EXPECT_GT(upper.count_updates, 0u);
}

TEST(CorePruning, DecomposeWithCorePruningIsBitIdentical) {
  for (const Case& test_case : CohesionCases()) {
    const BitrussResult plain = Decompose(test_case.graph);
    const BitrussResult pruned = DecomposeWithCorePruning(test_case.graph);
    EXPECT_EQ(plain.phi, pruned.phi) << test_case.name;
    EXPECT_EQ(plain.original_support, pruned.original_support)
        << test_case.name;
    EXPECT_EQ(plain.total_butterflies, pruned.total_butterflies)
        << test_case.name;
  }
}

TEST(CorePruning, BitIdenticalUnderOtherAlgorithmsToo) {
  const BipartiteGraph g = GenerateUniformBipartite(9, 8, 55, 41);
  for (const Algorithm algorithm :
       {Algorithm::kBS, Algorithm::kBU, Algorithm::kPC}) {
    DecomposeOptions options;
    options.algorithm = algorithm;
    const BitrussResult plain = Decompose(g, options);
    const BitrussResult pruned = DecomposeWithCorePruning(g, options);
    EXPECT_EQ(plain.phi, pruned.phi);
  }
}

TEST(CorePruning, PendantEdgesArePrunedExactly) {
  // K(2,3) plus a pendant lower vertex: the pendant edge is outside the
  // (2,2)-core and must come back with phi = 0 and support 0.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 2; ++u) {
    for (VertexId l = 0; l < 3; ++l) edges.emplace_back(u, l);
  }
  edges.emplace_back(0, 3);
  const BipartiteGraph g(2, 4, edges);

  const StatusOr<ABCorePruneResult> pruned = PruneToABCore(g, 2, 2);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned.value().pruned_edges, 1u);
  EXPECT_EQ(pruned.value().graph.NumEdges(), g.NumEdges() - 1);
  EXPECT_EQ(pruned.value().edge_origin.size(), g.NumEdges() - 1);

  const BitrussResult plain = Decompose(g);
  const BitrussResult via_core = DecomposeWithCorePruning(g);
  EXPECT_EQ(plain.phi, via_core.phi);
  EXPECT_EQ(plain.original_support, via_core.original_support);
}

TEST(CorePruning, FastPathWhenNothingPrunes) {
  // K(3,3) is its own (2,2)-core; the prune removes zero edges and the
  // fast path must still produce the plain result.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 3; ++u) {
    for (VertexId l = 0; l < 3; ++l) edges.emplace_back(u, l);
  }
  const BipartiteGraph g(3, 3, edges);
  const StatusOr<ABCorePruneResult> pruned = PruneToABCore(g, 2, 2);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned.value().pruned_edges, 0u);
  const BitrussResult plain = Decompose(g);
  const BitrussResult via_core = DecomposeWithCorePruning(g);
  EXPECT_EQ(plain.phi, via_core.phi);
  EXPECT_EQ(plain.original_support, via_core.original_support);
}

TEST(CorePruning, StatusContracts) {
  const BipartiteGraph g = GenerateUniformBipartite(5, 5, 10, 3);
  EXPECT_EQ(PruneToABCore(g, 0, 2).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PruneToABCore(g, 2, 0).status().code(),
            StatusCode::kInvalidArgument);

  const BipartiteGraph empty(4, 4, {});
  const StatusOr<ABCorePruneResult> pruned = PruneToABCore(empty, 2, 2);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned.value().pruned_edges, 0u);
  EXPECT_EQ(pruned.value().graph.NumEdges(), 0u);
  EXPECT_TRUE(pruned.value().edge_origin.empty());
}

TEST(CorePruning, ExpiredDeadlineIsHonoredInsidePrunePass) {
  // A deadline that has already passed must surface as a timed-out partial
  // result from the prune pass itself — peeling never starts, phi comes
  // back all-zero at full size, and the call returns promptly instead of
  // spending the caller's blown budget on cascade + compaction work.
  const BipartiteGraph g = GenerateUniformBipartite(40, 30, 300, 17);
  DecomposeOptions options;
  options.deadline = Deadline::After(-1.0);
  const BitrussResult result = DecomposeWithCorePruning(g, options);
  EXPECT_TRUE(result.timed_out);
  EXPECT_EQ(result.phi, std::vector<SupportT>(g.NumEdges(), 0));
  EXPECT_EQ(result.original_support, std::vector<SupportT>(g.NumEdges(), 0));

  // An effectively infinite deadline changes nothing.
  options.deadline = Deadline::After(3600.0);
  const BitrussResult relaxed = DecomposeWithCorePruning(g, options);
  EXPECT_FALSE(relaxed.timed_out);
  EXPECT_EQ(relaxed.phi, Decompose(g).phi);
}

TEST(CorePruning, EdgeOriginMapsSurvivingEdgesBack) {
  for (const Case& test_case : CohesionCases()) {
    const BipartiteGraph& g = test_case.graph;
    const StatusOr<ABCorePruneResult> pruned = PruneToABCore(g, 2, 2);
    ASSERT_TRUE(pruned.ok()) << test_case.name;
    const ABCorePruneResult& core = pruned.value();
    EXPECT_EQ(core.graph.NumEdges() + core.pruned_edges, g.NumEdges())
        << test_case.name;
    for (EdgeId e = 0; e < core.graph.NumEdges(); ++e) {
      const EdgeId origin = core.edge_origin[e];
      EXPECT_EQ(core.graph.EdgeUpper(e), g.EdgeUpper(origin))
          << test_case.name;
      EXPECT_EQ(core.graph.EdgeLower(e), g.EdgeLower(origin))
          << test_case.name;
    }
  }
}

}  // namespace
}  // namespace bitruss
