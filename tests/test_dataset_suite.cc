// Determinism and validity of the named synthetic dataset suite.

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "gen/dataset_suite.h"
#include "graph/bipartite_graph.h"
#include "graph/subgraph.h"

namespace bitruss {
namespace {

TEST(DatasetSuite, HasFifteenDatasetsIncludingTheBenchNames) {
  const std::vector<std::string> names = DatasetNames();
  EXPECT_EQ(names.size(), 15u);
  const std::set<std::string> set(names.begin(), names.end());
  EXPECT_EQ(set.size(), names.size()) << "duplicate dataset names";
  for (const char* required :
       {"Github", "Twitter", "D-label", "D-style", "Wiki-it"}) {
    EXPECT_TRUE(set.count(required)) << required;
  }
}

TEST(DatasetSuite, GenerationIsDeterministic) {
  for (const std::string& name : DatasetNames()) {
    const BipartiteGraph a = MakeDataset(name, 0.05);
    const BipartiteGraph b = MakeDataset(name, 0.05);
    EXPECT_EQ(a.NumUpper(), b.NumUpper()) << name;
    EXPECT_EQ(a.NumLower(), b.NumLower()) << name;
    EXPECT_EQ(a.EdgeList(), b.EdgeList()) << name;
  }
}

TEST(DatasetSuite, ScaleIsMonotone) {
  for (const std::string& name : DatasetNames()) {
    const BipartiteGraph small = MakeDataset(name, 0.02);
    const BipartiteGraph medium = MakeDataset(name, 0.05);
    const BipartiteGraph large = MakeDataset(name, 0.1);
    EXPECT_LE(small.NumEdges(), medium.NumEdges()) << name;
    EXPECT_LE(medium.NumEdges(), large.NumEdges()) << name;
    EXPECT_LE(small.NumVertices(), medium.NumVertices()) << name;
    EXPECT_LE(medium.NumVertices(), large.NumVertices()) << name;
    EXPECT_GT(small.NumEdges(), 0u) << name;
  }
}

TEST(DatasetSuite, EveryDatasetIsAValidBipartiteGraph) {
  for (const std::string& name : DatasetNames()) {
    const BipartiteGraph g = MakeDataset(name, 0.05);
    EXPECT_GT(g.NumUpper(), 0u) << name;
    EXPECT_GT(g.NumLower(), 0u) << name;
    EXPECT_GT(g.NumEdges(), 0u) << name;

    std::set<std::pair<VertexId, VertexId>> seen;
    std::uint64_t degree_sum = 0;
    for (EdgeId e = 0; e < g.NumEdges(); ++e) {
      const VertexId u = g.EdgeUpper(e);
      const VertexId v = g.EdgeLower(e);
      ASSERT_LT(u, g.NumUpper()) << name;
      ASSERT_GE(v, g.NumUpper()) << name;
      ASSERT_LT(v, g.NumVertices()) << name;
      EXPECT_TRUE(seen.emplace(u, v).second)
          << name << ": duplicate edge " << u << "-" << v;
    }
    for (VertexId v = 0; v < g.NumVertices(); ++v) degree_sum += g.Degree(v);
    EXPECT_EQ(degree_sum, 2ull * g.NumEdges()) << name;
  }
}

TEST(DatasetSuite, RequestedEdgeBudgetIsHonored) {
  // The generators guarantee the exact edge budget (top-up path), which is
  // what makes the scale-monotonicity contract exact rather than expected.
  const BipartiteGraph g = MakeDataset("Github", 0.05);
  EXPECT_EQ(g.NumEdges(), 1500u);
}

TEST(DatasetSuite, UnknownNameAndBadScaleThrow) {
  EXPECT_THROW(MakeDataset("NoSuchDataset", 1.0), std::invalid_argument);
  EXPECT_THROW(MakeDataset("Github", 0.0), std::invalid_argument);
  EXPECT_THROW(MakeDataset("Github", -1.0), std::invalid_argument);
}

TEST(DatasetSuite, InducedVertexSampleIsValidAndDeterministic) {
  const BipartiteGraph g = MakeDataset("Github", 0.05);
  const BipartiteGraph a = InducedVertexSample(g, 50, 42);
  const BipartiteGraph b = InducedVertexSample(g, 50, 42);
  EXPECT_EQ(a.EdgeList(), b.EdgeList());
  EXPECT_LE(a.NumUpper(), g.NumUpper());
  EXPECT_LE(a.NumLower(), g.NumLower());
  EXPECT_LT(a.NumEdges(), g.NumEdges());
  std::uint64_t degree_sum = 0;
  for (VertexId v = 0; v < a.NumVertices(); ++v) degree_sum += a.Degree(v);
  EXPECT_EQ(degree_sum, 2ull * a.NumEdges());
}

}  // namespace
}  // namespace bitruss
