// Oracle tests for the dynamic bipartite graph: random insert/delete
// streams on suite graphs, checking the incrementally maintained supports
// against a fresh exact recount every K updates, Snapshot()+Decompose()
// equivalence with an identically built static graph, and the Status
// contract for duplicate inserts / missing deletes.

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "butterfly/butterfly_counting.h"
#include "core/decompose.h"
#include "dynamic/dynamic_graph.h"
#include "gen/dataset_suite.h"
#include "gen/random_bipartite.h"
#include "graph/bipartite_graph.h"
#include "util/random.h"

namespace bitruss {
namespace {

// Snapshot the dynamic graph and check every maintained support and the
// butterfly total against an exact recount of the compacted CSR.
void ExpectSupportsMatchRecount(const DynamicBipartiteGraph& dynamic) {
  const GraphSnapshot snapshot = dynamic.Snapshot();
  ASSERT_EQ(snapshot.graph.NumEdges(), dynamic.NumEdges());
  ASSERT_EQ(snapshot.supports.size(), snapshot.graph.NumEdges());
  EXPECT_EQ(snapshot.supports, CountEdgeSupports(snapshot.graph));
  EXPECT_EQ(dynamic.NumButterflies(), CountTotalButterflies(snapshot.graph));
}

// The bench's mixed stream: delete a random known edge or insert a random
// pair, verifying against the oracle every `verify_every` applied updates.
void RunMixedStream(DynamicBipartiteGraph& dynamic, int updates,
                    int verify_every, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<EdgeId> inserted;
  for (int applied = 0; applied < updates;) {
    if (!inserted.empty() && rng.NextBool(0.5)) {
      const std::size_t pick = rng.Below(inserted.size());
      ASSERT_TRUE(dynamic.DeleteEdge(inserted[pick]).ok());
      inserted[pick] = inserted.back();
      inserted.pop_back();
      ++applied;
    } else {
      const auto u = static_cast<VertexId>(rng.Below(dynamic.NumUpper()));
      const auto v = static_cast<VertexId>(rng.Below(dynamic.NumLower()));
      auto result = dynamic.InsertEdge(u, v);
      if (!result.ok()) {
        EXPECT_EQ(result.status().code(), StatusCode::kAlreadyExists);
        continue;
      }
      inserted.push_back(result.value());
      ++applied;
    }
    if (applied % verify_every == 0) {
      ASSERT_NO_FATAL_FAILURE(ExpectSupportsMatchRecount(dynamic));
    }
  }
}

TEST(DynamicGraph, SeedMatchesStaticCounting) {
  for (const char* name : {"Writer", "Github"}) {
    const BipartiteGraph seed = MakeDataset(name, 0.05);
    const DynamicBipartiteGraph dynamic(seed);
    EXPECT_EQ(dynamic.NumEdges(), seed.NumEdges());
    EXPECT_EQ(dynamic.NumSlots(), seed.NumEdges());
    EXPECT_EQ(dynamic.NumButterflies(), CountTotalButterflies(seed));
    // Seed edges keep their CSR EdgeIds as slot ids.
    const std::vector<SupportT> sup = CountEdgeSupports(seed);
    for (EdgeId e = 0; e < seed.NumEdges(); ++e) {
      ASSERT_TRUE(dynamic.IsLive(e));
      EXPECT_EQ(dynamic.EdgeUpper(e), seed.EdgeUpper(e));
      EXPECT_EQ(dynamic.EdgeLower(e), seed.EdgeLower(e));
      ASSERT_EQ(dynamic.Support(e), sup[e]) << "edge " << e;
    }
  }
}

TEST(DynamicGraph, HandComputedButterflyDeltas) {
  // Path u0 - l0 - u1 - l1: no butterflies.  Inserting (u0, l1) closes
  // K(2,2); every edge then has support 1.  Deleting it restores zero.
  const BipartiteGraph seed(2, 2, {{0, 0}, {1, 0}, {1, 1}});
  DynamicBipartiteGraph dynamic(seed);
  EXPECT_EQ(dynamic.NumButterflies(), 0u);

  auto closing = dynamic.InsertEdge(0, 1);
  ASSERT_TRUE(closing.ok());
  EXPECT_EQ(dynamic.NumEdges(), 4u);
  EXPECT_EQ(dynamic.NumButterflies(), 1u);
  for (EdgeId e = 0; e < 4; ++e) EXPECT_EQ(dynamic.Support(e), 1u);

  ASSERT_TRUE(dynamic.DeleteEdge(closing.value()).ok());
  EXPECT_EQ(dynamic.NumEdges(), 3u);
  EXPECT_EQ(dynamic.NumButterflies(), 0u);
  for (EdgeId e = 0; e < 3; ++e) EXPECT_EQ(dynamic.Support(e), 0u);
}

TEST(DynamicGraph, RandomStreamMaintainsExactSupports) {
  for (const char* name : {"Writer", "Github", "D-style"}) {
    SCOPED_TRACE(name);
    DynamicBipartiteGraph dynamic(MakeDataset(name, 0.02));
    RunMixedStream(dynamic, /*updates=*/300, /*verify_every=*/50,
                   HashString64(name));
  }
}

TEST(DynamicGraph, SnapshotDecomposeMatchesStaticBuild) {
  DynamicBipartiteGraph dynamic(
      GenerateUniformBipartite(40, 30, 220, /*seed=*/11));
  RunMixedStream(dynamic, /*updates=*/200, /*verify_every=*/100, 42);

  // Rebuild the surviving edge list straight from the live slots and
  // construct a static graph the way a from-scratch caller would.
  std::vector<std::pair<VertexId, VertexId>> pairs;
  for (EdgeId e = 0; e < dynamic.NumSlots(); ++e) {
    if (dynamic.IsLive(e)) {
      pairs.emplace_back(dynamic.EdgeUpper(e),
                         dynamic.EdgeLower(e) - dynamic.NumUpper());
    }
  }
  const BipartiteGraph static_graph(dynamic.NumUpper(), dynamic.NumLower(),
                                    std::move(pairs));

  const GraphSnapshot snapshot = dynamic.Snapshot();
  ASSERT_EQ(snapshot.graph.NumEdges(), static_graph.NumEdges());
  ASSERT_EQ(snapshot.graph.EdgeList(), static_graph.EdgeList());
  // The stable mapping points each snapshot edge back at its slot.
  for (EdgeId e = 0; e < snapshot.graph.NumEdges(); ++e) {
    const EdgeId slot = snapshot.slot_of_edge[e];
    ASSERT_TRUE(dynamic.IsLive(slot));
    EXPECT_EQ(snapshot.graph.EdgeUpper(e), dynamic.EdgeUpper(slot));
    EXPECT_EQ(snapshot.graph.EdgeLower(e), dynamic.EdgeLower(slot));
    EXPECT_EQ(snapshot.supports[e], dynamic.Support(slot));
  }

  EXPECT_EQ(Decompose(snapshot.graph).phi, Decompose(static_graph).phi);
}

TEST(DynamicGraph, DuplicateInsertAndMissingDeleteFail) {
  DynamicBipartiteGraph dynamic(BipartiteGraph(3, 3, {{0, 0}, {1, 1}}));
  const EdgeId live = dynamic.NumEdges();

  auto duplicate = dynamic.InsertEdge(0, 0);
  EXPECT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.status().code(), StatusCode::kAlreadyExists);
  EXPECT_THROW(duplicate.value(), std::logic_error);

  auto out_of_range = dynamic.InsertEdge(3, 0);
  EXPECT_FALSE(out_of_range.ok());
  EXPECT_EQ(out_of_range.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(dynamic.InsertEdge(0, 9).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(dynamic.DeleteEdge(17).code(), StatusCode::kNotFound);
  ASSERT_TRUE(dynamic.DeleteEdge(0).ok());
  EXPECT_EQ(dynamic.DeleteEdge(0).code(), StatusCode::kNotFound);  // double

  // Failed operations leave the graph untouched (one successful delete).
  EXPECT_EQ(dynamic.NumEdges(), live - 1);
}

TEST(DynamicGraph, FreedSlotsAreReused) {
  DynamicBipartiteGraph dynamic(BipartiteGraph(4, 4, {{0, 0}, {1, 1}, {2, 2}}));
  ASSERT_TRUE(dynamic.DeleteEdge(1).ok());
  EXPECT_FALSE(dynamic.IsLive(1));
  auto reinserted = dynamic.InsertEdge(3, 3);
  ASSERT_TRUE(reinserted.ok());
  EXPECT_EQ(reinserted.value(), 1u);  // free list before slot growth
  EXPECT_TRUE(dynamic.IsLive(1));
  EXPECT_EQ(dynamic.NumSlots(), 3u);
  EXPECT_EQ(dynamic.FindEdge(3, dynamic.NumUpper() + 3), 1u);
  EXPECT_EQ(dynamic.FindEdge(1, dynamic.NumUpper() + 1), kInvalidEdge);
}

TEST(DynamicGraph, UpdateDeltaReportsTouchedEdges) {
  // Path u0 - l0 - u1 - l1: inserting (u0, l1) closes one butterfly whose
  // three pre-existing edges are exactly the path; deleting it reports
  // the same set on the way out.  Edge ids 0..2 are the seed CSR ids.
  DynamicBipartiteGraph dynamic(BipartiteGraph(2, 2, {{0, 0}, {1, 0}, {1, 1}}));
  UpdateDelta delta;
  delta.touched.push_back(99);  // must be cleared by the next update

  auto closing = dynamic.InsertEdge(0, 1, &delta);
  ASSERT_TRUE(closing.ok());
  EXPECT_EQ(delta.butterflies, 1u);
  std::vector<EdgeId> touched = delta.touched;
  std::sort(touched.begin(), touched.end());
  EXPECT_EQ(touched, (std::vector<EdgeId>{0, 1, 2}));

  ASSERT_TRUE(dynamic.DeleteEdge(closing.value(), &delta).ok());
  EXPECT_EQ(delta.butterflies, 1u);
  touched = delta.touched;
  std::sort(touched.begin(), touched.end());
  EXPECT_EQ(touched, (std::vector<EdgeId>{0, 1, 2}));

  // A butterfly-free delete reports an empty delta.
  ASSERT_TRUE(dynamic.DeleteEdge(0, &delta).ok());
  EXPECT_EQ(delta.butterflies, 0u);
  EXPECT_TRUE(delta.touched.empty());

  // Failed updates leave the caller's delta untouched.
  delta.touched.push_back(42);
  EXPECT_FALSE(dynamic.InsertEdge(9, 9, &delta).ok());
  EXPECT_FALSE(dynamic.DeleteEdge(0, &delta).ok());
  EXPECT_EQ(delta.touched, (std::vector<EdgeId>{42}));
}

TEST(DynamicGraph, SupportDeltaGuardsSaturate) {
  constexpr SupportT kMax = std::numeric_limits<SupportT>::max();
  // Normal range: plain ±1 steps.
  EXPECT_EQ(internal::SaturatingIncrement(0), 1u);
  EXPECT_EQ(internal::SaturatingIncrement(41), 42u);
  EXPECT_EQ(internal::SaturatingDecrement(42), 41u);
  EXPECT_EQ(internal::SaturatingDecrement(1), 0u);
  EXPECT_EQ(internal::SaturatingSupportCast(0), 0u);
  EXPECT_EQ(internal::SaturatingSupportCast(kMax), kMax);
#ifdef NDEBUG
  // Release behavior at the boundaries: saturate instead of wrapping.
  // (Debug builds assert on the same inputs; the invariant violation is a
  // bug there, not a value to test.)
  EXPECT_EQ(internal::SaturatingIncrement(kMax), kMax);
  EXPECT_EQ(internal::SaturatingDecrement(0), 0u);
  EXPECT_EQ(internal::SaturatingSupportCast(std::uint64_t{kMax} + 1), kMax);
  EXPECT_EQ(internal::SaturatingSupportCast(~std::uint64_t{0}), kMax);
#endif
}

TEST(DynamicGraph, CompactSlotsBoundsSlotGrowthUnderChurn) {
  DynamicBipartiteGraph dynamic(MakeDataset("Writer", 0.02));
  const EdgeId seed_edges = dynamic.NumEdges();
  Rng rng(31337);

  // Sustained churn: repeatedly delete a random live edge and insert a
  // fresh random pair, keeping NumEdges() roughly flat.  Without
  // compaction the slot table only ever grows; with a periodic
  // CompactSlots() it must return to exactly the live-edge count.
  for (int cycle = 0; cycle < 4; ++cycle) {
    int churned = 0;
    while (churned < 200) {
      EdgeId victim = static_cast<EdgeId>(rng.Below(dynamic.NumSlots()));
      if (dynamic.IsLive(victim) && dynamic.DeleteEdge(victim).ok()) {
        ++churned;
      }
      const auto u = static_cast<VertexId>(rng.Below(dynamic.NumUpper()));
      const auto v = static_cast<VertexId>(rng.Below(dynamic.NumLower()));
      if (dynamic.InsertEdge(u, v).ok()) ++churned;
    }
    ASSERT_GT(dynamic.NumSlots(), dynamic.NumEdges());  // churn left holes

    const EdgeId live = dynamic.NumEdges();
    const EdgeId old_slots = dynamic.NumSlots();
    const std::vector<EdgeId> mapping = dynamic.CompactSlots();
    ASSERT_EQ(mapping.size(), old_slots);
    EXPECT_EQ(dynamic.NumSlots(), live);  // bounded: slots == live edges
    EXPECT_EQ(dynamic.NumEdges(), live);

    // The mapping renumbers live slots monotonically and drops free ones.
    EdgeId expected = 0;
    for (EdgeId old_slot = 0; old_slot < old_slots; ++old_slot) {
      if (mapping[old_slot] != kInvalidEdge) {
        EXPECT_EQ(mapping[old_slot], expected++);
      }
    }
    EXPECT_EQ(expected, live);

    // Adjacency, hash index, and maintained supports all survive.
    for (EdgeId e = 0; e < dynamic.NumSlots(); ++e) {
      ASSERT_TRUE(dynamic.IsLive(e));
      EXPECT_EQ(dynamic.FindEdge(dynamic.EdgeUpper(e), dynamic.EdgeLower(e)),
                e);
    }
    ASSERT_NO_FATAL_FAILURE(ExpectSupportsMatchRecount(dynamic));
  }
  // The graph keeps mutating correctly after repeated compactions.
  RunMixedStream(dynamic, /*updates=*/100, /*verify_every=*/50, 55);
  (void)seed_edges;
}

TEST(DynamicGraph, CompactSlotsOnCompactTableIsANoOp) {
  DynamicBipartiteGraph dynamic(BipartiteGraph(3, 3, {{0, 0}, {1, 1}, {2, 2}}));
  const std::vector<EdgeId> mapping = dynamic.CompactSlots();
  EXPECT_EQ(mapping, (std::vector<EdgeId>{0, 1, 2}));
  EXPECT_EQ(dynamic.NumSlots(), 3u);
  for (EdgeId e = 0; e < 3; ++e) EXPECT_TRUE(dynamic.IsLive(e));
}

TEST(DynamicGraph, EmptySeed) {
  DynamicBipartiteGraph dynamic(BipartiteGraph(0, 0, {}));
  EXPECT_EQ(dynamic.NumEdges(), 0u);
  EXPECT_EQ(dynamic.NumButterflies(), 0u);
  EXPECT_EQ(dynamic.InsertEdge(0, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(dynamic.Snapshot().graph.NumEdges(), 0u);
  EXPECT_GT(dynamic.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace bitruss
