// Oracle tests for incremental bitruss maintenance: after EVERY update of
// randomized insert/delete streams, the maintained phi must be
// bit-identical to a from-scratch Snapshot() + Decompose() recount — on
// the default budget (local re-peel path), a tiny budget (mixed
// local/fallback), and budget 0 (every non-trivial update falls back to
// the scoped component recompute).  Plus the long-stream fuzz sweep
// (supports, butterfly totals, and phi against recount oracles at
// checkpoints), slot compaction under churn, and stats plumbing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <utility>
#include <vector>

#include "butterfly/butterfly_counting.h"
#include "core/decompose.h"
#include "core/local_peel.h"
#include "dynamic/incremental_bitruss.h"
#include "gen/dataset_suite.h"
#include "gen/random_bipartite.h"
#include "graph/bipartite_graph.h"
#include "util/random.h"

namespace bitruss {
namespace {

// Recount oracle: maintained phi (by slot) must match a full Decompose()
// of the compacted snapshot, edge by edge through the slot mapping.
void ExpectPhiMatchesRecount(const IncrementalBitruss& inc) {
  const GraphSnapshot snapshot = inc.Graph().Snapshot();
  const BitrussResult oracle = Decompose(snapshot.graph);
  ASSERT_EQ(snapshot.graph.NumEdges(), inc.Graph().NumEdges());
  for (EdgeId e = 0; e < snapshot.graph.NumEdges(); ++e) {
    const EdgeId slot = snapshot.slot_of_edge[e];
    ASSERT_EQ(inc.Phi(slot), oracle.phi[e])
        << "slot " << slot << " (snapshot edge " << e << ")";
  }
}

// Full-state oracle for the fuzz checkpoints: supports, butterfly total,
// and phi all against independent recounts.
void ExpectStateMatchesRecount(const IncrementalBitruss& inc) {
  const GraphSnapshot snapshot = inc.Graph().Snapshot();
  ASSERT_EQ(snapshot.supports, CountEdgeSupports(snapshot.graph));
  ASSERT_EQ(inc.Graph().NumButterflies(),
            CountTotalButterflies(snapshot.graph));
  const BitrussResult oracle = Decompose(snapshot.graph);
  for (EdgeId e = 0; e < snapshot.graph.NumEdges(); ++e) {
    ASSERT_EQ(inc.Phi(snapshot.slot_of_edge[e]), oracle.phi[e]);
  }
}

// Mixed stream driver; runs `checkpoint` every `verify_every` applied
// updates (1 = after every single update).  When `compact_every_checkpoints`
// is non-zero, every Nth checkpoint is followed by a CompactSlots() — the
// handed-out slot ids are remapped through the returned mapping, exactly
// as a slot-holding caller must.
template <typename CheckpointFn>
void RunCheckedStream(IncrementalBitruss& inc, int updates, int verify_every,
                      std::uint64_t seed, CheckpointFn&& checkpoint,
                      int compact_every_checkpoints = 0) {
  Rng rng(seed);
  std::vector<EdgeId> inserted;
  int checkpoints = 0;
  for (int applied = 0; applied < updates;) {
    if (!inserted.empty() && rng.NextBool(0.5)) {
      const std::size_t pick = rng.Below(inserted.size());
      ASSERT_TRUE(inc.DeleteEdge(inserted[pick]).ok());
      inserted[pick] = inserted.back();
      inserted.pop_back();
      ++applied;
    } else {
      const auto u = static_cast<VertexId>(rng.Below(inc.Graph().NumUpper()));
      const auto v = static_cast<VertexId>(rng.Below(inc.Graph().NumLower()));
      auto result = inc.InsertEdge(u, v);
      if (!result.ok()) {
        ASSERT_EQ(result.status().code(), StatusCode::kAlreadyExists);
        continue;
      }
      inserted.push_back(result.value());
      ++applied;
    }
    if (applied % verify_every == 0) {
      ASSERT_NO_FATAL_FAILURE(checkpoint(inc));
      if (compact_every_checkpoints != 0 &&
          ++checkpoints % compact_every_checkpoints == 0) {
        const std::vector<EdgeId> mapping = inc.CompactSlots();
        for (EdgeId& slot : inserted) {
          ASSERT_LT(slot, mapping.size());
          ASSERT_NE(mapping[slot], kInvalidEdge);  // it was live
          slot = mapping[slot];
        }
        ASSERT_NO_FATAL_FAILURE(checkpoint(inc));
      }
    }
  }
}

// The common case: phi against the recount oracle at every checkpoint.
void RunVerifiedStream(IncrementalBitruss& inc, int updates, int verify_every,
                       std::uint64_t seed) {
  RunCheckedStream(inc, updates, verify_every, seed, ExpectPhiMatchesRecount);
}

TEST(HIndexOfWeights, MatchesDefinition) {
  std::vector<std::uint32_t> bucket;
  EXPECT_EQ(HIndexOfWeights({}, 10, &bucket), 0u);
  EXPECT_EQ(HIndexOfWeights({5, 5, 5}, 0, &bucket), 0u);
  EXPECT_EQ(HIndexOfWeights({1}, 10, &bucket), 1u);
  EXPECT_EQ(HIndexOfWeights({3, 1, 2}, 10, &bucket), 2u);
  EXPECT_EQ(HIndexOfWeights({7, 7, 7, 7}, 10, &bucket), 4u);
  // Clamping at cap cannot lower any h-index at or below cap.
  EXPECT_EQ(HIndexOfWeights({7, 7, 7, 7}, 2, &bucket), 2u);
  EXPECT_EQ(HIndexOfWeights({0, 0, 9}, 10, &bucket), 1u);
}

TEST(IncrementalBitruss, SeedMatchesDecompose) {
  const BipartiteGraph seed = MakeDataset("Writer", 0.03);
  const IncrementalBitruss inc(seed);
  const BitrussResult expected = Decompose(seed);
  // Seed slots keep the CSR edge ids, so phi lines up directly.
  for (EdgeId e = 0; e < seed.NumEdges(); ++e) {
    ASSERT_EQ(inc.Phi(e), expected.phi[e]);
  }
}

TEST(IncrementalBitruss, HandComputedInsertAndDelete) {
  // Path u0 - l0 - u1 - l1: all phi 0.  Inserting (u0, l1) closes K(2,2)
  // and every edge rises to phi 1; deleting it drops everything back.
  const BipartiteGraph seed(2, 2, {{0, 0}, {1, 0}, {1, 1}});
  IncrementalBitruss inc(seed);
  for (EdgeId e = 0; e < 3; ++e) EXPECT_EQ(inc.Phi(e), 0u);

  auto closing = inc.InsertEdge(0, 1);
  ASSERT_TRUE(closing.ok());
  for (EdgeId e = 0; e < 4; ++e) EXPECT_EQ(inc.Phi(e), 1u) << "slot " << e;
  EXPECT_FALSE(inc.LastUpdateStats().fallback);
  EXPECT_EQ(inc.LastUpdateStats().phi_changes, 4u);

  ASSERT_TRUE(inc.DeleteEdge(closing.value()).ok());
  for (EdgeId e = 0; e < 3; ++e) EXPECT_EQ(inc.Phi(e), 0u) << "slot " << e;
  EXPECT_EQ(inc.LastUpdateStats().phi_changes, 3u);
  EXPECT_EQ(inc.Totals().fallbacks, 0u);
  EXPECT_EQ(inc.Totals().local_repairs, 2u);
}

TEST(IncrementalBitruss, EveryUpdateBitIdenticalOnLocalPath) {
  // Unlimited literal budget: every update must be repaired by the local
  // re-peel alone — no fallback recompute to mask a repair bug.
  IncrementalBitrussOptions options;
  options.adaptive_budget = false;
  options.cascade_budget = std::numeric_limits<std::uint64_t>::max();
  for (const char* name : {"Writer", "Github"}) {
    SCOPED_TRACE(name);
    IncrementalBitruss inc(MakeDataset(name, 0.02), options);
    RunVerifiedStream(inc, /*updates=*/150, /*verify_every=*/1,
                      HashString64(name) ^ 0x5eedull);
    EXPECT_EQ(inc.Totals().fallbacks, 0u);  // all repairs stayed local
    EXPECT_EQ(inc.Totals().inserts + inc.Totals().deletes, 150u);
  }
}

TEST(IncrementalBitruss, EveryUpdateBitIdenticalOnDenseRandomGraph) {
  IncrementalBitruss inc(GenerateUniformBipartite(25, 20, 160, /*seed=*/7));
  RunVerifiedStream(inc, /*updates=*/200, /*verify_every=*/1, 99);
}

TEST(IncrementalBitruss, ForcedFallbackBitIdentical) {
  IncrementalBitrussOptions options;
  options.cascade_budget = 0;  // every non-trivial update falls back
  IncrementalBitruss inc(GenerateUniformBipartite(25, 20, 160, /*seed=*/7),
                         options);
  RunVerifiedStream(inc, /*updates=*/120, /*verify_every=*/1, 99);
  EXPECT_GT(inc.Totals().fallbacks, 0u);
}

TEST(IncrementalBitruss, TinyBudgetMixedPathsBitIdentical) {
  IncrementalBitrussOptions options;
  options.cascade_budget = 6;  // forces mid-repair aborts and rollbacks
  IncrementalBitruss inc(GenerateUniformBipartite(30, 25, 200, /*seed=*/13),
                         options);
  RunVerifiedStream(inc, /*updates=*/200, /*verify_every=*/1, 1234);
  EXPECT_GT(inc.Totals().fallbacks, 0u);
  EXPECT_GT(inc.Totals().local_repairs, 0u);
}

TEST(IncrementalBitruss, AlternativeAlgorithmsAgree) {
  // The fallback/initial Decompose variant must not matter.
  for (const Algorithm algorithm : {Algorithm::kBS, Algorithm::kPC}) {
    IncrementalBitrussOptions options;
    options.decompose.algorithm = algorithm;
    options.cascade_budget = 16;
    IncrementalBitruss inc(GenerateUniformBipartite(20, 15, 110, /*seed=*/3),
                           options);
    RunVerifiedStream(inc, /*updates=*/80, /*verify_every=*/1, 77);
  }
}

TEST(IncrementalBitruss, CompactSlotsPreservesMaintainedState) {
  IncrementalBitruss inc(MakeDataset("Writer", 0.02));
  RunVerifiedStream(inc, /*updates=*/120, /*verify_every=*/60, 4242);

  const EdgeId live = inc.Graph().NumEdges();
  const std::vector<EdgeId> mapping = inc.CompactSlots();
  EXPECT_EQ(inc.Graph().NumSlots(), live);
  EXPECT_EQ(inc.Graph().NumEdges(), live);
  EXPECT_EQ(inc.PhiBySlot().size(), live);
  for (const EdgeId target : mapping) {
    if (target != kInvalidEdge) {
      ASSERT_LT(target, live);
    }
  }
  ASSERT_NO_FATAL_FAILURE(ExpectStateMatchesRecount(inc));
  // The maintainer keeps working across the compaction.
  RunVerifiedStream(inc, /*updates=*/60, /*verify_every=*/20, 4243);
}

// The long-stream fuzz sweep: >= 10k mixed updates across three suite
// datasets, with supports, NumButterflies(), and phi checked against
// recount oracles at every checkpoint, and a CompactSlots() interleaved at
// every second checkpoint so the maintained state is fuzzed across slot
// renumbering too (stale scratch sized to the old slot table would
// corrupt the very next repair).
TEST(IncrementalBitruss, LongStreamFuzzAcrossSuiteDatasets) {
  constexpr int kUpdatesPerDataset = 3500;
  constexpr int kCheckpointEvery = 500;
  for (const char* name : {"Writer", "Github", "Twitter"}) {
    SCOPED_TRACE(name);
    IncrementalBitruss inc(MakeDataset(name, 0.02));
    RunCheckedStream(inc, kUpdatesPerDataset, kCheckpointEvery,
                     HashString64(name) ^ 0xf022ull, ExpectStateMatchesRecount,
                     /*compact_every_checkpoints=*/2);
    EXPECT_EQ(inc.Totals().inserts + inc.Totals().deletes,
              static_cast<std::uint64_t>(kUpdatesPerDataset));
  }
}

// Dense adversary: D-style's hub-heavy lower side is a near-complete
// block, so an insert's affected band legitimately spans most of the
// graph and the budget forces the component-recompute fallback.  The
// maintained phi must stay bit-identical through that path too.
TEST(IncrementalBitruss, DenseBlockFallsBackAndStaysExact) {
  // Nearly all vertex pairs are present, so churn seed edges directly:
  // delete a random live slot, then re-insert a random free pair.
  IncrementalBitruss inc(MakeDataset("D-style", 0.01));
  Rng rng(2026);
  for (int round = 0; round < 30; ++round) {
    EdgeId victim = kInvalidEdge;
    do {
      victim = static_cast<EdgeId>(rng.Below(inc.Graph().NumSlots()));
    } while (!inc.Graph().IsLive(victim));
    const VertexId u = inc.Graph().EdgeUpper(victim);
    const VertexId v = inc.Graph().EdgeLower(victim) - inc.Graph().NumUpper();
    ASSERT_TRUE(inc.DeleteEdge(victim).ok());
    ASSERT_NO_FATAL_FAILURE(ExpectPhiMatchesRecount(inc));
    ASSERT_TRUE(inc.InsertEdge(u, v).ok());  // the pair just freed
    ASSERT_NO_FATAL_FAILURE(ExpectPhiMatchesRecount(inc));
  }
  EXPECT_GT(inc.Totals().fallbacks, 0u);
}

// The maintainer owns a graph plus large slot-indexed scratch; a silent
// copy would fork phi state and double memory.  Moves stay allowed.
static_assert(!std::is_copy_constructible_v<IncrementalBitruss>,
              "IncrementalBitruss must not be copyable");
static_assert(!std::is_copy_assignable_v<IncrementalBitruss>,
              "IncrementalBitruss must not be copy-assignable");
static_assert(std::is_move_constructible_v<IncrementalBitruss>,
              "IncrementalBitruss should stay movable");
static_assert(std::is_move_assignable_v<IncrementalBitruss>,
              "IncrementalBitruss should stay move-assignable");

// Regression: a concurrent reader (or any slot-holding caller) may present
// a slot id from before a CompactSlots().  Phi() must answer 0 for any id
// at or past the current slot table — never index out of range — and
// CheckedPhi() must report the precise contract violation.
TEST(IncrementalBitruss, StaleSlotIdsAfterCompactionReadZero) {
  IncrementalBitruss inc(MakeDataset("Writer", 0.02));
  RunVerifiedStream(inc, /*updates=*/80, /*verify_every=*/40, 7777);
  // Free a few slots explicitly so the table is guaranteed sparse.
  for (EdgeId slot = 0; slot < 3; ++slot) {
    ASSERT_TRUE(inc.Graph().IsLive(slot));
    ASSERT_TRUE(inc.DeleteEdge(slot).ok());
  }
  const EdgeId slots_before = inc.Graph().NumSlots();
  ASSERT_GT(slots_before, inc.Graph().NumEdges());  // free slots exist

  const std::vector<EdgeId> mapping = inc.CompactSlots();
  const EdgeId slots_after = inc.Graph().NumSlots();
  ASSERT_LT(slots_after, slots_before);

  // Every pre-compaction id in the now-out-of-range band reads 0.
  for (EdgeId stale = slots_after; stale < slots_before; ++stale) {
    EXPECT_EQ(inc.Phi(stale), 0u) << "stale slot " << stale;
    const auto checked = inc.CheckedPhi(stale);
    ASSERT_FALSE(checked.ok());
    EXPECT_EQ(checked.status().code(), StatusCode::kInvalidArgument);
  }
  EXPECT_EQ(inc.Phi(kInvalidEdge), 0u);
  EXPECT_EQ(inc.Phi(slots_before + 12345), 0u);

  // Live slots answer their maintained phi through both accessors.
  for (EdgeId slot = 0; slot < slots_after; ++slot) {
    ASSERT_TRUE(inc.Graph().IsLive(slot));
    const auto checked = inc.CheckedPhi(slot);
    ASSERT_TRUE(checked.ok());
    EXPECT_EQ(checked.value(), inc.Phi(slot));
  }

  // A free (deleted, in-range) slot is kNotFound, not kInvalidArgument.
  EdgeId victim = 0;
  ASSERT_TRUE(inc.DeleteEdge(victim).ok());
  EXPECT_EQ(inc.Phi(victim), 0u);
  const auto freed = inc.CheckedPhi(victim);
  ASSERT_FALSE(freed.ok());
  EXPECT_EQ(freed.status().code(), StatusCode::kNotFound);
}

TEST(IncrementalBitruss, StatsPlumbing) {
  const BipartiteGraph seed(2, 2, {{0, 0}, {1, 0}, {1, 1}});
  IncrementalBitruss inc(seed);

  // Butterfly-free insert: trivial local repair, no work counted.
  // (u1, l1) already exists; (0, 1) closes the butterfly instead.
  auto lone = inc.InsertEdge(0, 1);
  ASSERT_TRUE(lone.ok());
  EXPECT_FALSE(inc.LastUpdateStats().fallback);
  EXPECT_GT(inc.LastUpdateStats().enumerated_butterflies, 0u);
  EXPECT_EQ(inc.Totals().inserts, 1u);

  ASSERT_TRUE(inc.DeleteEdge(lone.value()).ok());
  EXPECT_EQ(inc.Totals().deletes, 1u);
  EXPECT_EQ(inc.Totals().local_repairs, 2u);

  // Failed updates leave stats untouched.
  const IncrementalTotals before = inc.Totals();
  EXPECT_FALSE(inc.InsertEdge(0, 0).ok());
  EXPECT_FALSE(inc.DeleteEdge(12345).ok());
  EXPECT_EQ(inc.Totals().inserts, before.inserts);
  EXPECT_EQ(inc.Totals().deletes, before.deletes);
}

}  // namespace
}  // namespace bitruss
