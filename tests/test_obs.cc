// Tests for the observability layer (src/obs/): lock-free instruments
// under concurrent update (exact totals from the shared thread pool, the
// configuration the TSan CI job runs), histogram `le` bucket semantics,
// registry snapshot/export golden checks, external-instrument
// registration with absorb-on-unregister, and the TraceRecorder bounded
// ring's overwrite-oldest contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/eventlog.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/thread_pool.h"

namespace bitruss::obs {
namespace {

TEST(Counter, IncAndOrderedIncAccumulate) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Inc();
  counter.Inc(41);
  counter.IncOrdered(8);
  EXPECT_EQ(counter.Value(), 50u);
}

TEST(Gauge, SetAddAndMaxWith) {
  Gauge gauge;
  gauge.Set(10);
  gauge.Add(-3);
  EXPECT_EQ(gauge.Value(), 7);
  gauge.MaxWith(5);  // below current: no change
  EXPECT_EQ(gauge.Value(), 7);
  gauge.MaxWith(22);
  EXPECT_EQ(gauge.Value(), 22);
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({1.0, 2.0, 5.0});
  ASSERT_EQ(h.NumBuckets(), 4u);
  // Prometheus `le` semantics: a value on a boundary lands in that bucket.
  h.Observe(0.5);  // le=1
  h.Observe(1.0);  // le=1 (boundary)
  h.Observe(1.5);  // le=2
  h.Observe(2.0);  // le=2 (boundary)
  h.Observe(5.0);  // le=5 (boundary)
  h.Observe(7.0);  // +Inf
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 2u);
  EXPECT_EQ(h.BucketCount(2), 1u);
  EXPECT_EQ(h.BucketCount(3), 1u);
  EXPECT_EQ(h.TotalCount(), 6u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.5 + 2.0 + 5.0 + 7.0);
}

TEST(Histogram, UnsortedDuplicateBoundsAreNormalized) {
  Histogram h({5.0, 1.0, 5.0, 2.0});
  EXPECT_EQ(h.Bounds(), (std::vector<double>{1.0, 2.0, 5.0}));
}

// The hot-path contract: concurrent relaxed increments lose nothing.
// Four threads (the parallel execution layer's pool) hammer one counter,
// one gauge (MaxWith) and one histogram; totals must be exact.
TEST(Instruments, ConcurrentUpdatesAreExact) {
  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 50'000;
  Counter counter;
  Gauge peak;
  Histogram histogram({10.0, 100.0, 1000.0});

  ThreadPool pool(kThreads);
  pool.ParallelForChunks(
      0, kThreads, kThreads,
      [&](std::uint64_t, std::uint64_t, unsigned chunk, unsigned) {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          counter.Inc();
          peak.MaxWith(static_cast<std::int64_t>(chunk * kPerThread + i));
          histogram.Observe(static_cast<double>(i % 2000));
        }
      });

  EXPECT_EQ(counter.Value(), kThreads * kPerThread);
  EXPECT_EQ(peak.Value(),
            static_cast<std::int64_t>((kThreads - 1) * kPerThread +
                                      kPerThread - 1));
  EXPECT_EQ(histogram.TotalCount(), kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::size_t b = 0; b < histogram.NumBuckets(); ++b) {
    bucket_total += histogram.BucketCount(b);
  }
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
  // Sum is CAS-accumulated: exact for integer-valued observations.
  double expected_sum = 0;
  for (std::uint64_t i = 0; i < kPerThread; ++i) {
    expected_sum += static_cast<double>(i % 2000) * kThreads;
  }
  EXPECT_DOUBLE_EQ(histogram.Sum(), expected_sum);
}

TEST(MetricsRegistry, OwnedInstrumentPointersAreStable) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("bitruss_test_a_total");
  Counter* again = registry.GetCounter("bitruss_test_a_total");
  EXPECT_EQ(a, again);
  a->Inc(3);

  Histogram* h = registry.GetHistogram("bitruss_test_h", {1.0, 2.0});
  // Later bounds are ignored: first creation wins.
  EXPECT_EQ(registry.GetHistogram("bitruss_test_h", {9.0}), h);
  h->Observe(1.5);

  const RegistrySnapshot snapshot = registry.Snapshot();
  const CounterSample* counter = snapshot.FindCounter("bitruss_test_a_total");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->value, 3u);
  const HistogramSample* histogram = snapshot.FindHistogram("bitruss_test_h");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->count, 1u);
  EXPECT_EQ(histogram->bucket_counts, (std::vector<std::uint64_t>{0, 1, 0}));
}

// The scope model: externally registered per-object instruments sum with
// the owned family instrument, and unregistration folds their final value
// into the family so totals stay process-lifetime.
TEST(MetricsRegistry, ExternalInstrumentsSumAndAbsorbOnUnregister) {
  MetricsRegistry registry;
  registry.GetCounter("bitruss_test_served_total")->Inc(5);
  Counter instance_a;
  Counter instance_b;
  instance_a.Inc(10);
  instance_b.Inc(100);
  registry.RegisterCounter("bitruss_test_served_total", &instance_a);
  registry.RegisterCounter("bitruss_test_served_total", &instance_b);
  EXPECT_EQ(registry.Snapshot().FindCounter("bitruss_test_served_total")->value,
            115u);

  registry.UnregisterCounter("bitruss_test_served_total", &instance_a);
  EXPECT_EQ(registry.Snapshot().FindCounter("bitruss_test_served_total")->value,
            115u);  // absorbed, not lost
  // Unregistering an instrument that was never registered must not absorb.
  registry.UnregisterCounter("bitruss_test_served_total", &instance_a);
  EXPECT_EQ(registry.Snapshot().FindCounter("bitruss_test_served_total")->value,
            115u);

  Histogram external({1.0, 2.0});
  external.Observe(0.5);
  external.Observe(9.0);
  registry.RegisterHistogram("bitruss_test_lat", &external);
  EXPECT_EQ(registry.Snapshot().FindHistogram("bitruss_test_lat")->count, 2u);
  registry.UnregisterHistogram("bitruss_test_lat", &external);
  const RegistrySnapshot after = registry.Snapshot();
  const HistogramSample* absorbed = after.FindHistogram("bitruss_test_lat");
  ASSERT_NE(absorbed, nullptr);
  EXPECT_EQ(absorbed->count, 2u);
  EXPECT_EQ(absorbed->bucket_counts, (std::vector<std::uint64_t>{1, 0, 1}));
}

TEST(MetricsRegistry, GaugeCallbacksSumIntoFamilyAndRemove) {
  MetricsRegistry registry;
  registry.GetGauge("bitruss_test_depth")->Set(7);
  const std::uint64_t handle =
      registry.AddGaugeCallback("bitruss_test_depth", [] { return 35; });
  EXPECT_EQ(registry.Snapshot().FindGauge("bitruss_test_depth")->value, 42);
  registry.RemoveGaugeCallback(handle);
  EXPECT_EQ(registry.Snapshot().FindGauge("bitruss_test_depth")->value, 7);
}

TEST(Exporters, PrometheusTextExposition) {
  MetricsRegistry registry;
  registry.GetCounter("bitruss_test_runs_total")->Inc(2);
  registry.GetGauge("bitruss_test_bytes")->Set(1024);
  Histogram* h = registry.GetHistogram("bitruss_test_seconds", {0.5, 1.0});
  h->Observe(0.25);
  h->Observe(0.75);
  h->Observe(2.0);

  const std::string text = ExportPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE bitruss_test_runs_total counter\n"
                      "bitruss_test_runs_total 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE bitruss_test_bytes gauge\n"
                      "bitruss_test_bytes 1024\n"),
            std::string::npos);
  // Buckets are cumulative in the exposition format.
  EXPECT_NE(text.find("bitruss_test_seconds_bucket{le=\"0.5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("bitruss_test_seconds_bucket{le=\"1\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("bitruss_test_seconds_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("bitruss_test_seconds_count 3\n"), std::string::npos);
}

TEST(Exporters, JsonShapeAndEscaping) {
  MetricsRegistry registry;
  registry.GetCounter("bitruss_test_runs_total")->Inc(7);
  Histogram* h = registry.GetHistogram("bitruss_test_seconds", {1.0});
  h->Observe(0.5);

  const std::string json = ExportJson(registry.Snapshot());
  EXPECT_NE(json.find("\"counters\": {\"bitruss_test_runs_total\": 7}"),
            std::string::npos);
  EXPECT_NE(json.find("\"bitruss_test_seconds\": {\"bounds\": [1], "
                      "\"counts\": [1, 0], \"count\": 1, \"sum\": 0.5}"),
            std::string::npos);
}

TEST(TraceRecorder, RecordsSpansWithNotesAndDepth) {
  TraceRecorder trace(16);
  {
    ObsSpan outer(&trace, "outer");
    {
      ObsSpan inner(&trace, "inner");
      inner.Note("edges", 42);
    }
  }
  const std::vector<SpanRecord> events = trace.Events();
  ASSERT_EQ(events.size(), 2u);
  // Spans record at END time: the inner span lands first.
  EXPECT_EQ(events[0].name, "inner");
  EXPECT_EQ(events[0].depth, 1);
  ASSERT_EQ(events[0].notes.size(), 1u);
  EXPECT_EQ(events[0].notes[0].first, "edges");
  EXPECT_DOUBLE_EQ(events[0].notes[0].second, 42.0);
  EXPECT_EQ(events[1].name, "outer");
  EXPECT_EQ(events[1].depth, 0);
  EXPECT_GE(events[1].duration_seconds, events[0].duration_seconds);

  const std::string summary = trace.IndentedSummary();
  EXPECT_NE(summary.find("outer"), std::string::npos);
  EXPECT_NE(summary.find("inner"), std::string::npos);
  EXPECT_NE(summary.find("edges=42"), std::string::npos);
  EXPECT_NE(trace.ToJson().find("\"name\": \"inner\""), std::string::npos);
}

TEST(TraceRecorder, BoundedRingOverwritesOldest) {
  TraceRecorder trace(4);
  for (int i = 0; i < 10; ++i) {
    ObsSpan span(&trace, "span" + std::to_string(i));
  }
  EXPECT_EQ(trace.RecordedSpans(), 10u);
  EXPECT_EQ(trace.DroppedSpans(), 6u);
  const std::vector<SpanRecord> events = trace.Events();
  ASSERT_EQ(events.size(), 4u);
  // The newest four survive, oldest to newest.
  EXPECT_EQ(events[0].name, "span6");
  EXPECT_EQ(events[3].name, "span9");
  EXPECT_NE(trace.ToJson().find("\"dropped\": 6"), std::string::npos);

  trace.Clear();
  EXPECT_EQ(trace.RecordedSpans(), 0u);
  EXPECT_TRUE(trace.Events().empty());
}

TEST(ObsSpan, NullRecorderIsANoOpAndEndIsIdempotent) {
  ObsSpan span(nullptr, "unrecorded");
  span.Note("ignored", 1);
  EXPECT_GE(span.Seconds(), 0.0);
  span.End();
  span.End();

  TraceRecorder trace(4);
  ObsSpan real(&trace, "once");
  real.End();
  real.End();  // second End must not record a duplicate
  EXPECT_EQ(trace.RecordedSpans(), 1u);
}

// Snapshot is taken under the registry lock while writers keep going;
// per-instrument values must still be internally consistent (bucket sums
// equal the count once writers finish).
TEST(MetricsRegistry, SnapshotUnderConcurrentWritesIsWellFormed) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("bitruss_test_hot_total");
  Histogram* histogram =
      registry.GetHistogram("bitruss_test_hot", {64.0, 512.0});

  constexpr unsigned kThreads = 4;
  constexpr std::uint64_t kPerThread = 20'000;
  ThreadPool pool(kThreads);
  pool.ParallelForChunks(
      0, kThreads, kThreads,
      [&](std::uint64_t, std::uint64_t, unsigned chunk, unsigned) {
        for (std::uint64_t i = 0; i < kPerThread; ++i) {
          counter->Inc();
          histogram->Observe(static_cast<double>(i % 1024));
          if (chunk == 0 && i % 4096 == 0) {
            // Concurrent scrapes must see sane (not torn) values.
            const RegistrySnapshot snap = registry.Snapshot();
            const CounterSample* c =
                snap.FindCounter("bitruss_test_hot_total");
            ASSERT_NE(c, nullptr);
            EXPECT_LE(c->value, kThreads * kPerThread);
          }
        }
      });

  const RegistrySnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.FindCounter("bitruss_test_hot_total")->value,
            kThreads * kPerThread);
  const HistogramSample* h = snap.FindHistogram("bitruss_test_hot");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, kThreads * kPerThread);
  std::uint64_t total = 0;
  for (const std::uint64_t b : h->bucket_counts) total += b;
  EXPECT_EQ(total, kThreads * kPerThread);
}

// ---------------------------------------------------------------------------
// Bucket-interpolated quantiles (PR 8).
// ---------------------------------------------------------------------------

TEST(HistogramSample, QuantileInterpolatesWithinBuckets) {
  Histogram h({10.0, 20.0, 40.0});
  for (int i = 0; i < 5; ++i) h.Observe(5.0);   // bucket le=10: 5
  for (int i = 0; i < 3; ++i) h.Observe(15.0);  // bucket le=20: 3
  for (int i = 0; i < 2; ++i) h.Observe(30.0);  // bucket le=40: 2
  const HistogramSample sample = h.Sample();

  // rank 5 exhausts the first bucket exactly: interpolate to its bound.
  EXPECT_DOUBLE_EQ(sample.Quantile(0.5), 10.0);
  // rank 9 is 1 observation into the (20, 40] bucket of 2: midpoint.
  EXPECT_DOUBLE_EQ(sample.Quantile(0.9), 30.0);
  // The first bucket interpolates from 0 (Prometheus convention).
  EXPECT_DOUBLE_EQ(sample.Quantile(0.25), 5.0);
  // q is clamped, not rejected.
  EXPECT_DOUBLE_EQ(sample.Quantile(-1.0), sample.Quantile(0.0));
  EXPECT_DOUBLE_EQ(sample.Quantile(2.0), sample.Quantile(1.0));
}

TEST(HistogramSample, QuantileClampsInfBucketAndHandlesEmpty) {
  Histogram h({10.0, 40.0});
  EXPECT_DOUBLE_EQ(h.Sample().Quantile(0.5), 0.0);  // empty
  h.Observe(1000.0);                                // +Inf bucket only
  // A rank landing in +Inf is clamped to the highest finite bound: the
  // estimate cannot exceed what the buckets can resolve.
  EXPECT_DOUBLE_EQ(h.Sample().Quantile(0.5), 40.0);
  EXPECT_DOUBLE_EQ(h.Sample().Quantile(1.0), 40.0);
}

TEST(HistogramSample, SubtractYieldsTheIntervalDistribution) {
  Histogram h({1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);
  const HistogramSample before = h.Sample();
  h.Observe(1.5);
  h.Observe(10.0);
  const HistogramSample delta = SubtractHistogramSample(h.Sample(), before);
  EXPECT_EQ(delta.count, 2u);
  ASSERT_EQ(delta.bucket_counts.size(), 3u);
  EXPECT_EQ(delta.bucket_counts[0], 0u);
  EXPECT_EQ(delta.bucket_counts[1], 1u);
  EXPECT_EQ(delta.bucket_counts[2], 1u);
  EXPECT_DOUBLE_EQ(delta.sum, 11.5);

  // Mismatched bounds: `after` is returned unchanged (no partial math).
  Histogram other({5.0});
  other.Observe(1.0);
  const HistogramSample unchanged =
      SubtractHistogramSample(other.Sample(), before);
  EXPECT_EQ(unchanged.count, 1u);
  EXPECT_DOUBLE_EQ(unchanged.sum, 1.0);
}

// ---------------------------------------------------------------------------
// Structured event log (PR 8).
// ---------------------------------------------------------------------------

TEST(EventLog, WritesOneJsonObjectPerLine) {
  const std::string path = testing::TempDir() + "bitruss_eventlog_basic.jsonl";
  {
    EventLog log(path);
    log.Emit("publish", {{"version", std::uint64_t{41}},
                         {"publish_seconds", 0.25},
                         {"note", "quote \" and \n newline"}});
    log.Emit("compaction", {{"slots_before", 100}, {"slots_after", 90}});
    log.Flush();
    EXPECT_EQ(log.EmittedEvents(), 2u);
    EXPECT_EQ(log.DroppedEvents(), 0u);
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buffer[512];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(f);
  EXPECT_NE(content.find("\"event\":\"publish\""), std::string::npos);
  EXPECT_NE(content.find("\"version\":41"), std::string::npos);
  EXPECT_NE(content.find("\"publish_seconds\":0.25"), std::string::npos);
  EXPECT_NE(content.find("\\\""), std::string::npos);  // escaped quote
  EXPECT_NE(content.find("\"slots_after\":90"), std::string::npos);
  // Two lines, each a {...} object.
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < content.size()) {
    const std::size_t end = content.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(content[start], '{');
    EXPECT_EQ(content[end - 1], '}');
    start = end + 1;
    ++lines;
  }
  EXPECT_EQ(lines, 2u);
}

// Stop() drains everything accepted before the call, fsyncs the owned
// file, and is idempotent; Emits after Stop() drop (counted locally AND in
// the registry's bitruss_eventlog_dropped_total mirror).
TEST(EventLog, StopFlushesDrainsAndRefusesLateEmits) {
  const std::string path = testing::TempDir() + "bitruss_eventlog_stop.jsonl";
  EventLog log(path);
  constexpr int kEvents = 50;
  for (int i = 0; i < kEvents; ++i) log.Emit("publish", {{"i", i}});
  log.Stop();
  EXPECT_EQ(log.EmittedEvents(), static_cast<std::uint64_t>(kEvents));
  EXPECT_EQ(log.DroppedEvents(), 0u);

  // Every accepted event reached the file by the time Stop() returned.
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::size_t lines = 0;
  char buffer[512];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    for (std::size_t j = 0; j < n; ++j) {
      if (buffer[j] == '\n') ++lines;
    }
  }
  std::fclose(f);
  EXPECT_EQ(lines, static_cast<std::size_t>(kEvents));

  const std::uint64_t registry_dropped_before =
      MetricsRegistry::Default()
          .GetCounter("bitruss_eventlog_dropped_total")
          ->Value();
  log.Emit("publish", {{"late", 1}});
  EXPECT_EQ(log.DroppedEvents(), 1u);
  EXPECT_EQ(MetricsRegistry::Default()
                .GetCounter("bitruss_eventlog_dropped_total")
                ->Value(),
            registry_dropped_before + 1);
  log.Flush();  // no-op on a closed log, must not crash
  log.Stop();   // idempotent
  // The destructor runs Stop() a third time — also a no-op.
}

// The registry mirrors aggregate across instances: emits and drops land in
// bitruss_eventlog_{emitted,dropped}_total as well as the local counters.
TEST(EventLog, RegistryMirrorsCountEmitsAndDrops) {
  auto& registry = MetricsRegistry::Default();
  const std::uint64_t emitted_before =
      registry.GetCounter("bitruss_eventlog_emitted_total")->Value();
  const std::uint64_t dropped_before =
      registry.GetCounter("bitruss_eventlog_dropped_total")->Value();
  {
    EventLog log(nullptr);  // drop-only mode
    log.Emit("publish", {{"i", 1}});
  }
  {
    const std::string path =
        testing::TempDir() + "bitruss_eventlog_mirror.jsonl";
    EventLog log(path);
    log.Emit("publish", {{"i", 2}});
    log.Flush();
  }
  EXPECT_EQ(registry.GetCounter("bitruss_eventlog_emitted_total")->Value(),
            emitted_before + 1);
  EXPECT_EQ(registry.GetCounter("bitruss_eventlog_dropped_total")->Value(),
            dropped_before + 1);
}

TEST(EventLog, NullSinkDropsEverythingAndCounts) {
  EventLog log(nullptr);
  for (int i = 0; i < 5; ++i) log.Emit("publish", {{"i", i}});
  EXPECT_EQ(log.EmittedEvents(), 0u);
  EXPECT_EQ(log.DroppedEvents(), 5u);
}

TEST(EventLog, RateLimitDropsBeyondBurstAndCounts) {
  EventLogOptions options;
  options.max_events_per_second = 1e-6;  // effectively no refill mid-test
  options.burst = 3;
  const std::string path = testing::TempDir() + "bitruss_eventlog_rate.jsonl";
  EventLog log(path, options);
  for (int i = 0; i < 10; ++i) log.Emit("publish", {{"i", i}});
  log.Flush();
  EXPECT_EQ(log.EmittedEvents(), 3u);
  EXPECT_EQ(log.DroppedEvents(), 7u);
}

TEST(EventLog, ConcurrentEmittersNeverTearLines) {
  constexpr unsigned kThreads = 4;
  constexpr int kPerThread = 500;
  const std::string path =
      testing::TempDir() + "bitruss_eventlog_concurrent.jsonl";
  {
    EventLogOptions options;
    options.max_events_per_second = 0;  // unlimited: only the queue bounds
    options.queue_capacity = 16384;
    EventLog log(path, options);
    ThreadPool pool(kThreads);
    pool.ParallelForChunks(
        0, kThreads, kThreads,
        [&](std::uint64_t, std::uint64_t, unsigned chunk, unsigned) {
          for (int i = 0; i < kPerThread; ++i) {
            log.Emit("slow_apply", {{"thread", static_cast<int>(chunk)},
                                    {"i", i},
                                    {"seconds", 0.001}});
          }
        });
    log.Flush();
    EXPECT_EQ(log.EmittedEvents() + log.DroppedEvents(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_EQ(log.DroppedEvents(), 0u);  // capacity exceeds the total
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buffer[4096];
  std::size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    content.append(buffer, n);
  }
  std::fclose(f);
  // Whole-line interleaving: every line is a complete object.
  std::size_t lines = 0;
  std::size_t start = 0;
  while (start < content.size()) {
    const std::size_t end = content.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    EXPECT_EQ(content.compare(start, 6, "{\"ts\":"), 0)
        << content.substr(start, 20);
    EXPECT_EQ(content[end - 1], '}');
    start = end + 1;
    ++lines;
  }
  EXPECT_EQ(lines, static_cast<std::uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace bitruss::obs
