// The parallel execution layer: ThreadPool/ParallelFor semantics, parallel
// counting and BE-Index construction equivalence, round-based parallel
// peeling vs the sequential decomposition, run-to-run determinism, and the
// deadline-timeout contract.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "butterfly/butterfly_counting.h"
#include "cohesion/ab_core.h"
#include "cohesion/tip_decomposition.h"
#include "core/be_index_builder.h"
#include "core/decompose.h"
#include "core/parallel_peel.h"
#include "gen/dataset_suite.h"
#include "graph/vertex_priority.h"
#include "util/thread_pool.h"

namespace bitruss {
namespace {

// Small enough that the 15-dataset x 4-thread-count sweeps stay in unit-test
// budget, large enough that every dataset has nontrivial butterflies.
constexpr double kSuiteScale = 0.04;
constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

// ---------------------------------------------------------------------------
// ThreadPool / ParallelFor semantics
// ---------------------------------------------------------------------------

TEST(ThreadPool, EmptyRangeNeverInvokes) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, 0, [&](std::uint64_t, std::uint64_t, unsigned) {
    ++calls;
  });
  pool.ParallelFor(7, 7, [&](std::uint64_t, std::uint64_t, unsigned) {
    ++calls;
  });
  pool.ParallelForChunks(
      3, 3, 16, [&](std::uint64_t, std::uint64_t, unsigned, unsigned) {
        ++calls;
      });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> visits(1000);
  pool.ParallelFor(0, visits.size(),
                   [&](std::uint64_t begin, std::uint64_t end, unsigned) {
                     for (std::uint64_t i = begin; i < end; ++i) ++visits[i];
                   });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(ThreadPool, RangeSmallerThanPool) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> visits(3);
  std::atomic<unsigned> max_thread{0};
  pool.ParallelForChunks(
      0, visits.size(), 16,
      [&](std::uint64_t begin, std::uint64_t end, unsigned chunk,
          unsigned thread) {
        // Clamped to one chunk per element: chunk index == element index.
        EXPECT_EQ(end, begin + 1);
        EXPECT_EQ(chunk, begin);
        unsigned seen = max_thread.load();
        while (thread > seen && !max_thread.compare_exchange_weak(seen, thread)) {
        }
        for (std::uint64_t i = begin; i < end; ++i) ++visits[i];
      });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
  EXPECT_LT(max_thread.load(), pool.NumThreads());
}

TEST(ThreadPool, ChunkPartitionIsDeterministic) {
  ThreadPool pool(3);
  const auto collect = [&] {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> bounds(7);
    pool.ParallelForChunks(10, 94, 7,
                           [&](std::uint64_t begin, std::uint64_t end,
                               unsigned chunk, unsigned) {
                             bounds[chunk] = {begin, end};
                           });
    return bounds;
  };
  const auto a = collect();
  const auto b = collect();
  EXPECT_EQ(a, b);
  // Chunks tile the range contiguously.
  std::uint64_t expect_begin = 10;
  for (const auto& [begin, end] : a) {
    EXPECT_EQ(begin, expect_begin);
    EXPECT_LE(begin, end);
    expect_begin = end;
  }
  EXPECT_EQ(expect_begin, 94u);
}

TEST(ThreadPool, PoolIsReusableAcrossRegions) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::uint64_t> sum{0};
    pool.ParallelFor(0, 100, [&](std::uint64_t begin, std::uint64_t end,
                                 unsigned) {
      std::uint64_t local = 0;
      for (std::uint64_t i = begin; i < end; ++i) local += i;
      sum += local;
    });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ResolveNumThreads, OptionBeatsEnvironmentBeatsDefault) {
  const char* saved = std::getenv("BITRUSS_NUM_THREADS");
  const std::string saved_copy = saved ? saved : "";

  unsetenv("BITRUSS_NUM_THREADS");
  EXPECT_EQ(ResolveNumThreads({}), 1u);
  EXPECT_EQ(ResolveNumThreads({6}), 6u);

  setenv("BITRUSS_NUM_THREADS", "3", 1);
  EXPECT_EQ(ResolveNumThreads({}), 3u);
  EXPECT_EQ(ResolveNumThreads({6}), 6u) << "explicit option must win";

  setenv("BITRUSS_NUM_THREADS", "garbage", 1);
  EXPECT_EQ(ResolveNumThreads({}), 1u);
  setenv("BITRUSS_NUM_THREADS", "100000", 1);
  EXPECT_EQ(ResolveNumThreads({}), 256u) << "clamped";

  if (saved) {
    setenv("BITRUSS_NUM_THREADS", saved_copy.c_str(), 1);
  } else {
    unsetenv("BITRUSS_NUM_THREADS");
  }
}

// ---------------------------------------------------------------------------
// Parallel counting and index construction
// ---------------------------------------------------------------------------

TEST(ParallelCounting, SupportsAndTotalsMatchSequentialAtEveryThreadCount) {
  for (const std::string& name : DatasetNames()) {
    const BipartiteGraph g = MakeDataset(name, kSuiteScale);
    const VertexPriority priority = VertexPriority::Compute(g);
    const PriorityAdjacency adj(g, priority);
    const std::vector<SupportT> expect_sup = CountEdgeSupports(g, adj);
    const std::uint64_t expect_total = CountTotalButterflies(g, adj);
    for (const unsigned threads : kThreadCounts) {
      ThreadPool pool(threads);
      EXPECT_EQ(CountEdgeSupports(g, adj, &pool), expect_sup)
          << name << " x" << threads;
      EXPECT_EQ(CountTotalButterflies(g, adj, &pool), expect_total)
          << name << " x" << threads;
    }
  }
}

TEST(ParallelBEIndex, BuildIsByteIdenticalToSequential) {
  for (const char* name : {"Github", "Amazon", "D-style"}) {
    const BipartiteGraph g = MakeDataset(name, kSuiteScale);
    const VertexPriority priority = VertexPriority::Compute(g);
    const PriorityAdjacency adj(g, priority);
    const BEIndex expect = BEIndexBuilder::Build(g, adj);
    for (const unsigned threads : {2u, 4u, 8u}) {
      ThreadPool pool(threads);
      const BEIndex got = BEIndexBuilder::Build(g, adj, &pool);
      EXPECT_EQ(got.wedge_e1, expect.wedge_e1) << name << " x" << threads;
      EXPECT_EQ(got.wedge_e2, expect.wedge_e2) << name << " x" << threads;
      EXPECT_EQ(got.wedge_bloom, expect.wedge_bloom) << name;
      EXPECT_EQ(got.bloom_offsets, expect.bloom_offsets) << name;
      EXPECT_EQ(got.bloom_slots, expect.bloom_slots) << name;
      EXPECT_EQ(got.bloom_live, expect.bloom_live) << name;
      EXPECT_EQ(got.bloom_base, expect.bloom_base) << name;
      EXPECT_EQ(got.edge_offsets, expect.edge_offsets) << name;
      EXPECT_EQ(got.edge_wedges, expect.edge_wedges) << name;
      EXPECT_EQ(got.ComputeSupports(&pool), expect.ComputeSupports()) << name;
    }
  }
}

TEST(ParallelDecompose, CountingAndIndexFedPipelinesMatchSequential) {
  // Parallel counting + parallel BE build + (for kPC) parallel cascade
  // recounts behind the ordinary Decompose()/DecomposeWithCorePruning()
  // entry points.
  for (const char* name : {"Twitter", "D-style"}) {
    const BipartiteGraph g = MakeDataset(name, kSuiteScale);
    for (const Algorithm algorithm :
         {Algorithm::kBUPlusPlus, Algorithm::kPC}) {
      DecomposeOptions sequential;
      sequential.algorithm = algorithm;
      const BitrussResult expect = Decompose(g, sequential);
      DecomposeOptions parallel = sequential;
      parallel.parallel.num_threads = 4;
      const BitrussResult got = Decompose(g, parallel);
      EXPECT_EQ(got.phi, expect.phi) << name;
      EXPECT_EQ(got.original_support, expect.original_support) << name;
      EXPECT_EQ(got.total_butterflies, expect.total_butterflies) << name;

      const BitrussResult pruned = DecomposeWithCorePruning(g, parallel);
      EXPECT_EQ(pruned.phi, expect.phi) << name;
    }
  }
}

TEST(ParallelTip, InitialCountsMatchSequential) {
  for (const char* name : {"Github", "D-style"}) {
    const BipartiteGraph g = MakeDataset(name, kSuiteScale);
    for (const bool peel_upper : {true, false}) {
      const TipResult expect = TipDecomposition(g, peel_upper);
      for (const unsigned threads : {2u, 8u}) {
        const TipResult got = TipDecomposition(g, peel_upper, {threads});
        EXPECT_EQ(got.theta, expect.theta) << name << " x" << threads;
        EXPECT_EQ(got.max_tip, expect.max_tip) << name;
        EXPECT_EQ(got.count_updates, expect.count_updates) << name;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Round-based parallel peeling
// ---------------------------------------------------------------------------

TEST(ParallelPeel, PhiMatchesSequentialAcrossSuiteAndThreadCounts) {
  for (const std::string& name : DatasetNames()) {
    const BipartiteGraph g = MakeDataset(name, kSuiteScale);
    const BitrussResult expect = Decompose(g);
    for (const unsigned threads : kThreadCounts) {
      ParallelPeelOptions options;
      options.num_threads = threads;
      const BitrussResult got = DecomposeParallelPeel(g, options);
      ASSERT_FALSE(got.timed_out) << name << " x" << threads;
      EXPECT_EQ(got.phi, expect.phi) << name << " x" << threads;
      EXPECT_EQ(got.original_support, expect.original_support) << name;
      EXPECT_EQ(got.total_butterflies, expect.total_butterflies) << name;
    }
  }
}

TEST(ParallelPeel, EightThreadRunsAreBitIdentical) {
  for (const char* name : {"Twitter", "D-style", "Amazon"}) {
    const BipartiteGraph g = MakeDataset(name, kSuiteScale);
    ParallelPeelOptions options;
    options.num_threads = 8;
    const BitrussResult a = DecomposeParallelPeel(g, options);
    const BitrussResult b = DecomposeParallelPeel(g, options);
    EXPECT_EQ(a.phi, b.phi) << name;
    EXPECT_EQ(a.original_support, b.original_support) << name;
    EXPECT_EQ(a.total_butterflies, b.total_butterflies) << name;
    EXPECT_EQ(a.counters.support_updates, b.counters.support_updates) << name;
  }
}

TEST(ParallelPeel, EmptyAndTinyGraphs) {
  const BipartiteGraph empty(2, 2, {});
  ParallelPeelOptions options;
  options.num_threads = 4;
  const BitrussResult r = DecomposeParallelPeel(empty, options);
  EXPECT_TRUE(r.phi.empty());
  EXPECT_EQ(r.total_butterflies, 0u);

  // One butterfly: all four edges have phi 1.
  const BipartiteGraph square(2, 2, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  const BitrussResult s = DecomposeParallelPeel(square, options);
  EXPECT_EQ(s.phi, (std::vector<SupportT>{1, 1, 1, 1}));
  EXPECT_EQ(s.total_butterflies, 1u);
}

TEST(ParallelPeel, ExpiredDeadlineReturnsPartialWithTimedOutSet) {
  const BipartiteGraph g = MakeDataset("Twitter", kSuiteScale);
  for (const unsigned threads : {1u, 4u}) {
    ParallelPeelOptions options;
    options.num_threads = threads;
    options.deadline = Deadline::After(0);
    const BitrussResult got = DecomposeParallelPeel(g, options);
    EXPECT_TRUE(got.timed_out) << "x" << threads;
    EXPECT_EQ(got.phi.size(), static_cast<std::size_t>(g.NumEdges()));
  }
}

TEST(ParallelPeel, PartialPhiOfTimedOutRunIsAPrefixOfTheTruth) {
  // Whatever a timed-out run managed to assign must be the true bitruss
  // number — the contract that makes partial results usable.
  const BipartiteGraph g = MakeDataset("D-label", kSuiteScale);
  const BitrussResult expect = Decompose(g);
  // A deadline long enough to finish counting but tight for peeling; if
  // the run happens to complete, the check degenerates to full equality.
  ParallelPeelOptions options;
  options.num_threads = 2;
  options.deadline = Deadline::After(0.01);
  const BitrussResult got = DecomposeParallelPeel(g, options);
  if (got.timed_out && got.original_support.empty()) {
    return;  // expired during counting: nothing assigned, nothing to check
  }
  std::uint64_t assigned = 0;
  for (EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (got.phi[e] != 0) {
      EXPECT_EQ(got.phi[e], expect.phi[e]) << "edge " << e;
      ++assigned;
    }
  }
  if (!got.timed_out) {
    EXPECT_EQ(got.phi, expect.phi);
  } else {
    // Not all edges were assigned (phi==0 edges may be unprocessed).
    EXPECT_LE(assigned, static_cast<std::uint64_t>(g.NumEdges()));
  }
}

TEST(ParallelCounting, ExpiredDeadlineAbortsWithoutPartialCounts) {
  const BipartiteGraph g = MakeDataset("Github", kSuiteScale);
  const VertexPriority priority = VertexPriority::Compute(g);
  const PriorityAdjacency adj(g, priority);
  for (const unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    bool expired = false;
    const std::vector<SupportT> sup =
        CountEdgeSupports(g, adj, &pool, Deadline::After(0), &expired);
    EXPECT_TRUE(expired) << "x" << threads;
    EXPECT_TRUE(sup.empty()) << "x" << threads;
  }
}

}  // namespace
}  // namespace bitruss
