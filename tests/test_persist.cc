// Tests for the durability subsystem (persist/wal.h, persist/snapshot_io.h,
// util/fault_injection.h) and its serving-layer integration: WAL round
// trips and rotation, torn-tail vs mid-log corruption semantics, snapshot
// atomicity and fallback, the deterministic fault-injection harness, and
// the crash matrix — a forked child is SIGKILLed at every fault point and
// the parent's Recover() must produce phi bit-identical to a from-scratch
// replay + Decompose() oracle over the durable prefix.

#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/decompose.h"
#include "dynamic/dynamic_graph.h"
#include "dynamic/incremental_bitruss.h"
#include "gen/random_bipartite.h"
#include "graph/bipartite_graph.h"
#include "obs/metrics.h"
#include "persist/crc32c.h"
#include "persist/snapshot_io.h"
#include "persist/wal.h"
#include "serve/bitruss_service.h"
#include "util/fault_injection.h"
#include "util/random.h"
#include "util/status.h"

// The crash matrix forks children that die by SIGKILL at fault points;
// TSan's default aborts any fork in a threaded process, so opt into the
// fork-then-die pattern (the children never run user threads past exec).
#if defined(__has_feature)
#if __has_feature(thread_sanitizer)
extern "C" const char* __tsan_default_options() { return "die_after_fork=0"; }
#endif
#endif

namespace bitruss {
namespace {

using persist::Crc32c;
using persist::FsyncPolicy;
using persist::ListStampedFiles;
using persist::LoadNewestSnapshot;
using persist::RemoveOldSnapshots;
using persist::ReplayWal;
using persist::StampedPath;
using persist::StateSnapshot;
using persist::WalOptions;
using persist::WalRecord;
using persist::WalReplayStats;
using persist::WalWriter;
using persist::WriteSnapshotFile;
using persist::kWalRecordBytes;
using persist::kWalSegmentHeaderBytes;

// ---------------------------------------------------------------------------
// Filesystem helpers
// ---------------------------------------------------------------------------

std::string MakeTempDir() {
  char tmpl[] = "/tmp/bitruss_persist_XXXXXX";
  const char* dir = ::mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr) << std::strerror(errno);
  return dir == nullptr ? std::string() : std::string(dir);
}

void RemoveTree(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d != nullptr) {
    while (dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

// Scoped temp dir: every test path (including ASSERT early exits) cleans up.
struct TempDir {
  TempDir() : path(MakeTempDir()) {}
  ~TempDir() { RemoveTree(path); }
  std::string path;
};

std::int64_t FileSize(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 ? static_cast<std::int64_t>(st.st_size)
                                        : -1;
}

void FlipByte(const std::string& path, std::int64_t offset) {
  const int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0) << path << ": " << std::strerror(errno);
  unsigned char byte = 0;
  ASSERT_EQ(::pread(fd, &byte, 1, offset), 1);
  byte ^= 0xFF;
  ASSERT_EQ(::pwrite(fd, &byte, 1, offset), 1);
  ::close(fd);
}

void TruncateFile(const std::string& path, std::int64_t size) {
  ASSERT_EQ(::truncate(path.c_str(), size), 0)
      << path << ": " << std::strerror(errno);
}

// ---------------------------------------------------------------------------
// Oracle helpers (same idiom as test_serve.cc)
// ---------------------------------------------------------------------------

// Deterministic mixed insert/delete stream, valid under FIFO application.
std::vector<EdgeUpdate> MakeStream(const BipartiteGraph& seed, int updates,
                                   std::uint64_t rng_seed) {
  DynamicBipartiteGraph sim(seed);
  Rng rng(rng_seed);
  std::vector<std::pair<VertexId, VertexId>> live;  // side-local pairs
  for (EdgeId slot = 0; slot < sim.NumSlots(); ++slot) {
    if (sim.IsLive(slot)) {
      live.emplace_back(sim.EdgeUpper(slot),
                        sim.EdgeLower(slot) - sim.NumUpper());
    }
  }
  std::vector<EdgeUpdate> ops;
  ops.reserve(updates);
  while (static_cast<int>(ops.size()) < updates) {
    if (!live.empty() && rng.NextBool(0.5)) {
      const std::size_t pick = rng.Below(live.size());
      const auto [u, l] = live[pick];
      EXPECT_TRUE(sim.DeleteEdge(sim.FindEdge(u, sim.NumUpper() + l)).ok());
      ops.push_back({EdgeUpdate::Kind::kDelete, u, l});
      live[pick] = live.back();
      live.pop_back();
    } else {
      const auto u = static_cast<VertexId>(rng.Below(sim.NumUpper()));
      const auto l = static_cast<VertexId>(rng.Below(sim.NumLower()));
      if (!sim.InsertEdge(u, l).ok()) continue;  // already present; reroll
      ops.push_back({EdgeUpdate::Kind::kInsert, u, l});
      live.emplace_back(u, l);
    }
  }
  return ops;
}

// Replays the first `count` ops onto a fresh dynamic graph (no compaction).
DynamicBipartiteGraph ReplayPrefix(const BipartiteGraph& seed,
                                   const std::vector<EdgeUpdate>& ops,
                                   std::uint64_t count) {
  DynamicBipartiteGraph replay(seed);
  for (std::uint64_t i = 0; i < count; ++i) {
    const EdgeUpdate& op = ops[i];
    if (op.kind == EdgeUpdate::Kind::kInsert) {
      EXPECT_TRUE(replay.InsertEdge(op.upper_local, op.lower_local).ok());
    } else {
      const EdgeId slot =
          replay.FindEdge(op.upper_local, replay.NumUpper() + op.lower_local);
      EXPECT_NE(slot, kInvalidEdge);
      EXPECT_TRUE(replay.DeleteEdge(slot).ok());
    }
  }
  return replay;
}

// The recovered service must hold exactly the state after the first
// RecoveredBase() submitted ops — slot for slot, since neither the service
// run nor the oracle replay compacts (free-slot stack order is durable).
void ExpectRecoveredMatchesOracle(const BitrussService& service,
                                  const BipartiteGraph& seed,
                                  const std::vector<EdgeUpdate>& ops) {
  const std::uint64_t base = service.RecoveredBase();
  ASSERT_LE(base, ops.size());
  const auto snap = service.Snapshot();
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->applied_updates, base);

  DynamicBipartiteGraph replay = ReplayPrefix(seed, ops, base);
  ASSERT_EQ(snap->num_slots, replay.NumSlots());
  ASSERT_EQ(snap->num_edges, replay.NumEdges());
  ASSERT_EQ(snap->num_butterflies, replay.NumButterflies());

  const GraphSnapshot compacted = replay.Snapshot();
  const BitrussResult oracle = Decompose(compacted.graph);
  std::vector<SupportT> phi_by_slot(replay.NumSlots(), 0);
  std::vector<SupportT> support_by_slot(replay.NumSlots(), 0);
  for (EdgeId e = 0; e < compacted.graph.NumEdges(); ++e) {
    phi_by_slot[compacted.slot_of_edge[e]] = oracle.phi[e];
    support_by_slot[compacted.slot_of_edge[e]] = compacted.supports[e];
  }
  for (EdgeId slot = 0; slot < replay.NumSlots(); ++slot) {
    ASSERT_EQ(snap->IsLive(slot), replay.IsLive(slot)) << "slot " << slot;
    ASSERT_EQ(snap->Phi(slot), phi_by_slot[slot]) << "slot " << slot;
    ASSERT_EQ(snap->SupportOf(slot), support_by_slot[slot]) << "slot " << slot;
  }
}

// Slot-independent variant for runs with compaction: the phi multiset
// (histogram) and aggregates must match even though slot ids may not.
void ExpectRecoveredHistogramMatchesOracle(const BitrussService& service,
                                           const BipartiteGraph& seed,
                                           const std::vector<EdgeUpdate>& ops) {
  const std::uint64_t base = service.RecoveredBase();
  ASSERT_LE(base, ops.size());
  const auto snap = service.Snapshot();
  ASSERT_NE(snap, nullptr);
  ASSERT_EQ(snap->applied_updates, base);

  DynamicBipartiteGraph replay = ReplayPrefix(seed, ops, base);
  ASSERT_EQ(snap->num_edges, replay.NumEdges());
  ASSERT_EQ(snap->num_butterflies, replay.NumButterflies());

  const GraphSnapshot compacted = replay.Snapshot();
  const BitrussResult oracle = Decompose(compacted.graph);
  std::map<SupportT, std::uint64_t> expected;
  for (EdgeId e = 0; e < compacted.graph.NumEdges(); ++e) {
    ++expected[oracle.phi[e]];
  }
  const auto histogram = snap->PhiHistogram();
  ASSERT_EQ(histogram.size(), expected.size());
  for (const auto& [phi, count] : histogram) {
    EXPECT_EQ(count, expected[phi]) << "phi " << phi;
  }
}

// ---------------------------------------------------------------------------
// A: CRC32C
// ---------------------------------------------------------------------------

TEST(Crc32c, MatchesKnownVectors) {
  // RFC 3720 check value for "123456789".
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  // iSCSI test vector: 32 bytes of zeros.
  const unsigned char zeros[32] = {};
  EXPECT_EQ(Crc32c(zeros, sizeof(zeros)), 0x8A9136AAu);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32c, SeedChainsIncrementalComputes) {
  const std::uint32_t whole = Crc32c("123456789", 9);
  const std::uint32_t chained = Crc32c("56789", 5, Crc32c("1234", 4));
  EXPECT_EQ(chained, whole);
}

// ---------------------------------------------------------------------------
// B: fault-injection harness semantics (no fork needed — direct Hit calls)
// ---------------------------------------------------------------------------

// Disarms everything on scope exit so a failing test cannot poison later
// ones (fault state is process-global).
struct FaultGuard {
  ~FaultGuard() { fault::ResetAll(); }
};

TEST(FaultInjection, SkipFirstFiresOnExactHit) {
  FaultGuard guard;
  fault::Arm("test.point", {fault::FaultAction::kError, /*skip_first=*/2});
  EXPECT_EQ(fault::Hit("test.point"), fault::FaultAction::kNone);
  EXPECT_EQ(fault::Hit("test.point"), fault::FaultAction::kNone);
  EXPECT_EQ(fault::Hit("test.point"), fault::FaultAction::kError);
  // Not one_shot: keeps firing.
  EXPECT_EQ(fault::Hit("test.point"), fault::FaultAction::kError);
  EXPECT_EQ(fault::HitCount("test.point"), 4u);
  // Unarmed points never fire and are not counted.
  EXPECT_EQ(fault::Hit("test.other"), fault::FaultAction::kNone);
  EXPECT_EQ(fault::HitCount("test.other"), 0u);
}

TEST(FaultInjection, OneShotFiresOnceButKeepsCounting) {
  FaultGuard guard;
  fault::ArmSpec spec;
  spec.action = fault::FaultAction::kError;
  spec.skip_first = 1;
  spec.one_shot = true;
  fault::Arm("test.point", spec);
  EXPECT_EQ(fault::Hit("test.point"), fault::FaultAction::kNone);
  EXPECT_EQ(fault::Hit("test.point"), fault::FaultAction::kError);
  EXPECT_EQ(fault::Hit("test.point"), fault::FaultAction::kNone);
  EXPECT_EQ(fault::HitCount("test.point"), 3u);
}

TEST(FaultInjection, TornKeepBytesIsDeterministicStrictPrefix) {
  FaultGuard guard;
  fault::ArmSpec spec;
  spec.action = fault::FaultAction::kTornWrite;
  spec.seed = 42;
  fault::Arm("test.torn", spec);
  EXPECT_EQ(fault::Hit("test.torn"), fault::FaultAction::kTornWrite);
  const std::size_t keep = fault::TornKeepBytes("test.torn", 100);
  EXPECT_LT(keep, 100u);  // strict prefix
  // Stable between hits: same (seed, hit index) => same answer.
  EXPECT_EQ(fault::TornKeepBytes("test.torn", 100), keep);
  // Re-arming with the same seed resets the hit index => same derivation.
  fault::Arm("test.torn", spec);
  EXPECT_EQ(fault::Hit("test.torn"), fault::FaultAction::kTornWrite);
  EXPECT_EQ(fault::TornKeepBytes("test.torn", 100), keep);
}

TEST(FaultInjection, InjectedStatusNamesEnospc) {
  FaultGuard guard;
  fault::Arm("test.full", {fault::FaultAction::kEnospc});
  const Status st = fault::InjectedStatus("test.full");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("ENOSPC"), std::string::npos) << st.message();
  EXPECT_NE(st.message().find("test.full"), std::string::npos) << st.message();
  // Unarmed or reset points inject nothing.
  EXPECT_TRUE(fault::InjectedStatus("test.unarmed").ok());
  fault::ResetAll();
  EXPECT_TRUE(fault::InjectedStatus("test.full").ok());
  EXPECT_EQ(fault::HitCount("test.full"), 0u);
}

// ---------------------------------------------------------------------------
// C: WAL append/replay round trip
// ---------------------------------------------------------------------------

WalRecord TestRecord(std::uint64_t seq) {
  WalRecord record;
  record.seq = seq;
  record.kind = static_cast<std::uint8_t>(seq % 2);
  record.upper_local = static_cast<std::uint32_t>(seq * 3 + 1);
  record.lower_local = static_cast<std::uint32_t>(seq * 7 + 2);
  return record;
}

TEST(Wal, AppendThenReplayRoundTrips) {
  TempDir tmp;
  WalOptions options;
  options.fsync_policy = FsyncPolicy::kEveryRecord;
  auto writer_or = WalWriter::Open(tmp.path, 1, options);
  ASSERT_TRUE(writer_or.ok()) << writer_or.status().ToString();
  auto writer = std::move(writer_or).value();

  for (std::uint64_t seq = 1; seq <= 10; ++seq) {
    ASSERT_TRUE(writer->Append(TestRecord(seq)).ok()) << seq;
  }
  EXPECT_EQ(writer->NextSeq(), 11u);
  EXPECT_EQ(writer->BytesAppended(), 10 * kWalRecordBytes);
  EXPECT_GE(writer->Fsyncs(), 10u);  // every-record policy

  // An out-of-order append is rejected WITHOUT latching the failed state.
  EXPECT_EQ(writer->Append(TestRecord(13)).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(writer->Append(TestRecord(11)).ok());
  writer.reset();

  std::vector<WalRecord> seen;
  WalReplayStats stats;
  ASSERT_TRUE(ReplayWal(tmp.path, 0,
                        [&](const WalRecord& r) {
                          seen.push_back(r);
                          return OkStatus();
                        },
                        &stats)
                  .ok());
  ASSERT_EQ(seen.size(), 11u);
  for (std::uint64_t i = 0; i < seen.size(); ++i) {
    const WalRecord expected = TestRecord(i + 1);
    EXPECT_EQ(seen[i].seq, expected.seq);
    EXPECT_EQ(seen[i].kind, expected.kind);
    EXPECT_EQ(seen[i].upper_local, expected.upper_local);
    EXPECT_EQ(seen[i].lower_local, expected.lower_local);
  }
  EXPECT_EQ(stats.records_replayed, 11u);
  EXPECT_EQ(stats.last_seq, 11u);
  EXPECT_EQ(stats.torn_records_discarded, 0u);

  // after_seq skips the validated prefix but still parses it (last_seq).
  std::uint64_t tail = 0;
  WalReplayStats tail_stats;
  ASSERT_TRUE(ReplayWal(tmp.path, 7,
                        [&](const WalRecord&) {
                          ++tail;
                          return OkStatus();
                        },
                        &tail_stats)
                  .ok());
  EXPECT_EQ(tail, 4u);
  EXPECT_EQ(tail_stats.records_replayed, 4u);
  EXPECT_EQ(tail_stats.last_seq, 11u);

  // A non-OK callback aborts the replay with that status.
  const Status aborted = ReplayWal(tmp.path, 0, [&](const WalRecord& r) {
    return r.seq == 3 ? InternalError("stop here") : OkStatus();
  });
  EXPECT_EQ(aborted.code(), StatusCode::kInternal);

  // An empty directory replays nothing.
  TempDir empty;
  WalReplayStats none;
  ASSERT_TRUE(ReplayWal(empty.path, 0,
                        [](const WalRecord&) { return OkStatus(); }, &none)
                  .ok());
  EXPECT_EQ(none.records_replayed, 0u);
}

TEST(Wal, OpenRefusesDirWithSegments) {
  TempDir tmp;
  {
    auto writer_or = WalWriter::Open(tmp.path, 1, {});
    ASSERT_TRUE(writer_or.ok());
    ASSERT_TRUE(writer_or.value()->Append(TestRecord(1)).ok());
  }
  auto reopened = WalWriter::Open(tmp.path, 2, {});
  EXPECT_EQ(reopened.status().code(), StatusCode::kFailedPrecondition);
}

// ---------------------------------------------------------------------------
// D: segment rotation + truncation
// ---------------------------------------------------------------------------

TEST(Wal, RotatesSegmentsAndTruncatesBehindSnapshots) {
  TempDir tmp;
  WalOptions options;
  options.fsync_policy = FsyncPolicy::kEveryRecord;
  // header 20 + 4 records * 25 = 120; a 5th record would hit 145 > 128, so
  // each segment holds exactly 4 records.
  options.segment_bytes = 128;
  auto writer_or = WalWriter::Open(tmp.path, 1, options);
  ASSERT_TRUE(writer_or.ok());
  auto writer = std::move(writer_or).value();
  for (std::uint64_t seq = 1; seq <= 10; ++seq) {
    ASSERT_TRUE(writer->Append(TestRecord(seq)).ok()) << seq;
  }
  EXPECT_EQ(ListStampedFiles(tmp.path, "wal-", ".seg"),
            (std::vector<std::uint64_t>{1, 5, 9}));

  // Truncation removes only whole segments fully covered by the snapshot.
  auto removed = writer->TruncateThrough(4);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 1);
  EXPECT_EQ(ListStampedFiles(tmp.path, "wal-", ".seg"),
            (std::vector<std::uint64_t>{5, 9}));
  removed = writer->TruncateThrough(8);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 1);
  // The active segment is never deleted, no matter the sequence.
  removed = writer->TruncateThrough(100);
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ(removed.value(), 0);
  EXPECT_EQ(ListStampedFiles(tmp.path, "wal-", ".seg"),
            (std::vector<std::uint64_t>{9}));
  writer.reset();

  // Replay from the covered point works; replay from before it must refuse
  // (records 5..8 are gone — that is data loss, not silent re-serve).
  std::uint64_t replayed = 0;
  ASSERT_TRUE(ReplayWal(tmp.path, 8, [&](const WalRecord&) {
                ++replayed;
                return OkStatus();
              }).ok());
  EXPECT_EQ(replayed, 2u);
  const Status gap = ReplayWal(
      tmp.path, 4, [](const WalRecord&) { return OkStatus(); });
  EXPECT_EQ(gap.code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// E: torn tails of the final segment — discarded (and repaired), never fatal
// ---------------------------------------------------------------------------

// Builds one segment of `records` sequential records and returns its path.
std::string BuildSingleSegment(const std::string& dir, int records) {
  WalOptions options;
  options.fsync_policy = FsyncPolicy::kEveryRecord;
  auto writer_or = WalWriter::Open(dir, 1, options);
  EXPECT_TRUE(writer_or.ok());
  auto writer = std::move(writer_or).value();
  for (int seq = 1; seq <= records; ++seq) {
    EXPECT_TRUE(writer->Append(TestRecord(seq)).ok());
  }
  return StampedPath(dir, "wal-", 1, ".seg");
}

struct TornTailCase {
  const char* name;
  // Mutation: truncate to `truncate_to` when >= 0, else flip `flip_offset`.
  std::int64_t truncate_to;
  std::int64_t flip_offset;
  std::uint64_t want_replayed;
  std::int64_t want_repaired_size;  // file size after repair (-1: unlinked)
};

TEST(Wal, TornFinalTailIsDiscardedAndRepaired) {
  const std::int64_t header = kWalSegmentHeaderBytes;  // 20
  const std::int64_t record = kWalRecordBytes;         // 25
  const TornTailCase cases[] = {
      // Mid-record cut in the last record: 4 survive, tail truncated away.
      {"cut_mid_last_record", header + 4 * record + 7, -1, 4,
       header + 4 * record},
      // Cut inside the very first record: nothing survives but the file
      // stays (its header is intact).
      {"cut_mid_first_record", header + 3, -1, 0, header},
      // Bit flip in the final record's payload: checksum fails, torn tail.
      {"flip_last_record_payload", -1, header + 4 * record + 10, 4,
       header + 4 * record},
      // Cut inside the segment HEADER of the only segment: the whole file
      // is unparsable and gets unlinked by repair.
      {"cut_mid_header", header - 10, -1, 0, -1},
  };
  for (const TornTailCase& c : cases) {
    SCOPED_TRACE(c.name);
    TempDir tmp;
    const std::string segment = BuildSingleSegment(tmp.path, 5);
    ASSERT_EQ(FileSize(segment), header + 5 * record);
    if (c.truncate_to >= 0) {
      TruncateFile(segment, c.truncate_to);
    } else {
      FlipByte(segment, c.flip_offset);
    }

    std::uint64_t replayed = 0;
    WalReplayStats stats;
    ASSERT_TRUE(ReplayWal(tmp.path, 0,
                          [&](const WalRecord&) {
                            ++replayed;
                            return OkStatus();
                          },
                          &stats, /*repair_torn_tail=*/true)
                    .ok());
    EXPECT_EQ(replayed, c.want_replayed);
    EXPECT_EQ(stats.records_replayed, c.want_replayed);
    EXPECT_GE(stats.torn_records_discarded, 1u);
    if (c.want_repaired_size < 0) {
      EXPECT_TRUE(ListStampedFiles(tmp.path, "wal-", ".seg").empty());
    } else {
      EXPECT_EQ(FileSize(segment), c.want_repaired_size);
      // After repair the log replays clean — no torn tail remains.
      WalReplayStats again;
      ASSERT_TRUE(ReplayWal(tmp.path, 0,
                            [](const WalRecord&) { return OkStatus(); },
                            &again)
                      .ok());
      EXPECT_EQ(again.records_replayed, c.want_replayed);
      EXPECT_EQ(again.torn_records_discarded, 0u);
    }
  }
}

// ---------------------------------------------------------------------------
// F: the same damage in the MIDDLE of the log is kDataLoss, never repaired
// ---------------------------------------------------------------------------

TEST(Wal, MidLogCorruptionIsDataLoss) {
  const auto build_three_segments = [](const std::string& dir) {
    WalOptions options;
    options.fsync_policy = FsyncPolicy::kEveryRecord;
    options.segment_bytes = 128;  // 4 records/segment
    auto writer_or = WalWriter::Open(dir, 1, options);
    ASSERT_TRUE(writer_or.ok());
    auto writer = std::move(writer_or).value();
    for (std::uint64_t seq = 1; seq <= 10; ++seq) {
      ASSERT_TRUE(writer->Append(TestRecord(seq)).ok());
    }
  };
  const auto replay = [](const std::string& dir) {
    return ReplayWal(dir, 0, [](const WalRecord&) { return OkStatus(); },
                     nullptr, /*repair_torn_tail=*/true);
  };

  {
    TempDir tmp;
    build_three_segments(tmp.path);
    // Corrupt a record in the FIRST (non-final) segment.
    FlipByte(StampedPath(tmp.path, "wal-", 1, ".seg"),
             kWalSegmentHeaderBytes + 10);
    EXPECT_EQ(replay(tmp.path).code(), StatusCode::kDataLoss);
  }
  {
    TempDir tmp;
    build_three_segments(tmp.path);
    // Remove the middle segment entirely: sequence gap 4 -> 9.
    ASSERT_EQ(::unlink(StampedPath(tmp.path, "wal-", 5, ".seg").c_str()), 0);
    EXPECT_EQ(replay(tmp.path).code(), StatusCode::kDataLoss);
  }
}

// ---------------------------------------------------------------------------
// G: snapshot file I/O
// ---------------------------------------------------------------------------

StateSnapshot TestState(std::uint64_t applied) {
  StateSnapshot snapshot;
  snapshot.applied = applied;
  snapshot.num_upper = 3;
  snapshot.num_lower = 4;
  snapshot.num_butterflies = 17;
  snapshot.upper = {0, 1, 2, 0xFFFFFFFFu, 2};
  snapshot.lower = {3, 4, 5, 0xFFFFFFFFu, 6};
  snapshot.support = {2, 1, 3, 0, 1};
  snapshot.phi = {2, 1, 2, 0, 1};
  snapshot.free_slots = {3};  // stack order matters and must round-trip
  return snapshot;
}

TEST(SnapshotIo, RoundTripsAllFields) {
  TempDir tmp;
  const StateSnapshot want = TestState(42);
  ASSERT_TRUE(WriteSnapshotFile(tmp.path, want).ok());

  int corrupt_skipped = -1;
  auto loaded_or = LoadNewestSnapshot(tmp.path, &corrupt_skipped);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  const StateSnapshot& got = loaded_or.value();
  EXPECT_EQ(corrupt_skipped, 0);
  EXPECT_EQ(got.applied, want.applied);
  EXPECT_EQ(got.num_upper, want.num_upper);
  EXPECT_EQ(got.num_lower, want.num_lower);
  EXPECT_EQ(got.num_butterflies, want.num_butterflies);
  EXPECT_EQ(got.upper, want.upper);
  EXPECT_EQ(got.lower, want.lower);
  EXPECT_EQ(got.support, want.support);
  EXPECT_EQ(got.phi, want.phi);
  EXPECT_EQ(got.free_slots, want.free_slots);
}

TEST(SnapshotIo, FallsBackPastCorruptSnapshots) {
  TempDir tmp;
  ASSERT_TRUE(WriteSnapshotFile(tmp.path, TestState(5)).ok());
  ASSERT_TRUE(WriteSnapshotFile(tmp.path, TestState(9)).ok());

  // Damage the NEWEST file's payload: the loader must fall back to 5.
  FlipByte(StampedPath(tmp.path, "snapshot-", 9, ".snap"), 30);
  int corrupt_skipped = 0;
  auto loaded_or = LoadNewestSnapshot(tmp.path, &corrupt_skipped);
  ASSERT_TRUE(loaded_or.ok()) << loaded_or.status().ToString();
  EXPECT_EQ(loaded_or.value().applied, 5u);
  EXPECT_EQ(corrupt_skipped, 1);

  // Both damaged: nothing intact remains.
  FlipByte(StampedPath(tmp.path, "snapshot-", 5, ".snap"), 30);
  EXPECT_EQ(LoadNewestSnapshot(tmp.path).status().code(),
            StatusCode::kNotFound);
}

TEST(SnapshotIo, EmptyDirIsNotFoundAndPruneKeepsNewest) {
  TempDir tmp;
  EXPECT_EQ(LoadNewestSnapshot(tmp.path).status().code(),
            StatusCode::kNotFound);

  ASSERT_TRUE(WriteSnapshotFile(tmp.path, TestState(1)).ok());
  ASSERT_TRUE(WriteSnapshotFile(tmp.path, TestState(2)).ok());
  ASSERT_TRUE(WriteSnapshotFile(tmp.path, TestState(3)).ok());
  EXPECT_EQ(RemoveOldSnapshots(tmp.path, 1), 2);
  EXPECT_EQ(ListStampedFiles(tmp.path, "snapshot-", ".snap"),
            (std::vector<std::uint64_t>{3}));
  auto loaded_or = LoadNewestSnapshot(tmp.path);
  ASSERT_TRUE(loaded_or.ok());
  EXPECT_EQ(loaded_or.value().applied, 3u);
}

// ---------------------------------------------------------------------------
// H: dynamic-graph state export/restore (the payload the snapshot carries)
// ---------------------------------------------------------------------------

TEST(DynamicGraphState, ExportRestoreContinuesIdentically) {
  const BipartiteGraph seed = GenerateUniformBipartite(10, 8, 30, 11);
  const std::vector<EdgeUpdate> ops = MakeStream(seed, 20, 77);

  DynamicBipartiteGraph original = ReplayPrefix(seed, ops, 12);
  auto restored_or = DynamicBipartiteGraph::FromState(original.ExportState());
  ASSERT_TRUE(restored_or.ok()) << restored_or.status().ToString();
  DynamicBipartiteGraph restored = std::move(restored_or).value();

  ASSERT_EQ(restored.NumSlots(), original.NumSlots());
  ASSERT_EQ(restored.NumEdges(), original.NumEdges());
  ASSERT_EQ(restored.NumButterflies(), original.NumButterflies());

  // Continuing the SAME op stream must assign the same slots (free-slot
  // stack order survived the round trip).
  for (std::uint64_t i = 12; i < ops.size(); ++i) {
    const EdgeUpdate& op = ops[i];
    if (op.kind == EdgeUpdate::Kind::kInsert) {
      auto a = original.InsertEdge(op.upper_local, op.lower_local);
      auto b = restored.InsertEdge(op.upper_local, op.lower_local);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_EQ(a.value(), b.value()) << "insert " << i;
    } else {
      const EdgeId slot = original.FindEdge(
          op.upper_local, original.NumUpper() + op.lower_local);
      ASSERT_EQ(restored.FindEdge(op.upper_local,
                                  restored.NumUpper() + op.lower_local),
                slot);
      ASSERT_TRUE(original.DeleteEdge(slot).ok());
      ASSERT_TRUE(restored.DeleteEdge(slot).ok());
    }
  }
  for (EdgeId slot = 0; slot < original.NumSlots(); ++slot) {
    ASSERT_EQ(restored.IsLive(slot), original.IsLive(slot)) << slot;
    if (original.IsLive(slot)) {
      EXPECT_EQ(restored.EdgeUpper(slot), original.EdgeUpper(slot)) << slot;
      EXPECT_EQ(restored.EdgeLower(slot), original.EdgeLower(slot)) << slot;
    }
  }
}

TEST(DynamicGraphState, FromStateRejectsCorruptImages) {
  const BipartiteGraph seed = GenerateUniformBipartite(6, 5, 12, 3);
  DynamicBipartiteGraph graph(seed);
  const DynamicGraphState good = graph.ExportState();

  {
    DynamicGraphState bad = good;
    bad.lower.pop_back();  // parallel arrays disagree
    EXPECT_EQ(DynamicBipartiteGraph::FromState(bad).status().code(),
              StatusCode::kDataLoss);
  }
  {
    DynamicGraphState bad = good;
    bad.upper[0] = bad.num_upper + bad.num_lower + 5;  // endpoint range
    EXPECT_EQ(DynamicBipartiteGraph::FromState(bad).status().code(),
              StatusCode::kDataLoss);
  }
  {
    DynamicGraphState bad = good;
    bad.upper[1] = bad.upper[0];  // duplicate edge
    bad.lower[1] = bad.lower[0];
    EXPECT_EQ(DynamicBipartiteGraph::FromState(bad).status().code(),
              StatusCode::kDataLoss);
  }
  {
    DynamicGraphState bad = good;
    bad.free_slots.push_back(0);  // claims a live slot is free
    EXPECT_EQ(DynamicBipartiteGraph::FromState(bad).status().code(),
              StatusCode::kDataLoss);
  }
}

TEST(IncrementalBitruss, RestoreCtorValidatesPhiSize) {
  const BipartiteGraph seed = GenerateUniformBipartite(6, 5, 12, 3);
  DynamicBipartiteGraph graph(seed);
  std::vector<SupportT> wrong(graph.NumSlots() + 1, 0);
  EXPECT_THROW(IncrementalBitruss(std::move(graph), std::move(wrong)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// J: service durability lifecycle (no faults)
// ---------------------------------------------------------------------------

BitrussServiceOptions DurableOptions(const std::string& dir) {
  BitrussServiceOptions options;
  options.persist.dir = dir;
  options.persist.fsync_policy = FsyncPolicy::kEveryRecord;
  options.persist.segment_bytes = 256;
  options.persist.snapshot_every_updates = 8;
  options.publish_every_updates = 4;
  return options;
}

// Recover() with the options the lifecycle tests use.
StatusOr<std::unique_ptr<BitrussService>> RecoverService(
    const BipartiteGraph& seed, const std::string& dir, RecoveryStats* stats) {
  BitrussServiceOptions options;
  options.persist.dir = dir;
  options.persist.fsync_policy = FsyncPolicy::kEveryPublish;
  return BitrussService::Recover(seed, options, stats);
}

TEST(BitrussServicePersist, CleanShutdownRecoversExactly) {
  TempDir tmp;
  const BipartiteGraph seed = GenerateUniformBipartite(12, 10, 40, 5);
  const std::vector<EdgeUpdate> ops = MakeStream(seed, 30, 99);
  {
    BitrussService service(seed, DurableOptions(tmp.path));
    for (const EdgeUpdate& op : ops) ASSERT_TRUE(service.Submit(op).ok());
    ASSERT_TRUE(service.Drain().ok());
    EXPECT_FALSE(service.Degraded());
    service.Shutdown(/*drain=*/true);
  }

  RecoveryStats stats;
  auto recovered_or = RecoverService(seed, tmp.path, &stats);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  auto& service = *recovered_or.value();
  // Drain-shutdown wrote a covering snapshot, so nothing replays.
  EXPECT_EQ(stats.snapshot_applied, 30u);
  EXPECT_EQ(stats.wal_replayed, 0u);
  EXPECT_FALSE(stats.from_seed);
  EXPECT_EQ(service.RecoveredBase(), 30u);
  EXPECT_FALSE(service.Degraded());
  ExpectRecoveredMatchesOracle(service, seed, ops);

  // The recovered service accepts and persists new work.
  const std::vector<EdgeUpdate> more = MakeStream(seed, 35, 99);
  for (std::size_t i = 30; i < more.size(); ++i) {
    ASSERT_TRUE(service.Submit(more[i]).ok());
  }
  ASSERT_TRUE(service.Drain().ok());
  EXPECT_EQ(service.Snapshot()->applied_updates, 35u);
  service.Shutdown(true);
}

TEST(BitrussServicePersist, FreshCtorRefusesDirtyDir) {
  TempDir tmp;
  const BipartiteGraph seed(2, 2, {{0, 0}, {1, 1}});
  { BitrussService service(seed, DurableOptions(tmp.path)); }
  // Prior durable state must go through Recover(), never be clobbered.
  EXPECT_THROW(BitrussService(seed, DurableOptions(tmp.path)),
               std::invalid_argument);
}

TEST(BitrussServicePersist, NoDrainShutdownRecoversAckedTail) {
  TempDir tmp;
  const BipartiteGraph seed = GenerateUniformBipartite(12, 10, 40, 5);
  const std::vector<EdgeUpdate> ops = MakeStream(seed, 10, 31);
  {
    BitrussServiceOptions options = DurableOptions(tmp.path);
    options.persist.snapshot_every_updates = 0;  // WAL only
    BitrussService service(seed, options);
    // Park the writer: every op is ACKED (WAL-logged) but none applied.
    service.Pause();
    for (const EdgeUpdate& op : ops) ASSERT_TRUE(service.Submit(op).ok());
    service.Shutdown(/*drain=*/false);  // discard the queue, keep the log
  }

  RecoveryStats stats;
  auto recovered_or = RecoverService(seed, tmp.path, &stats);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  // Everything acknowledged must come back — from the WAL alone.
  EXPECT_EQ(stats.snapshot_applied, 0u);
  EXPECT_EQ(stats.wal_replayed, 10u);
  EXPECT_EQ(recovered_or.value()->RecoveredBase(), 10u);
  ExpectRecoveredMatchesOracle(*recovered_or.value(), seed, ops);
  recovered_or.value()->Shutdown(true);
}

TEST(BitrussServicePersist, RecoveryCountersAdvance) {
  TempDir tmp;
  const BipartiteGraph seed = GenerateUniformBipartite(8, 6, 20, 7);
  const std::vector<EdgeUpdate> ops = MakeStream(seed, 6, 13);
  {
    BitrussServiceOptions options = DurableOptions(tmp.path);
    options.persist.snapshot_every_updates = 0;
    BitrussService service(seed, options);
    service.Pause();
    for (const EdgeUpdate& op : ops) ASSERT_TRUE(service.Submit(op).ok());
    service.Shutdown(false);
  }
  auto& registry = obs::MetricsRegistry::Default();
  const std::uint64_t replayed_before =
      registry.GetCounter("bitruss_recovery_replayed_total")->Value();
  auto recovered_or = RecoverService(seed, tmp.path, nullptr);
  ASSERT_TRUE(recovered_or.ok());
  EXPECT_EQ(
      registry.GetCounter("bitruss_recovery_replayed_total")->Value(),
      replayed_before + 6);
  recovered_or.value()->Shutdown(true);
}

TEST(BitrussServicePersist, CorruptedMiddleOfWalFailsRecovery) {
  TempDir tmp;
  // Hand-build a WAL with two sealed segments and no snapshot, then damage
  // the FIRST segment: acknowledged records are gone, Recover must refuse.
  WalOptions options;
  options.fsync_policy = FsyncPolicy::kEveryRecord;
  options.segment_bytes = 128;
  {
    auto writer_or = WalWriter::Open(tmp.path, 1, options);
    ASSERT_TRUE(writer_or.ok());
    auto writer = std::move(writer_or).value();
    const BipartiteGraph seed = GenerateUniformBipartite(12, 10, 0, 5);
    const std::vector<EdgeUpdate> ops = MakeStream(seed, 10, 41);
    for (std::uint64_t i = 0; i < ops.size(); ++i) {
      ASSERT_TRUE(writer->Append(
          {i + 1, static_cast<std::uint8_t>(ops[i].kind), ops[i].upper_local,
           ops[i].lower_local}).ok());
    }
  }
  FlipByte(StampedPath(tmp.path, "wal-", 1, ".seg"),
           kWalSegmentHeaderBytes + 12);

  const BipartiteGraph seed = GenerateUniformBipartite(12, 10, 0, 5);
  auto recovered_or = RecoverService(seed, tmp.path, nullptr);
  EXPECT_EQ(recovered_or.status().code(), StatusCode::kDataLoss);
}

// ---------------------------------------------------------------------------
// K: the crash matrix — fork a child, kill it AT every fault point, recover
// ---------------------------------------------------------------------------

#if defined(BITRUSS_FAULT_INJECTION_ENABLED)

struct CrashCase {
  const char* point;
  fault::FaultAction action;
  std::uint64_t skip_first;
  std::uint64_t compact_every = 0;  // child-side compaction cadence
};

// Child body: arm the fault, run a durable service over the deterministic
// stream, and report by exit status.  Everything uses _exit (no gtest, no
// atexit) — the child is expected to die by SIGKILL at the armed point.
[[noreturn]] void RunCrashChild(const CrashCase& c, const std::string& dir,
                                const BipartiteGraph& seed,
                                const std::vector<EdgeUpdate>& ops) {
  fault::ArmSpec spec;
  spec.action = c.action;
  spec.skip_first = c.skip_first;
  spec.seed = 7;
  fault::Arm(c.point, spec);

  BitrussServiceOptions options;
  options.persist.dir = dir;
  options.persist.fsync_policy = FsyncPolicy::kEveryRecord;
  options.persist.segment_bytes = 128;  // rotate every 4 records
  options.persist.snapshot_every_updates = 4;
  options.publish_every_updates = 2;
  options.compact_every_updates = c.compact_every;
  try {
    BitrussService service(seed, options);
    for (const EdgeUpdate& op : ops) {
      if (!service.Submit(op).ok()) _exit(3);
    }
    (void)service.Drain();
    service.Shutdown(true);
  } catch (...) {
    _exit(4);
  }
  _exit(0);  // the armed fault never fired — the parent fails on this
}

TEST(BitrussServiceCrash, RecoversBitExactAfterKillAtEveryFaultPoint) {
  const CrashCase cases[] = {
      {"wal.open", fault::FaultAction::kKill, 0},
      {"wal.append", fault::FaultAction::kKill, 6},
      {"wal.append", fault::FaultAction::kTornWrite, 6},
      {"wal.pre_fsync", fault::FaultAction::kKill, 6},
      {"wal.post_fsync", fault::FaultAction::kKill, 6},
      {"wal.rotate", fault::FaultAction::kKill, 1},
      {"wal.truncate", fault::FaultAction::kKill, 1},
      {"snapshot.tmp_write", fault::FaultAction::kKill, 1},
      {"snapshot.tmp_write", fault::FaultAction::kTornWrite, 1},
      {"snapshot.pre_rename", fault::FaultAction::kKill, 1},
      {"snapshot.post_rename", fault::FaultAction::kKill, 1},
      // With compaction, slot ids diverge from a straight replay; the
      // recovered phi HISTOGRAM must still match the oracle.
      {"snapshot.tmp_write", fault::FaultAction::kKill, 2,
       /*compact_every=*/6},
  };
  const BipartiteGraph seed = GenerateUniformBipartite(12, 10, 40, 5);
  const std::vector<EdgeUpdate> ops = MakeStream(seed, 24, 99);

  for (const CrashCase& c : cases) {
    SCOPED_TRACE(std::string(c.point) + "/" +
                 std::to_string(static_cast<int>(c.action)) + "/skip" +
                 std::to_string(c.skip_first));
    TempDir tmp;
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0) << std::strerror(errno);
    if (pid == 0) RunCrashChild(c, tmp.path, seed, ops);

    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    // The child must have died AT the fault point, not exited.
    ASSERT_TRUE(WIFSIGNALED(wstatus))
        << "child exited with " << WEXITSTATUS(wstatus)
        << " instead of crashing";
    ASSERT_EQ(WTERMSIG(wstatus), SIGKILL);

    BitrussServiceOptions options;
    options.persist.dir = tmp.path;
    options.persist.fsync_policy = FsyncPolicy::kEveryPublish;
    RecoveryStats stats;
    auto recovered_or = BitrussService::Recover(seed, options, &stats);
    ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
    auto& service = *recovered_or.value();
    EXPECT_FALSE(service.Degraded()) << service.DegradedReason();
    // Only durable (hence acknowledged) updates may be recovered, and all
    // of them must be.
    ASSERT_LE(service.RecoveredBase(), ops.size());
    if (c.compact_every == 0) {
      ExpectRecoveredMatchesOracle(service, seed, ops);
    } else {
      ExpectRecoveredHistogramMatchesOracle(service, seed, ops);
    }
    service.Shutdown(true);
  }
}

// ---------------------------------------------------------------------------
// L: injected write errors degrade to read-only — in-process, no fork
// ---------------------------------------------------------------------------

TEST(BitrussServiceDegrade, WalOpenErrorFailsFreshConstruction) {
  FaultGuard guard;
  TempDir tmp;
  fault::Arm("wal.open", {fault::FaultAction::kError});
  const BipartiteGraph seed(2, 2, {{0, 0}, {1, 1}});
  EXPECT_THROW(BitrussService(seed, DurableOptions(tmp.path)),
               std::runtime_error);
}

struct DegradeCase {
  const char* point;
  fault::FaultAction action;
  std::uint64_t skip_first;
  std::uint64_t segment_bytes = 4ull << 20;
};

TEST(BitrussServiceDegrade, PersistFailuresLatchReadOnlyMode) {
  const DegradeCase cases[] = {
      {"wal.append", fault::FaultAction::kEnospc, 2},
      {"wal.pre_fsync", fault::FaultAction::kError, 2},
      {"wal.post_fsync", fault::FaultAction::kError, 2},
      {"wal.rotate", fault::FaultAction::kError, 0, /*segment_bytes=*/128},
      {"wal.truncate", fault::FaultAction::kError, 0},
      {"snapshot.tmp_write", fault::FaultAction::kEnospc, 0},
      {"snapshot.pre_rename", fault::FaultAction::kError, 0},
      {"snapshot.post_rename", fault::FaultAction::kError, 0},
  };
  const BipartiteGraph seed = GenerateUniformBipartite(12, 10, 40, 5);
  const std::vector<EdgeUpdate> ops = MakeStream(seed, 24, 99);

  for (const DegradeCase& c : cases) {
    SCOPED_TRACE(c.point);
    FaultGuard guard;
    TempDir tmp;
    BitrussServiceOptions options;
    options.persist.dir = tmp.path;
    options.persist.fsync_policy = FsyncPolicy::kEveryRecord;
    options.persist.segment_bytes = c.segment_bytes;
    options.persist.snapshot_every_updates = 4;
    options.publish_every_updates = 2;
    BitrussService service(seed, options);
    const auto before = service.Snapshot();

    // Arm AFTER construction: skip counts start at the first serving hit.
    fault::ArmSpec spec;
    spec.action = c.action;
    spec.skip_first = c.skip_first;
    fault::Arm(c.point, spec);

    // Feed updates until the fault lands; Submit-path faults surface as an
    // immediate non-OK, writer-thread faults need the poll below.
    for (const EdgeUpdate& op : ops) {
      if (!service.Submit(op).ok()) break;
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!service.Degraded() &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_TRUE(service.Degraded());

    // Degraded is a READ-ONLY mode: reads keep serving, writes refuse with
    // the reason, health reports it.
    const std::string reason = service.DegradedReason();
    EXPECT_FALSE(reason.empty());
    if (c.action == fault::FaultAction::kEnospc) {
      EXPECT_NE(reason.find("ENOSPC"), std::string::npos) << reason;
    }
    EXPECT_NE(service.HealthJson().find("\"status\":\"degraded\""),
              std::string::npos)
        << service.HealthJson();
    EXPECT_NE(service.Snapshot(), nullptr);
    EXPECT_GE(service.Snapshot()->version, before->version);
    (void)service.PhiHistogram();  // must not crash or block
    const Status refused = service.SubmitInsert(0, 0);
    EXPECT_EQ(refused.code(), StatusCode::kUnavailable) << refused.ToString();
    service.Shutdown(true);  // clean shutdown out of degraded mode
  }
}

TEST(BitrussServiceDegrade, RecoverStartsDegradedWhenRearmFails) {
  FaultGuard guard;
  TempDir tmp;
  const BipartiteGraph seed = GenerateUniformBipartite(8, 6, 20, 7);
  const std::vector<EdgeUpdate> ops = MakeStream(seed, 6, 13);
  {
    BitrussService service(seed, DurableOptions(tmp.path));
    for (const EdgeUpdate& op : ops) ASSERT_TRUE(service.Submit(op).ok());
    service.Shutdown(true);
  }
  // Recovery succeeds at reading state but cannot write its covering
  // snapshot: the service must still come up, read-only.
  fault::Arm("snapshot.tmp_write", {fault::FaultAction::kError});
  auto recovered_or = RecoverService(seed, tmp.path, nullptr);
  ASSERT_TRUE(recovered_or.ok()) << recovered_or.status().ToString();
  auto& service = *recovered_or.value();
  EXPECT_TRUE(service.Degraded());
  EXPECT_EQ(service.RecoveredBase(), 6u);
  ExpectRecoveredMatchesOracle(service, seed, ops);
  EXPECT_EQ(service.SubmitInsert(0, 0).code(), StatusCode::kUnavailable);
  service.Shutdown(true);
}

#else  // !BITRUSS_FAULT_INJECTION_ENABLED

TEST(BitrussServiceCrash, SkippedWithoutFaultInjection) {
  GTEST_SKIP() << "built with BITRUSS_FAULT_INJECTION=OFF";
}

#endif  // BITRUSS_FAULT_INJECTION_ENABLED

}  // namespace
}  // namespace bitruss
