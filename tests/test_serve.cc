// Tests for the concurrent bitruss serving layer (serve/bitruss_service.h):
// snapshot semantics, backpressure, shutdown/drain contracts, compaction
// under serving, and the writer/reader race-freedom stress test that the
// TSan CI job runs — 1 writer + 4 readers over a mixed insert/delete
// stream, with every published snapshot checked bit-identical against a
// from-scratch Snapshot() + Decompose() oracle at its version.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "butterfly/butterfly_counting.h"
#include "core/decompose.h"
#include "dynamic/dynamic_graph.h"
#include "gen/random_bipartite.h"
#include "graph/bipartite_graph.h"
#include "obs/metrics.h"
#include "serve/bitruss_service.h"
#include "util/random.h"
#include "util/status.h"

namespace bitruss {
namespace {

// The service is a thread owner; accidental copies must not compile.
static_assert(!std::is_copy_constructible_v<BitrussService>,
              "BitrussService must not be copyable");
static_assert(!std::is_copy_assignable_v<BitrussService>,
              "BitrussService must not be copy-assignable");

// Deterministic mixed insert/delete stream, valid under FIFO application:
// every op is simulated while generating, so a delete always names an edge
// that is live at its position in the stream.
std::vector<EdgeUpdate> MakeStream(const BipartiteGraph& seed, int updates,
                                   std::uint64_t rng_seed) {
  DynamicBipartiteGraph sim(seed);
  Rng rng(rng_seed);
  std::vector<std::pair<VertexId, VertexId>> live;  // side-local pairs
  for (EdgeId slot = 0; slot < sim.NumSlots(); ++slot) {
    if (sim.IsLive(slot)) {
      live.emplace_back(sim.EdgeUpper(slot),
                        sim.EdgeLower(slot) - sim.NumUpper());
    }
  }
  std::vector<EdgeUpdate> ops;
  ops.reserve(updates);
  while (static_cast<int>(ops.size()) < updates) {
    if (!live.empty() && rng.NextBool(0.5)) {
      const std::size_t pick = rng.Below(live.size());
      const auto [u, l] = live[pick];
      EXPECT_TRUE(sim.DeleteEdge(sim.FindEdge(u, sim.NumUpper() + l)).ok());
      ops.push_back({EdgeUpdate::Kind::kDelete, u, l});
      live[pick] = live.back();
      live.pop_back();
    } else {
      const auto u = static_cast<VertexId>(rng.Below(sim.NumUpper()));
      const auto l = static_cast<VertexId>(rng.Below(sim.NumLower()));
      if (!sim.InsertEdge(u, l).ok()) continue;  // already present; reroll
      ops.push_back({EdgeUpdate::Kind::kInsert, u, l});
      live.emplace_back(u, l);
    }
  }
  return ops;
}

// From-scratch oracle at a snapshot's version: replay the first
// `applied_updates` ops of the stream (the writer applies FIFO) with the
// same compaction cadence, then compare the snapshot's entire state
// against an independent Snapshot() + Decompose() of the replayed graph.
void ExpectSnapshotMatchesOracle(const PhiSnapshot& snap,
                                 const BipartiteGraph& seed,
                                 const std::vector<EdgeUpdate>& ops,
                                 std::uint64_t compact_every) {
  ASSERT_LE(snap.applied_updates, ops.size());
  DynamicBipartiteGraph replay(seed);
  std::uint64_t since_compact = 0;
  for (std::uint64_t i = 0; i < snap.applied_updates; ++i) {
    const EdgeUpdate& op = ops[i];
    if (op.kind == EdgeUpdate::Kind::kInsert) {
      ASSERT_TRUE(replay.InsertEdge(op.upper_local, op.lower_local).ok());
    } else {
      const EdgeId slot = replay.FindEdge(
          op.upper_local, replay.NumUpper() + op.lower_local);
      ASSERT_NE(slot, kInvalidEdge);
      ASSERT_TRUE(replay.DeleteEdge(slot).ok());
    }
    if (compact_every != 0 && ++since_compact >= compact_every) {
      replay.CompactSlots();
      since_compact = 0;
    }
  }
  ASSERT_EQ(snap.num_slots, replay.NumSlots());
  ASSERT_EQ(snap.num_edges, replay.NumEdges());
  ASSERT_EQ(snap.num_butterflies, replay.NumButterflies());

  const GraphSnapshot compacted = replay.Snapshot();
  const BitrussResult oracle = Decompose(compacted.graph);
  std::vector<SupportT> phi_by_slot(replay.NumSlots(), 0);
  std::vector<SupportT> support_by_slot(replay.NumSlots(), 0);
  for (EdgeId e = 0; e < compacted.graph.NumEdges(); ++e) {
    phi_by_slot[compacted.slot_of_edge[e]] = oracle.phi[e];
    support_by_slot[compacted.slot_of_edge[e]] = compacted.supports[e];
  }
  for (EdgeId slot = 0; slot < replay.NumSlots(); ++slot) {
    ASSERT_EQ(snap.IsLive(slot), replay.IsLive(slot)) << "slot " << slot;
    ASSERT_EQ(snap.Phi(slot), phi_by_slot[slot]) << "slot " << slot;
    ASSERT_EQ(snap.SupportOf(slot), support_by_slot[slot]) << "slot " << slot;
  }
}

TEST(BitrussService, InitialSnapshotMatchesSeedDecompose) {
  const BipartiteGraph seed = GenerateUniformBipartite(20, 15, 110, 3);
  BitrussService service(seed);
  const auto snap = service.Snapshot();
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version, 1u);
  EXPECT_EQ(snap->applied_updates, 0u);
  EXPECT_EQ(snap->num_edges, seed.NumEdges());
  EXPECT_EQ(snap->num_butterflies, CountTotalButterflies(seed));
  // Seed slots keep the CSR edge ids.
  const BitrussResult expected = Decompose(seed);
  const std::vector<SupportT> supports = CountEdgeSupports(seed);
  for (EdgeId e = 0; e < seed.NumEdges(); ++e) {
    EXPECT_EQ(snap->Phi(e), expected.phi[e]) << "edge " << e;
    EXPECT_EQ(snap->SupportOf(e), supports[e]) << "edge " << e;
    EXPECT_TRUE(snap->IsLive(e));
  }
  EXPECT_EQ(service.StalenessUpdates(), 0u);
}

TEST(BitrussService, SnapshotQueriesAreConsistentWithArrays) {
  // Complete K(2,3): every edge sits in 2 butterflies and phi is uniform.
  const BipartiteGraph seed(
      2, 3, {{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}});
  BitrussService service(seed);
  const auto snap = service.Snapshot();

  const auto top = snap->TopKPhi(4);
  ASSERT_EQ(top.size(), 4u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    // (phi desc, slot asc) order.
    EXPECT_TRUE(top[i - 1].second > top[i].second ||
                (top[i - 1].second == top[i].second &&
                 top[i - 1].first < top[i].first));
  }
  const auto all = snap->TopKPhi(100);
  EXPECT_EQ(all.size(), seed.NumEdges());

  std::map<SupportT, std::uint64_t> expected;
  for (EdgeId slot = 0; slot < snap->num_slots; ++slot) {
    if (snap->IsLive(slot)) ++expected[snap->Phi(slot)];
  }
  const auto histogram = snap->PhiHistogram();
  ASSERT_EQ(histogram.size(), expected.size());
  std::uint64_t total = 0;
  for (const auto& [phi, count] : histogram) {
    EXPECT_EQ(count, expected[phi]) << "phi " << phi;
    total += count;
  }
  EXPECT_EQ(total, snap->num_edges);

  // Out-of-range ids answer 0/false, never fault.
  EXPECT_EQ(snap->Phi(1u << 30), 0u);
  EXPECT_EQ(snap->SupportOf(1u << 30), 0u);
  EXPECT_FALSE(snap->IsLive(1u << 30));
}

TEST(BitrussService, BackpressureWhenQueueFills) {
  const BipartiteGraph seed(2, 2, {{0, 0}, {1, 0}, {1, 1}});
  BitrussServiceOptions options;
  options.queue_capacity = 4;
  BitrussService service(seed, options);

  // Park the writer so the queue fills deterministically.
  service.Pause();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(service.SubmitInsert(0, 1).ok()) << i;
  }
  const Status overflow = service.SubmitInsert(0, 1);
  EXPECT_EQ(overflow.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.Stats().rejected_overflow, 1u);

  // Endpoint validation happens at Submit, not at apply.
  EXPECT_EQ(service.SubmitInsert(99, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(service.SubmitDelete(0, 99).code(), StatusCode::kInvalidArgument);

  service.Resume();
  ASSERT_TRUE(service.Drain().ok());
  EXPECT_EQ(service.AppliedUpdates(), 4u);
  // First insert closed the K(2,2); the other three were duplicates.
  EXPECT_EQ(service.Stats().apply_failures, 3u);
  EXPECT_EQ(service.Phi(3), 1u);  // the inserted edge took slot 3
  EXPECT_EQ(service.StalenessUpdates(), 0u);
  EXPECT_EQ(service.Snapshot()->applied_updates, 4u);
}

TEST(BitrussService, ShutdownDrainsThenRefusesWork) {
  const BipartiteGraph seed(2, 2, {{0, 0}, {1, 0}, {1, 1}});
  BitrussService service(seed);
  ASSERT_TRUE(service.SubmitInsert(0, 1).ok());
  service.Shutdown(/*drain=*/true);

  EXPECT_EQ(service.AppliedUpdates(), 1u);
  const auto snap = service.Snapshot();
  EXPECT_EQ(snap->applied_updates, 1u);
  EXPECT_EQ(snap->num_edges, 4u);
  for (EdgeId e = 0; e < 4; ++e) EXPECT_EQ(snap->Phi(e), 1u);

  EXPECT_EQ(service.SubmitInsert(0, 1).code(), StatusCode::kUnavailable);
  EXPECT_TRUE(service.Drain().ok());  // already quiescent
  service.Shutdown(true);             // idempotent
}

TEST(BitrussService, ShutdownWithoutDrainDiscardsQueue) {
  const BipartiteGraph seed(2, 2, {{0, 0}, {1, 0}, {1, 1}});
  BitrussService service(seed);
  service.Pause();
  ASSERT_TRUE(service.SubmitInsert(0, 1).ok());
  service.Shutdown(/*drain=*/false);
  EXPECT_EQ(service.AppliedUpdates(), 0u);
  EXPECT_EQ(service.Snapshot()->applied_updates, 0u);
  EXPECT_EQ(service.Drain().code(), StatusCode::kUnavailable);
}

TEST(BitrussService, ServesExactlyAcrossCompactions) {
  const BipartiteGraph seed = GenerateUniformBipartite(25, 20, 160, 7);
  const std::vector<EdgeUpdate> ops = MakeStream(seed, 60, 0x5e1f);
  BitrussServiceOptions options;
  options.queue_capacity = ops.size();
  options.compact_every_updates = 5;
  BitrussService service(seed, options);
  for (const EdgeUpdate& op : ops) ASSERT_TRUE(service.Submit(op).ok());
  ASSERT_TRUE(service.Drain().ok());

  EXPECT_EQ(service.Stats().compactions, ops.size() / 5);
  const auto snap = service.Snapshot();
  EXPECT_EQ(snap->applied_updates, ops.size());
  ASSERT_NO_FATAL_FAILURE(
      ExpectSnapshotMatchesOracle(*snap, seed, ops, /*compact_every=*/5));
  // A stale pre-compaction slot id reads 0 through every accessor.
  EXPECT_EQ(service.Phi(1u << 20), 0u);
  EXPECT_EQ(service.SupportOf(1u << 20), 0u);
}

// The race-freedom satellite: one writer, four hammering readers, every
// observed snapshot verified against the from-scratch oracle at its
// version.  Run under TSan in CI (serve label).
TEST(BitrussServiceStress, EverySnapshotMatchesOracleAtItsVersion) {
  const BipartiteGraph seed = GenerateUniformBipartite(30, 25, 200, 13);
  constexpr int kUpdates = 260;
  constexpr std::uint64_t kCompactEvery = 97;
  constexpr int kReaders = 4;
  const std::vector<EdgeUpdate> ops = MakeStream(seed, kUpdates, 0xfeed);

  BitrussServiceOptions options;
  options.queue_capacity = 64;  // smaller than the stream: exercises
                                // backpressure under concurrency too
  options.publish_every_updates = 1;  // maximal snapshot coverage
  options.publish_interval_ms = 0;
  options.compact_every_updates = kCompactEvery;
  BitrussService service(seed, options);

  std::atomic<bool> stop{false};
  std::vector<std::map<std::uint64_t, std::shared_ptr<const PhiSnapshot>>>
      seen(kReaders);
  std::vector<std::uint64_t> read_sink(kReaders, 0);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::uint64_t sink = 0;
      std::uint64_t probe = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto snap = service.Snapshot();
        seen[r].emplace(snap->version, snap);
        // Hammer every read path, including intentionally stale /
        // out-of-range slot ids, while the writer mutates and compacts.
        const EdgeId slot = static_cast<EdgeId>(probe++ % (snap->num_slots + 3));
        sink += service.Phi(slot) + snap->SupportOf(slot) + snap->IsLive(slot);
        sink += service.StalenessUpdates();
        if (probe % 64 == 0) {
          sink += snap->TopKPhi(5).size() + snap->PhiHistogram().size();
        }
      }
      read_sink[r] = sink;
    });
  }

  for (const EdgeUpdate& op : ops) {
    Status status = service.Submit(op);
    while (status.code() == StatusCode::kResourceExhausted) {
      std::this_thread::yield();
      status = service.Submit(op);
    }
    ASSERT_TRUE(status.ok()) << status.ToString();
  }
  ASSERT_TRUE(service.Drain().ok());
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  service.Shutdown(/*drain=*/true);

  const auto final_snap = service.Snapshot();
  EXPECT_EQ(final_snap->applied_updates, ops.size());
  EXPECT_EQ(service.Stats().apply_failures, 0u);  // the stream is valid
  EXPECT_EQ(service.AppliedUpdates(), ops.size());

  // Every snapshot any reader ever observed — plus the final one — must be
  // bit-identical to the recount oracle at its version.
  std::map<std::uint64_t, std::shared_ptr<const PhiSnapshot>> unique;
  for (const auto& per_reader : seen) {
    unique.insert(per_reader.begin(), per_reader.end());
  }
  unique.emplace(final_snap->version, final_snap);
  EXPECT_GE(unique.size(), 2u);  // readers saw real intermediate state
  std::uint64_t last_applied = 0;
  std::uint64_t last_version = 0;
  for (const auto& [version, snap] : unique) {
    SCOPED_TRACE("snapshot version " + std::to_string(version));
    EXPECT_EQ(snap->version, version);
    // Versions and covered-update counts advance together.
    EXPECT_GT(version, last_version);
    EXPECT_GE(snap->applied_updates, last_applied);
    last_version = version;
    last_applied = snap->applied_updates;
    ASSERT_NO_FATAL_FAILURE(
        ExpectSnapshotMatchesOracle(*snap, seed, ops, kCompactEvery));
  }
}

// The current visibility-latency family sample from the default registry
// (the service registers its instruments there); empty before any service
// ever ran in the process.
obs::HistogramSample VisibilityFamilySample() {
  const obs::RegistrySnapshot snapshot =
      obs::MetricsRegistry::Default().Snapshot();
  const obs::HistogramSample* family =
      snapshot.FindHistogram("bitruss_serve_visibility_seconds");
  return family == nullptr ? obs::HistogramSample{} : *family;
}

// Exactness of the request-lifecycle visibility latency (PR 8): with a
// publish-per-update cadence, every submitted update contributes exactly
// one observation, and each observation (submit -> covering snapshot
// published) is bounded by the oracle wall this thread measures around it
// (before-submit -> after-Drain, which by Drain's contract brackets the
// publication).
TEST(BitrussService, VisibilityLatencyIsExactPerUpdateAndBounded) {
  const BipartiteGraph seed = GenerateUniformBipartite(20, 15, 110, 3);
  const std::vector<EdgeUpdate> ops = MakeStream(seed, 24, /*rng_seed=*/17);

  BitrussServiceOptions options;
  options.publish_every_updates = 1;  // one visibility sample per update
  options.publish_interval_ms = 0;
  BitrussService service(seed, options);

  obs::HistogramSample prev = VisibilityFamilySample();
  for (const EdgeUpdate& op : ops) {
    const auto wall_start = std::chrono::steady_clock::now();
    ASSERT_TRUE(service.Submit(op).ok());
    ASSERT_TRUE(service.Drain().ok());
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall_start)
                            .count();
    const obs::HistogramSample now = VisibilityFamilySample();
    const obs::HistogramSample delta =
        obs::SubtractHistogramSample(now, prev);
    prev = now;
    // Exactly this update's observation, bounded by the observed wall.
    ASSERT_EQ(delta.count, 1u);
    EXPECT_GE(delta.sum, 0.0);
    EXPECT_LE(delta.sum, wall);
  }
  service.Shutdown(/*drain=*/true);
}

// The timed read wrappers must agree with direct snapshot queries and
// record one observation per call into their latency families.
TEST(BitrussService, TimedReadWrappersMatchSnapshotAndRecordLatency) {
  const BipartiteGraph seed(2, 2, {{0, 0}, {1, 0}, {1, 1}});
  const obs::HistogramSample phi_before = [&] {
    const obs::RegistrySnapshot snap =
        obs::MetricsRegistry::Default().Snapshot();
    const obs::HistogramSample* family =
        snap.FindHistogram("bitruss_serve_read_phi_seconds");
    return family == nullptr ? obs::HistogramSample{} : *family;
  }();

  BitrussService service(seed);
  const auto snap = service.Snapshot();
  constexpr int kReads = 16;
  for (int i = 0; i < kReads; ++i) {
    const EdgeId slot = static_cast<EdgeId>(i) % (snap->num_slots + 1);
    EXPECT_EQ(service.Phi(slot), snap->Phi(slot));
    EXPECT_EQ(service.SupportOf(slot), snap->SupportOf(slot));
  }
  EXPECT_EQ(service.TopKPhi(2), snap->TopKPhi(2));
  EXPECT_EQ(service.PhiHistogram(), snap->PhiHistogram());

  const obs::RegistrySnapshot registry_snap =
      obs::MetricsRegistry::Default().Snapshot();
  const obs::HistogramSample* phi_family =
      registry_snap.FindHistogram("bitruss_serve_read_phi_seconds");
  ASSERT_NE(phi_family, nullptr);
  // Phi and SupportOf both time into the phi family: 2 per iteration.
  EXPECT_EQ(obs::SubtractHistogramSample(*phi_family, phi_before).count,
            2u * kReads);
  ASSERT_NE(registry_snap.FindHistogram("bitruss_serve_read_topk_seconds"),
            nullptr);
  ASSERT_NE(
      registry_snap.FindHistogram("bitruss_serve_read_histogram_seconds"),
      nullptr);
  service.Shutdown();
}

}  // namespace
}  // namespace bitruss
