// Unit tests for the minimal Status / StatusOr in util/status.h.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/status.h"

namespace bitruss {
namespace {

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s, OkStatus());
}

TEST(Status, ErrorHelpersCarryCodeAndMessage) {
  const Status s = NotFoundError("no such edge");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such edge");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such edge");
  EXPECT_NE(s, AlreadyExistsError("no such edge"));
  EXPECT_NE(s, NotFoundError("other"));

  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
}

TEST(Status, ServingLayerCodes) {
  // Backpressure (queue full, retry later) vs shutdown (stop submitting)
  // are distinct outcomes a producer must branch on.
  const Status full = ResourceExhaustedError("ingest queue full");
  EXPECT_FALSE(full.ok());
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(full.ToString(), "RESOURCE_EXHAUSTED: ingest queue full");

  const Status down = UnavailableError("shutting down");
  EXPECT_FALSE(down.ok());
  EXPECT_EQ(down.code(), StatusCode::kUnavailable);
  EXPECT_EQ(down.ToString(), "UNAVAILABLE: shutting down");
  EXPECT_NE(full, down);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.status(), OkStatus());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  result.value() = 7;
  EXPECT_EQ(result.value(), 7);
}

TEST(StatusOr, HoldsError) {
  const StatusOr<std::string> result(NotFoundError("missing"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_THROW(result.value(), std::logic_error);
}

TEST(StatusOr, RejectsOkStatusWithoutValue) {
  EXPECT_THROW(StatusOr<int>{OkStatus()}, std::logic_error);
}

TEST(StatusOr, MovesValueOut) {
  StatusOr<std::string> result(std::string("payload"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

}  // namespace
}  // namespace bitruss
