// util/sync.h: the annotated Mutex/MutexLock/CondVar wrappers must behave
// exactly like the std primitives they wrap (RAII scope, wait/notify,
// spurious-wakeup-safe predicates, deadline semantics).  The compile-time
// side — that -Werror=thread-safety REJECTS unlocked guarded access — is
// proven by the configure-time negative control in
// cmake/tsa_negative_check.cc, not here: a test binary can only show what
// compiles, not what must not.

#include "util/sync.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace bitruss {
namespace {

TEST(MutexTest, TryLockReflectsOwnership) {
  Mutex mu;
  {
    MutexLock lock(mu);
    std::thread observer([&mu] {
      // Another thread cannot take the mutex while the MutexLock lives.
      // TryLock in a branch keeps the analysis's conditional-acquire
      // tracking happy (the capability is only held on the true path).
      if (mu.TryLock()) {
        mu.Unlock();
        ADD_FAILURE() << "TryLock succeeded while a MutexLock was held";
      }
    });
    observer.join();
  }
  // Scope exit released it.
  if (mu.TryLock()) {
    mu.Unlock();
  } else {
    ADD_FAILURE() << "mutex still held after MutexLock scope exit";
  }
}

TEST(MutexTest, LockUnlockSerializesIncrements) {
  Mutex mu;
  int counter = 0;  // protected by mu via explicit Lock/Unlock below
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kPerThread; ++i) {
        mu.Lock();
        ++counter;
        mu.Unlock();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kPerThread);
}

TEST(MutexLockTest, CriticalSectionsExclude) {
  Mutex mu;
  int counter = 0;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mu, &counter] {
      for (int i = 0; i < kPerThread; ++i) {
        MutexLock lock(mu);
        ++counter;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kPerThread);
}

TEST(CondVarTest, WaitNotifyHandsOffValue) {
  Mutex mu;
  CondVar cv;
  bool ready = false;
  int payload = 0;

  std::thread producer([&] {
    MutexLock lock(mu);
    payload = 17;
    ready = true;
    cv.NotifyOne();
  });

  {
    MutexLock lock(mu);
    while (!ready) cv.Wait(lock);
    EXPECT_EQ(payload, 17);
  }
  producer.join();
}

TEST(CondVarTest, NotifyAllWakesEveryWaiter) {
  Mutex mu;
  CondVar cv;
  bool go = false;
  int woke = 0;
  constexpr int kWaiters = 3;

  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int t = 0; t < kWaiters; ++t) {
    waiters.emplace_back([&] {
      MutexLock lock(mu);
      while (!go) cv.Wait(lock);
      ++woke;
    });
  }
  {
    MutexLock lock(mu);
    go = true;
  }
  cv.NotifyAll();
  for (std::thread& t : waiters) t.join();
  EXPECT_EQ(woke, kWaiters);
}

TEST(CondVarTest, AwaitRunsPredicateUnderLock) {
  Mutex mu;
  CondVar cv;
  int stage = 0;

  std::thread advancer([&] {
    for (int next = 1; next <= 3; ++next) {
      MutexLock lock(mu);
      stage = next;
      cv.NotifyAll();
    }
  });

  {
    MutexLock lock(mu);
    cv.Await(lock, [&stage] { return stage >= 3; });
    EXPECT_GE(stage, 3);
  }
  advancer.join();
}

TEST(CondVarTest, AwaitUntilTimesOutWhenPredicateStaysFalse) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(20);
  EXPECT_FALSE(cv.AwaitUntil(lock, deadline, [] { return false; }));
}

TEST(CondVarTest, AwaitUntilReturnsTrueOnceSatisfied) {
  Mutex mu;
  CondVar cv;
  bool done = false;

  std::thread setter([&] {
    MutexLock lock(mu);
    done = true;
    cv.NotifyOne();
  });

  {
    MutexLock lock(mu);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    EXPECT_TRUE(cv.AwaitUntil(lock, deadline, [&done] { return done; }));
  }
  setter.join();
}

TEST(CondVarTest, WaitUntilReportsTimeout) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(10);
  EXPECT_EQ(cv.WaitUntil(lock, deadline), std::cv_status::timeout);
}

}  // namespace
}  // namespace bitruss
