#!/usr/bin/env python3
"""Repo-specific lint rules the generic toolchain cannot express.

Run from anywhere:  python3 tools/lint.py [--root REPO_ROOT]

Rules (each failure prints file:line and a one-line explanation):

  1. naked-sync-primitive  std::mutex / std::condition_variable /
     std::lock_guard / std::unique_lock / std::scoped_lock /
     std::shared_mutex anywhere outside src/util/sync.h.  All locking goes
     through the annotated wrappers so Clang's thread-safety analysis sees
     every critical section.
  2. atomic-ordering-comment  every std::atomic MEMBER declaration (members
     are spotted by the trailing-underscore naming convention) must have a
     comment on the same line or within the 4 lines above naming its memory
     ordering discipline (relaxed / acquire / release / acq_rel / seq_cst /
     "ordering").  Locals and parameters are exempt.
  3. nodiscard-status  src/util/status.h must declare both Status and
     StatusOr with class-level [[nodiscard]] (the compiler then flags every
     dropped result); as a backstop, statement-level calls of well-known
     Status-returning APIs must not silently drop the result.
  4. include-guard-path  every header under src/ and bench/ must use an
     include guard spelling its path: BITRUSS_<RELPATH>_H_ (e.g.
     src/util/sync.h -> BITRUSS_UTIL_SYNC_H_); stale guards after a file
     move silently break the one-definition rule.
  5. bench-meta  repo-root BENCH_*.json baselines must parse and carry a
     non-placeholder meta.git_sha and meta.timestamp, so perf baselines
     stay attributable to a commit.
  6. fault-point-coverage  every fault point declared in src/ via
     BITRUSS_FAULT_POINT("name") / BITRUSS_FAULT_POINT_STATUS("name") must
     be referenced by name somewhere under tests/ — no fault point may
     exist without crash/degradation coverage.

Exit status: 0 clean, 1 any violation (CI fails the build on it).
"""

import argparse
import json
import re
import sys
from pathlib import Path

NAKED_SYNC_RE = re.compile(
    r"std::(mutex|condition_variable\w*|lock_guard|unique_lock"
    r"|scoped_lock|shared_mutex|shared_lock)\b"
)
# Member declaration by naming convention: "std::atomic<...> name_{...};"
# or array-of-atomics unique_ptr members.
ATOMIC_MEMBER_RE = re.compile(
    r"^\s*(?:mutable\s+)?std::(?:atomic<[^;]*>|unique_ptr<std::atomic<[^;]*)"
    r"\s+\w+_\s*(?:\{[^}]*\}|=[^;]*)?;"
)
ORDERING_WORDS_RE = re.compile(
    r"relaxed|acquire|release|acq_rel|seq_cst|ordering", re.IGNORECASE
)
# Statement-level call of a known Status-returning API with the result
# dropped on the floor (no assignment, no (void), no .ok(), not a macro
# argument).  The class-level [[nodiscard]] is the real gate; this catches
# editors stripping the cast without rebuilding.
STATUS_APIS = (
    "InsertEdge", "DeleteEdge", "SubmitInsert", "SubmitDelete", "Submit",
    "Drain", "CheckedPhi",
)
NAKED_STATUS_RE = re.compile(
    r"^\s*[\w.\->]*\b(" + "|".join(STATUS_APIS) + r")\s*\("
)
GUARD_RE = re.compile(r"^#ifndef\s+(\w+)\s*$", re.MULTILINE)
FAULT_POINT_RE = re.compile(r'BITRUSS_FAULT_POINT(?:_STATUS)?\("([^"]+)"\)')

SOURCE_DIRS = ("src", "bench", "tests", "cmake")
SOURCE_SUFFIXES = (".h", ".cc")


def iter_sources(root: Path):
    for d in SOURCE_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in SOURCE_SUFFIXES and path.is_file():
                yield path


def check_naked_sync(root, errors):
    allowed = root / "src" / "util" / "sync.h"
    for path in iter_sources(root):
        if path == allowed:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if NAKED_SYNC_RE.search(line):
                errors.append(
                    f"{path.relative_to(root)}:{lineno}: naked std sync "
                    "primitive; use the annotated wrappers in util/sync.h"
                )


def check_atomic_comments(root, errors):
    for path in iter_sources(root):
        lines = path.read_text().splitlines()
        for lineno, line in enumerate(lines, 1):
            if not ATOMIC_MEMBER_RE.match(line):
                continue
            window = lines[max(0, lineno - 5):lineno]
            if any(ORDERING_WORDS_RE.search(w) for w in window):
                continue
            errors.append(
                f"{path.relative_to(root)}:{lineno}: std::atomic member "
                "without a memory-ordering comment (same line or the 4 "
                "lines above must name the ordering discipline)"
            )


def check_nodiscard_status(root, errors):
    status_h = root / "src" / "util" / "status.h"
    text = status_h.read_text() if status_h.is_file() else ""
    for cls in ("class [[nodiscard]] Status", "class [[nodiscard]] StatusOr"):
        if cls not in text:
            errors.append(
                f"src/util/status.h: missing '{cls} ...' — class-level "
                "[[nodiscard]] is what makes dropped Status a warning"
            )
    for path in iter_sources(root):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            stripped = line.strip()
            if not NAKED_STATUS_RE.match(line):
                continue
            if not stripped.endswith(";") or "=" in stripped:
                continue
            if stripped.startswith(("return", "(void)", "//")):
                continue
            errors.append(
                f"{path.relative_to(root)}:{lineno}: result of "
                "Status-returning call dropped; check it or cast to "
                "(void) with a justification comment"
            )


def check_include_guards(root, errors):
    for d in ("src", "bench"):
        base = root / d
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.h")):
            rel = path.relative_to(root)
            stem = rel.relative_to("src") if d == "src" else rel
            expected = (
                "BITRUSS_"
                + re.sub(r"[^A-Za-z0-9]", "_", str(stem.with_suffix("")))
                .upper()
                + "_H_"
            )
            match = GUARD_RE.search(path.read_text())
            if match is None:
                errors.append(f"{rel}: no #ifndef include guard")
            elif match.group(1) != expected:
                errors.append(
                    f"{rel}: include guard {match.group(1)} does not match "
                    f"its path (expected {expected})"
                )


def check_bench_meta(root, errors):
    for path in sorted(root.glob("BENCH_*.json")):
        rel = path.relative_to(root)
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as e:
            errors.append(f"{rel}: invalid JSON ({e})")
            continue
        meta = doc.get("meta", {})
        for key in ("git_sha", "timestamp"):
            value = str(meta.get(key, "")).strip()
            if not value or value.lower() == "unknown":
                errors.append(
                    f"{rel}: meta.{key} is missing/placeholder; baselines "
                    "must be attributable to a commit"
                )


def check_fault_point_coverage(root, errors):
    declared = {}  # name -> first declaring file:line
    for path in sorted((root / "src").rglob("*")):
        if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for name in FAULT_POINT_RE.findall(line):
                declared.setdefault(
                    name, f"{path.relative_to(root)}:{lineno}"
                )
    if not declared:
        return
    tests_dir = root / "tests"
    covered = set()
    if tests_dir.is_dir():
        for path in sorted(tests_dir.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
                continue
            text = path.read_text()
            for name in declared:
                if f'"{name}"' in text:
                    covered.add(name)
    for name in sorted(set(declared) - covered):
        errors.append(
            f"{declared[name]}: fault point \"{name}\" is never referenced "
            "under tests/ — every point needs crash/degradation coverage"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--root",
        type=Path,
        default=Path(__file__).resolve().parent.parent,
        help="repository root (default: the checkout containing this script)",
    )
    args = parser.parse_args()
    root = args.root.resolve()

    errors = []
    check_naked_sync(root, errors)
    check_atomic_comments(root, errors)
    check_nodiscard_status(root, errors)
    check_include_guards(root, errors)
    check_bench_meta(root, errors)
    check_fault_point_coverage(root, errors)

    if errors:
        for error in errors:
            print(error)
        print(f"lint: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
