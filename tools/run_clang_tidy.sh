#!/usr/bin/env bash
# Runs clang-tidy (checks from the repo-root .clang-tidy) over every
# first-party translation unit in the compile database.  Nonzero exit on
# any finding — the static-analysis CI job fails the build on it.
#
# Usage: tools/run_clang_tidy.sh [BUILD_DIR]
#   BUILD_DIR must contain compile_commands.json (configure with
#   -DCMAKE_EXPORT_COMPILE_COMMANDS=ON); defaults to ./build.
#
# Degrades gracefully when clang-tidy is not installed (exit 0 with a
# notice): local GCC-only environments still build and test; the CI job is
# where the gate actually bites.

set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${1:-${ROOT}/build}"

TIDY="$(command -v clang-tidy || true)"
if [[ -z "${TIDY}" ]]; then
  echo "run_clang_tidy: clang-tidy not found on PATH; skipping (the" \
       "static-analysis CI job enforces this gate)"
  exit 0
fi

if [[ ! -f "${BUILD_DIR}/compile_commands.json" ]]; then
  echo "run_clang_tidy: ${BUILD_DIR}/compile_commands.json not found;" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

# First-party TUs only: generated/test-framework code is not ours to lint.
mapfile -t SOURCES < <(cd "${ROOT}" && ls src/*/*.cc bench/*.cc)

echo "run_clang_tidy: $(${TIDY} --version | head -n1)"
echo "run_clang_tidy: checking ${#SOURCES[@]} translation units"

STATUS=0
for src in "${SOURCES[@]}"; do
  if ! "${TIDY}" -p "${BUILD_DIR}" --quiet "${ROOT}/${src}"; then
    STATUS=1
  fi
done

if [[ ${STATUS} -ne 0 ]]; then
  echo "run_clang_tidy: findings above must be fixed (or the check" \
       "excluded with a rationale in .clang-tidy)" >&2
fi
exit ${STATUS}
